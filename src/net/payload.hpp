/**
 * @file
 * Move-only typed message envelope for the simulated network.
 *
 * Replaces the previous std::any payload: std::any requires
 * copy-constructible contents and heap-allocates anything larger than a
 * couple of words, which cost one allocation plus a type-manager round trip
 * per message on the Raft hot path. Payload owns its contents exclusively
 * (moves only), keeps values up to kInlineSize bytes inline, and resolves
 * types by tag address instead of RTTI.
 */
#ifndef NBOS_NET_PAYLOAD_HPP
#define NBOS_NET_PAYLOAD_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nbos::net {

namespace detail {

/** Address-unique tag per payload type (ODR-merged across TUs). */
template <typename T>
inline constexpr char kPayloadTag = 0;

}  // namespace detail

/** Move-only type-erased value with inline small-buffer storage. */
class Payload
{
  public:
    /** Inline budget, sized so every Raft wire message stays heap-free. */
    static constexpr std::size_t kInlineSize = 104;

    Payload() noexcept = default;

    template <typename T, typename D = std::decay_t<T>,
              typename = std::enable_if_t<!std::is_same_v<D, Payload>>>
    Payload(T&& value)  // NOLINT(google-explicit-constructor): senders pass
                        // their message structs directly to Network::send.
    {
        static_assert(std::is_move_constructible_v<D>,
                      "payload types must be move-constructible");
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<T>(value));
            ops_ = &inline_ops<D>();
        } else {
            *reinterpret_cast<void**>(storage_) = new D(std::forward<T>(value));
            ops_ = &heap_ops<D>();
        }
    }

    Payload(Payload&& other) noexcept { move_from(other); }

    Payload& operator=(Payload&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    Payload(const Payload&) = delete;
    Payload& operator=(const Payload&) = delete;

    ~Payload() { reset(); }

    /** True if a value is held. */
    bool has_value() const noexcept { return ops_ != nullptr; }

    /**
     * Typed access to the held value.
     * @return nullptr if empty or the held type is not T.
     */
    template <typename T>
    const T* get() const noexcept
    {
        using D = std::decay_t<T>;
        if (ops_ == nullptr || ops_->tag != &detail::kPayloadTag<D>) {
            return nullptr;
        }
        return static_cast<const D*>(target());
    }

    /** Destroy the held value, if any. */
    void reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        /** Move the value between storage blocks, destroying the source. */
        void (*relocate)(void* dst_storage, void* src_storage) noexcept;
        void (*destroy)(void* storage) noexcept;
        const void* tag;
        bool inline_storage;
    };

    template <typename D>
    static constexpr bool fits_inline()
    {
        // Relocation must be noexcept so Payload (and Message) moves never
        // throw while an envelope is in flight.
        return sizeof(D) <= kInlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static const Ops& inline_ops()
    {
        static constexpr Ops ops{
            [](void* dst, void* src) noexcept {
                D* from = static_cast<D*>(src);
                ::new (dst) D(std::move(*from));
                from->~D();
            },
            [](void* storage) noexcept { static_cast<D*>(storage)->~D(); },
            &detail::kPayloadTag<D>, true};
        return ops;
    }

    template <typename D>
    static const Ops& heap_ops()
    {
        static constexpr Ops ops{
            [](void* dst, void* src) noexcept {
                *static_cast<void**>(dst) = *static_cast<void**>(src);
            },
            [](void* storage) noexcept {
                delete *reinterpret_cast<D**>(storage);
            },
            &detail::kPayloadTag<D>, false};
        return ops;
    }

    const void* target() const noexcept
    {
        return ops_->inline_storage
                   ? static_cast<const void*>(storage_)
                   : *reinterpret_cast<void* const*>(storage_);
    }

    void move_from(Payload& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace nbos::net

#endif  // NBOS_NET_PAYLOAD_HPP
