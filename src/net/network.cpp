#include "net/network.hpp"

#include <cassert>

namespace nbos::net {

sim::Time
LatencyModel::sample(sim::Rng& rng) const
{
    sim::Time latency = base;
    if (jitter > 0) {
        latency += rng.uniform_int(0, jitter);
    }
    return latency;
}

Network::Network(sim::Simulation& simulation, sim::Rng rng)
    : simulation_(simulation), rng_(rng)
{
}

NodeId
Network::register_node(Handler handler)
{
    const NodeId id = next_id_++;
    handlers_.emplace(id, std::move(handler));
    return id;
}

void
Network::register_node_with_id(NodeId id, Handler handler)
{
    assert(handlers_.find(id) == handlers_.end());
    handlers_.emplace(id, std::move(handler));
    if (id >= next_id_) {
        next_id_ = id + 1;
    }
}

void
Network::unregister_node(NodeId id)
{
    handlers_.erase(id);
}

bool
Network::is_registered(NodeId id) const
{
    return handlers_.find(id) != handlers_.end();
}

std::uint32_t
Network::acquire_slot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = in_flight_[slot].next_free;
        return slot;
    }
    in_flight_.emplace_back();
    return static_cast<std::uint32_t>(in_flight_.size() - 1);
}

void
Network::send(NodeId src, NodeId dst, Payload payload)
{
    ++stats_.sent;
    if (is_partitioned(src, dst)) {
        ++stats_.blocked_partition;
        return;
    }
    if (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_)) {
        ++stats_.dropped;
        return;
    }
    // Chaos-injected drop bursts are checked after the background drop so a
    // chaos-free run consumes exactly the same random stream as before the
    // chaos tier existed (no draw happens while the probability is 0).
    if (chaos_drop_probability_ > 0.0 &&
        rng_.bernoulli(chaos_drop_probability_)) {
        ++stats_.dropped_chaos;
        return;
    }
    LatencyModel model = default_latency_;
    if (!link_latency_.empty()) {
        if (const auto it = link_latency_.find({src, dst});
            it != link_latency_.end()) {
            model = it->second;
        }
    }
    sim::Time latency = model.sample(rng_) + chaos_extra_latency_;
    if (!chaos_node_delay_.empty()) {
        if (const auto it = chaos_node_delay_.find(src);
            it != chaos_node_delay_.end()) {
            latency += it->second;
        }
    }
    // Park the envelope in the in-flight slab; the delivery closure carries
    // only {this, slot}, so it stays inside the event's inline storage.
    const std::uint32_t slot = acquire_slot();
    Message& message = in_flight_[slot].message;
    message.src = src;
    message.dst = dst;
    message.payload = std::move(payload);
    simulation_.schedule_after(latency, [this, slot] { deliver(slot); });
}

void
Network::set_link_latency(NodeId src, NodeId dst, LatencyModel model)
{
    link_latency_[{src, dst}] = model;
}

void
Network::set_partitioned(NodeId a, NodeId b, bool partitioned)
{
    if (partitioned) {
        partitions_.insert(partition_key(a, b));
    } else {
        partitions_.erase(partition_key(a, b));
    }
}

void
Network::set_chaos_node_delay(NodeId id, sim::Time extra)
{
    if (extra > 0) {
        chaos_node_delay_[id] = extra;
    } else {
        chaos_node_delay_.erase(id);
    }
}

void
Network::isolate(NodeId id, bool isolated)
{
    for (const auto& [other, handler] : handlers_) {
        if (other != id) {
            set_partitioned(id, other, isolated);
        }
    }
}

bool
Network::is_partitioned(NodeId src, NodeId dst) const
{
    return !partitions_.empty() && partitions_.count(partition_key(src, dst)) > 0;
}

void
Network::deliver(std::uint32_t slot)
{
    // Move the message out and recycle the slot before dispatch: the handler
    // may send (acquiring slots) or grow the slab.
    const Message message = std::move(in_flight_[slot].message);
    in_flight_[slot].next_free = free_head_;
    free_head_ = slot;

    const auto it = handlers_.find(message.dst);
    if (it == handlers_.end()) {
        // Endpoint disappeared (e.g. crashed replica) while in flight.
        ++stats_.dead_destination;
        return;
    }
    // Re-check partitions at delivery time so a cut made after send() still
    // blocks in-flight traffic, matching the usual partition test model.
    if (is_partitioned(message.src, message.dst)) {
        ++stats_.blocked_partition;
        return;
    }
    ++stats_.delivered;
    it->second(message);
}

}  // namespace nbos::net
