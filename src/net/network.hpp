/**
 * @file
 * Simulated message-passing network connecting NotebookOS components.
 *
 * Models per-link latency (base + jitter), message drops, and partitions so
 * the Raft layer and the schedulers can be exercised under the failure modes
 * §3.2.2 and §3.2.5 of the paper describe ("progress occurs even when
 * messages ... are dropped or delayed").
 */
#ifndef NBOS_NET_NETWORK_HPP
#define NBOS_NET_NETWORK_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/payload.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace nbos::net {

/** Identifier of a network endpoint. */
using NodeId = std::int64_t;

/** Sentinel for "no node". */
inline constexpr NodeId kNoNode = -1;

/** A message in flight; the typed envelope is opaque to the network.
 *  Move-only: the payload travels, it is never duplicated. */
struct Message
{
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    Payload payload;
};

/** Latency model applied to a delivery: base plus uniform jitter. */
struct LatencyModel
{
    sim::Time base = 200 * sim::kMicrosecond;
    sim::Time jitter = 100 * sim::kMicrosecond;

    /** Sample one delivery latency. */
    sim::Time sample(sim::Rng& rng) const;
};

/** Delivery statistics for tests and experiment reports. The drop counters
 *  form a per-fault-class breakdown: `dropped` counts the background
 *  drop-probability losses, `dropped_chaos` the losses injected by the chaos
 *  tier, and `blocked_partition` messages cut by a partition. */
struct NetworkStats
{
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t dropped_chaos = 0;
    std::uint64_t blocked_partition = 0;
    std::uint64_t dead_destination = 0;

    NetworkStats& operator+=(const NetworkStats& other)
    {
        sent += other.sent;
        delivered += other.delivered;
        dropped += other.dropped;
        dropped_chaos += other.dropped_chaos;
        blocked_partition += other.blocked_partition;
        dead_destination += other.dead_destination;
        return *this;
    }

    friend bool operator==(const NetworkStats& a, const NetworkStats& b)
    {
        return a.sent == b.sent && a.delivered == b.delivered &&
               a.dropped == b.dropped && a.dropped_chaos == b.dropped_chaos &&
               a.blocked_partition == b.blocked_partition &&
               a.dead_destination == b.dead_destination;
    }
};

/**
 * The cluster network. Endpoints register a handler and exchange typed
 * payload envelopes; delivery happens through the simulation's event queue.
 * In-flight messages live in a recycled slab, so the per-message event
 * closure is two words and steady-state traffic allocates nothing.
 */
class Network
{
  public:
    using Handler = std::function<void(const Message&)>;

    Network(sim::Simulation& simulation, sim::Rng rng);

    /** Register a handler and obtain a fresh endpoint id. */
    NodeId register_node(Handler handler);

    /** Register a handler under a caller-chosen id (must be unused). */
    void register_node_with_id(NodeId id, Handler handler);

    /** Remove an endpoint; in-flight messages to it are dropped. */
    void unregister_node(NodeId id);

    /** True if @p id currently has a registered handler. */
    bool is_registered(NodeId id) const;

    /**
     * Send @p payload from @p src to @p dst. The message is delivered after
     * a sampled latency unless dropped or blocked by a partition.
     */
    void send(NodeId src, NodeId dst, Payload payload);

    /** Set the default latency model for all links. */
    void set_default_latency(LatencyModel model) { default_latency_ = model; }

    /** Override the latency model for one directed link. */
    void set_link_latency(NodeId src, NodeId dst, LatencyModel model);

    /** Probability in [0,1] that any message is silently dropped. */
    void set_drop_probability(double p) { drop_probability_ = p; }

    /**
     * Probability in [0,1] of a chaos-injected drop, accounted separately
     * from the background drop probability (`NetworkStats::dropped_chaos`).
     * At 0 (the default) no RNG draw happens, so enabling the chaos tier in
     * one run cannot perturb the random stream of a chaos-free run.
     */
    void set_chaos_drop_probability(double p) { chaos_drop_probability_ = p; }

    /** Current chaos drop probability (see set_chaos_drop_probability). */
    double chaos_drop_probability() const { return chaos_drop_probability_; }

    /** Chaos latency spike: extra delay added to every delivery. */
    void set_chaos_extra_latency(sim::Time extra) { chaos_extra_latency_ = extra; }

    /**
     * Chaos clock skew: messages *sent by* @p id are delayed by @p extra,
     * modelling a node whose clock lags the cluster. Pass 0 to clear.
     */
    void set_chaos_node_delay(NodeId id, sim::Time extra);

    /** Cut (or heal) the bidirectional link between two endpoints. */
    void set_partitioned(NodeId a, NodeId b, bool partitioned);

    /** Isolate @p id from every current endpoint (or undo the isolation). */
    void isolate(NodeId id, bool isolated);

    /** True if the directed link src->dst is currently cut. */
    bool is_partitioned(NodeId src, NodeId dst) const;

    /** Delivery statistics so far. */
    const NetworkStats& stats() const { return stats_; }

  private:
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;

    struct InFlight
    {
        Message message;
        std::uint32_t next_free = kNoSlot;
    };

    std::uint32_t acquire_slot();
    void deliver(std::uint32_t slot);

    /** Partitions are undirected: store each cut link once, as (min, max),
     *  so set_partitioned(a, b) and is_partitioned(b, a) can never disagree. */
    static std::pair<NodeId, NodeId> partition_key(NodeId a, NodeId b)
    {
        return a <= b ? std::pair{a, b} : std::pair{b, a};
    }

    sim::Simulation& simulation_;
    sim::Rng rng_;
    NodeId next_id_ = 1;
    LatencyModel default_latency_{};
    double drop_probability_ = 0.0;
    double chaos_drop_probability_ = 0.0;
    sim::Time chaos_extra_latency_ = 0;
    std::map<NodeId, sim::Time> chaos_node_delay_;
    std::unordered_map<NodeId, Handler> handlers_;
    std::map<std::pair<NodeId, NodeId>, LatencyModel> link_latency_;
    std::set<std::pair<NodeId, NodeId>> partitions_;
    std::vector<InFlight> in_flight_;
    std::uint32_t free_head_ = kNoSlot;
    NetworkStats stats_{};
};

}  // namespace nbos::net

#endif  // NBOS_NET_NETWORK_HPP
