#include "raft/raft.hpp"

#include <algorithm>
#include <cassert>
#include <type_traits>

namespace nbos::raft {

const char*
to_string(Role role)
{
    switch (role) {
      case Role::kFollower:
        return "follower";
      case Role::kCandidate:
        return "candidate";
      case Role::kLeader:
        return "leader";
    }
    return "unknown";
}

// Every Raft wire message must fit the payload envelope's inline buffer:
// the consensus hot path sends one envelope per heartbeat/reply and relies
// on these sends being allocation-free.
static_assert(sizeof(RaftMessage) <= net::Payload::kInlineSize,
              "RaftMessage outgrew the inline payload buffer");
static_assert(std::is_nothrow_move_constructible_v<RaftMessage>,
              "RaftMessage must be nothrow-movable to stay inline");

RaftNode::RaftNode(sim::Simulation& simulation, net::Network& network,
                   net::NodeId id, std::vector<net::NodeId> members,
                   RaftConfig config, sim::Rng rng)
    : simulation_(simulation),
      network_(network),
      id_(id),
      config_(config),
      rng_(rng),
      snapshot_data_(std::make_shared<const std::string>()),
      snapshot_members_(
          std::make_shared<const std::vector<net::NodeId>>(members)),
      members_(std::move(members))
{
}

RaftNode::~RaftNode()
{
    if (running_) {
        stop();
    }
}

void
RaftNode::set_snapshot_hooks(SnapshotFn snap, RestoreFn restore)
{
    snapshot_fn_ = std::move(snap);
    restore_fn_ = std::move(restore);
}

void
RaftNode::start()
{
    assert(!running_);
    running_ = true;
    role_ = Role::kFollower;
    network_.register_node_with_id(
        id_, [this](const net::Message& m) { handle_message(m); });
    reset_election_timer();
}

void
RaftNode::start_passive()
{
    assert(!running_);
    running_ = true;
    role_ = Role::kFollower;
    network_.register_node_with_id(
        id_, [this](const net::Message& m) { handle_message(m); });
    // No election timer: armed on first leader contact.
}

void
RaftNode::stop()
{
    if (!running_) {
        return;
    }
    running_ = false;
    cancel_timers();
    network_.unregister_node(id_);
    role_ = Role::kFollower;
    leader_hint_ = net::kNoNode;
}

void
RaftNode::restart()
{
    assert(!running_);
    // Volatile state resets; durable term/vote/log/snapshot survive.
    commit_index_ = snapshot_last_index_;
    last_applied_ = snapshot_last_index_;
    next_index_.clear();
    match_index_.clear();
    votes_.clear();
    config_change_in_flight_ = false;
    if (restore_fn_) {
        // Rebuild the state machine from the snapshot point (possibly the
        // empty initial state); committed entries re-apply afterwards.
        restore_fn_(*snapshot_data_);
    }
    start();
}

Index
RaftNode::last_log_index() const
{
    return snapshot_last_index_ + log_.size();
}

Term
RaftNode::term_at(Index index) const
{
    if (index == 0) {
        return 0;
    }
    if (index == snapshot_last_index_) {
        return snapshot_last_term_;
    }
    if (index < snapshot_last_index_ || index > last_log_index()) {
        return 0;
    }
    return log_[index - snapshot_last_index_ - 1]->term;
}

const LogEntry&
RaftNode::entry_at(Index index) const
{
    return *entry_ptr_at(index);
}

const LogEntryPtr&
RaftNode::entry_ptr_at(Index index) const
{
    assert(index > snapshot_last_index_ && index <= last_log_index());
    return log_[index - snapshot_last_index_ - 1];
}

bool
RaftNode::log_up_to_date(Index last_index, Term last_term) const
{
    const Term my_last_term = term_at(last_log_index());
    if (last_term != my_last_term) {
        return last_term > my_last_term;
    }
    return last_index >= last_log_index();
}

bool
RaftNode::is_member(net::NodeId node) const
{
    return std::find(members_.begin(), members_.end(), node) !=
           members_.end();
}

std::size_t
RaftNode::majority() const
{
    return members_.size() / 2 + 1;
}

void
RaftNode::send(net::NodeId dst, RaftMessage message)
{
    network_.send(id_, dst, std::move(message));
}

void
RaftNode::handle_message(const net::Message& message)
{
    if (!running_) {
        return;
    }
    const auto* raft_message = message.payload.get<RaftMessage>();
    if (raft_message == nullptr) {
        return;  // Not for us; shared endpoints filter here.
    }
    std::visit(
        [this](const auto& m) {
            using T = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<T, RequestVoteArgs>) {
                on_request_vote(m);
            } else if constexpr (std::is_same_v<T, RequestVoteReply>) {
                on_request_vote_reply(m);
            } else if constexpr (std::is_same_v<T, AppendEntriesArgs>) {
                on_append_entries(m);
            } else if constexpr (std::is_same_v<T, AppendEntriesReply>) {
                on_append_entries_reply(m);
            } else if constexpr (std::is_same_v<T, InstallSnapshotArgs>) {
                on_install_snapshot(m);
            } else if constexpr (std::is_same_v<T, InstallSnapshotReply>) {
                on_install_snapshot_reply(m);
            } else if constexpr (std::is_same_v<T, ProposeForward>) {
                on_propose_forward(m);
            }
        },
        *raft_message);
}

void
RaftNode::become_follower(Term term)
{
    if (term > current_term_) {
        current_term_ = term;
        voted_for_ = net::kNoNode;
    }
    role_ = Role::kFollower;
    if (heartbeat_timer_ != 0) {
        simulation_.cancel(heartbeat_timer_);
        heartbeat_timer_ = 0;
    }
    reset_election_timer();
}

void
RaftNode::reset_election_timer()
{
    if (election_timer_ != 0) {
        simulation_.cancel(election_timer_);
    }
    const sim::Time timeout = config_.election_timeout_min +
                              rng_.uniform_int(0,
                                               config_.election_timeout_max -
                                                   config_.election_timeout_min);
    election_timer_ = simulation_.schedule_after(timeout, [this] {
        election_timer_ = 0;
        if (running_ && role_ != Role::kLeader) {
            become_candidate();
        }
    });
}

void
RaftNode::cancel_timers()
{
    if (election_timer_ != 0) {
        simulation_.cancel(election_timer_);
        election_timer_ = 0;
    }
    if (heartbeat_timer_ != 0) {
        simulation_.cancel(heartbeat_timer_);
        heartbeat_timer_ = 0;
    }
}

void
RaftNode::become_candidate()
{
    if (!is_member(id_)) {
        // Removed from the group: never campaign, just idle.
        return;
    }
    ++current_term_;
    role_ = Role::kCandidate;
    voted_for_ = id_;
    leader_hint_ = net::kNoNode;
    votes_.clear();
    votes_[id_] = true;
    ++stats_.elections_started;
    reset_election_timer();
    if (votes_.size() >= majority()) {
        become_leader();
        return;
    }
    RequestVoteArgs args;
    args.term = current_term_;
    args.candidate = id_;
    args.last_log_index = last_log_index();
    args.last_log_term = term_at(last_log_index());
    for (const net::NodeId peer : members_) {
        if (peer != id_) {
            send(peer, args);
        }
    }
}

void
RaftNode::become_leader()
{
    role_ = Role::kLeader;
    leader_hint_ = id_;
    ++stats_.elections_won;
    next_index_.clear();
    match_index_.clear();
    for (const net::NodeId peer : members_) {
        if (peer != id_) {
            next_index_[peer] = last_log_index() + 1;
            match_index_[peer] = 0;
        }
    }
    config_change_in_flight_ = false;
    for (Index i = commit_index_ + 1; i <= last_log_index(); ++i) {
        if (entry_at(i).config_change) {
            config_change_in_flight_ = true;
        }
    }
    if (election_timer_ != 0) {
        simulation_.cancel(election_timer_);
        election_timer_ = 0;
    }
    // Commit a term-opening no-op so entries from previous terms become
    // committable immediately (Raft §5.4.2: a leader may only count
    // replicas for entries of its own term).
    LogEntry noop;
    noop.noop = true;
    append_local(std::move(noop));
    send_heartbeats();
}

void
RaftNode::send_heartbeats()
{
    if (!running_ || role_ != Role::kLeader) {
        return;
    }
    for (const net::NodeId peer : members_) {
        if (peer != id_) {
            replicate_to(peer);
        }
    }
    if (heartbeat_timer_ != 0) {
        simulation_.cancel(heartbeat_timer_);
    }
    heartbeat_timer_ =
        simulation_.schedule_after(config_.heartbeat_interval, [this] {
            heartbeat_timer_ = 0;
            send_heartbeats();
        });
}

void
RaftNode::replicate_to(net::NodeId peer)
{
    Index next = last_log_index() + 1;
    if (const auto it = next_index_.find(peer); it != next_index_.end()) {
        next = it->second;
    } else {
        next_index_[peer] = next;
        match_index_[peer] = 0;
    }
    if (next <= snapshot_last_index_) {
        InstallSnapshotArgs args;
        args.term = current_term_;
        args.leader = id_;
        args.last_included_index = snapshot_last_index_;
        args.last_included_term = snapshot_last_term_;
        args.snapshot = snapshot_data_;
        args.members = snapshot_members_;
        send(peer, std::move(args));
        return;
    }
    AppendEntriesArgs args;
    args.term = current_term_;
    args.leader = id_;
    args.prev_log_index = next - 1;
    args.prev_log_term = term_at(next - 1);
    args.leader_commit = commit_index_;
    const Index last = last_log_index();
    if (next <= last) {
        const auto count = std::min<std::size_t>(
            last - next + 1, config_.max_entries_per_append);
        args.entries.reserve(count);
        for (Index i = next; i < next + count; ++i) {
            args.entries.push_back(entry_ptr_at(i));
        }
    }
    send(peer, std::move(args));
}

void
RaftNode::on_request_vote(const RequestVoteArgs& args)
{
    // §6 mitigation for removed/partitioned servers: ignore campaigns from
    // nodes outside our configuration, and stay loyal to a live leader we
    // heard from within the minimum election timeout. Neither case adopts
    // the candidate's (possibly inflated) term.
    if (!is_member(args.candidate) ||
        (args.term > current_term_ &&
         simulation_.now() - last_leader_contact_ <
             config_.election_timeout_min)) {
        RequestVoteReply reply;
        reply.term = current_term_;
        reply.voter = id_;
        reply.granted = false;
        send(args.candidate, reply);
        return;
    }
    if (args.term > current_term_) {
        become_follower(args.term);
    }
    RequestVoteReply reply;
    reply.term = current_term_;
    reply.voter = id_;
    reply.granted = false;
    if (args.term == current_term_ &&
        (voted_for_ == net::kNoNode || voted_for_ == args.candidate) &&
        log_up_to_date(args.last_log_index, args.last_log_term)) {
        reply.granted = true;
        voted_for_ = args.candidate;
        reset_election_timer();
    }
    send(args.candidate, reply);
}

void
RaftNode::on_request_vote_reply(const RequestVoteReply& reply)
{
    if (reply.term > current_term_) {
        become_follower(reply.term);
        return;
    }
    if (role_ != Role::kCandidate || reply.term < current_term_ ||
        !reply.granted || !is_member(reply.voter)) {
        return;
    }
    votes_[reply.voter] = true;
    std::size_t granted = 0;
    for (const net::NodeId peer : members_) {
        if (const auto it = votes_.find(peer);
            it != votes_.end() && it->second) {
            ++granted;
        }
    }
    if (granted >= majority()) {
        become_leader();
    }
}

void
RaftNode::on_append_entries(const AppendEntriesArgs& args)
{
    AppendEntriesReply reply;
    reply.term = current_term_;
    reply.follower = id_;
    reply.success = false;
    if (args.term < current_term_) {
        send(args.leader, reply);
        return;
    }
    become_follower(args.term);
    leader_hint_ = args.leader;
    last_leader_contact_ = simulation_.now();
    reply.term = current_term_;

    if (args.prev_log_index > last_log_index()) {
        reply.conflict_hint = last_log_index() + 1;
        send(args.leader, reply);
        return;
    }
    // Entries at or below our snapshot point are committed and thus match.
    Index effective_prev = args.prev_log_index;
    std::size_t skip = 0;
    if (effective_prev < snapshot_last_index_) {
        skip = std::min<std::size_t>(args.entries.size(),
                                     snapshot_last_index_ - effective_prev);
        effective_prev = snapshot_last_index_;
    } else if (term_at(effective_prev) != args.prev_log_term) {
        // Fast repair: hint the first index of the conflicting term.
        const Term bad = term_at(effective_prev);
        Index hint = effective_prev;
        while (hint > snapshot_last_index_ + 1 && term_at(hint - 1) == bad) {
            --hint;
        }
        reply.conflict_hint = hint;
        send(args.leader, reply);
        return;
    }

    Index index = effective_prev;
    for (std::size_t i = skip; i < args.entries.size(); ++i) {
        const LogEntryPtr& incoming = args.entries[i];
        index = incoming->index;
        if (index <= last_log_index()) {
            if (term_at(index) == incoming->term) {
                continue;  // Already replicated.
            }
            // Conflict: truncate our uncommitted suffix.
            log_.resize(index - snapshot_last_index_ - 1);
        }
        log_.push_back(incoming);  // Adopt the leader's entry by reference.
    }
    const Index last_new =
        args.entries.empty() ? effective_prev : args.entries.back()->index;
    reply.success = true;
    reply.match_index = std::max(last_new, snapshot_last_index_);
    if (args.leader_commit > commit_index_) {
        commit_index_ = std::min(args.leader_commit, last_log_index());
        apply_committed();
    }
    send(args.leader, reply);
}

void
RaftNode::on_append_entries_reply(const AppendEntriesReply& reply)
{
    if (reply.term > current_term_) {
        become_follower(reply.term);
        return;
    }
    if (role_ != Role::kLeader || reply.term < current_term_) {
        return;
    }
    if (reply.success) {
        match_index_[reply.follower] =
            std::max(match_index_[reply.follower], reply.match_index);
        next_index_[reply.follower] = match_index_[reply.follower] + 1;
        advance_commit();
        if (next_index_[reply.follower] <= last_log_index()) {
            replicate_to(reply.follower);  // Keep streaming the backlog.
        }
    } else {
        Index next = next_index_[reply.follower];
        next = (next > 1) ? next - 1 : 1;
        if (reply.conflict_hint != 0) {
            next = std::min(next, reply.conflict_hint);
        }
        next_index_[reply.follower] = std::max<Index>(next, 1);
        replicate_to(reply.follower);
    }
}

void
RaftNode::on_install_snapshot(const InstallSnapshotArgs& args)
{
    InstallSnapshotReply reply;
    reply.term = current_term_;
    reply.follower = id_;
    reply.last_included_index = snapshot_last_index_;
    if (args.term < current_term_) {
        send(args.leader, reply);
        return;
    }
    become_follower(args.term);
    leader_hint_ = args.leader;
    last_leader_contact_ = simulation_.now();
    reply.term = current_term_;
    if (args.last_included_index <= snapshot_last_index_) {
        send(args.leader, reply);
        return;
    }
    // Retain any log suffix that extends past the snapshot and agrees with
    // it; otherwise discard the whole log.
    if (args.last_included_index <= last_log_index() &&
        term_at(args.last_included_index) == args.last_included_term) {
        const std::size_t drop =
            args.last_included_index - snapshot_last_index_;
        log_.erase(log_.begin(),
                   log_.begin() + static_cast<std::ptrdiff_t>(drop));
    } else {
        log_.clear();
    }
    snapshot_last_index_ = args.last_included_index;
    snapshot_last_term_ = args.last_included_term;
    snapshot_data_ = args.snapshot;
    snapshot_members_ = args.members;
    members_ = *args.members;
    commit_index_ = std::max(commit_index_, snapshot_last_index_);
    last_applied_ = snapshot_last_index_;
    if (restore_fn_) {
        restore_fn_(*snapshot_data_);
    }
    ++stats_.snapshots_installed;
    apply_committed();
    reply.last_included_index = snapshot_last_index_;
    send(args.leader, reply);
}

void
RaftNode::on_install_snapshot_reply(const InstallSnapshotReply& reply)
{
    if (reply.term > current_term_) {
        become_follower(reply.term);
        return;
    }
    if (role_ != Role::kLeader || reply.term < current_term_) {
        return;
    }
    match_index_[reply.follower] = std::max(match_index_[reply.follower],
                                            reply.last_included_index);
    next_index_[reply.follower] = match_index_[reply.follower] + 1;
    if (next_index_[reply.follower] <= last_log_index()) {
        replicate_to(reply.follower);
    }
}

void
RaftNode::on_propose_forward(const ProposeForward& forward)
{
    if (role_ != Role::kLeader) {
        return;  // Stale hint at the sender; it will retry.
    }
    LogEntry entry;
    entry.data = forward.data;
    append_local(std::move(entry));
}

bool
RaftNode::propose(std::string data)
{
    if (!running_) {
        return false;
    }
    if (role_ == Role::kLeader) {
        LogEntry entry;
        entry.data = std::move(data);
        append_local(std::move(entry));
        return true;
    }
    if (leader_hint_ != net::kNoNode && leader_hint_ != id_) {
        ++stats_.proposals_forwarded;
        send(leader_hint_, ProposeForward{std::move(data)});
        return true;
    }
    return false;
}

bool
RaftNode::propose_add_member(net::NodeId node)
{
    if (role_ != Role::kLeader || config_change_in_flight_ ||
        is_member(node)) {
        return false;
    }
    LogEntry entry;
    entry.config_change = true;
    entry.members = members_;
    entry.members.push_back(node);
    config_change_in_flight_ = true;
    append_local(std::move(entry));
    return true;
}

bool
RaftNode::propose_remove_member(net::NodeId node)
{
    if (role_ != Role::kLeader || config_change_in_flight_ ||
        !is_member(node)) {
        return false;
    }
    LogEntry entry;
    entry.config_change = true;
    for (const net::NodeId member : members_) {
        if (member != node) {
            entry.members.push_back(member);
        }
    }
    config_change_in_flight_ = true;
    append_local(std::move(entry));
    return true;
}

void
RaftNode::append_local(LogEntry entry)
{
    entry.term = current_term_;
    entry.index = last_log_index() + 1;
    // Frozen from here on: followers and apply callbacks share this object.
    log_.push_back(std::make_shared<const LogEntry>(std::move(entry)));
    for (const net::NodeId peer : members_) {
        if (peer != id_) {
            replicate_to(peer);
        }
    }
    advance_commit();  // Single-node groups commit immediately.
}

void
RaftNode::advance_commit()
{
    if (role_ != Role::kLeader) {
        return;
    }
    for (Index n = last_log_index(); n > commit_index_; --n) {
        if (term_at(n) != current_term_) {
            break;  // Only entries from the current term commit by count.
        }
        std::size_t replicated = 0;
        for (const net::NodeId peer : members_) {
            if (peer == id_) {
                ++replicated;
            } else if (const auto it = match_index_.find(peer);
                       it != match_index_.end() && it->second >= n) {
                ++replicated;
            }
        }
        if (replicated >= majority()) {
            commit_index_ = n;
            apply_committed();
            // Propagate the new commit index immediately instead of
            // waiting for the next heartbeat: follower state machines
            // (e.g. kernel executor elections and state sync) apply with
            // round-trip latency rather than heartbeat latency.
            for (const net::NodeId peer : members_) {
                if (peer != id_) {
                    replicate_to(peer);
                }
            }
            break;
        }
    }
}

void
RaftNode::apply_committed()
{
    while (last_applied_ < commit_index_) {
        ++last_applied_;
        // Hold a shared reference (not a deep copy): the entry stays alive
        // even if the apply callback triggers proposals or compaction.
        const LogEntryPtr entry_ref = entry_ptr_at(last_applied_);
        const LogEntry& entry = *entry_ref;
        if (entry.noop) {
            // Term-opening no-op: nothing to apply.
        } else if (entry.config_change) {
            members_ = entry.members;
            config_change_in_flight_ = false;
            if (role_ == Role::kLeader) {
                for (const net::NodeId peer : members_) {
                    if (peer != id_ &&
                        next_index_.find(peer) == next_index_.end()) {
                        next_index_[peer] = last_log_index() + 1;
                        match_index_[peer] = 0;
                        replicate_to(peer);
                    }
                }
                if (!is_member(id_)) {
                    // Leader removed itself: step down.
                    become_follower(current_term_);
                }
            }
        } else if (apply_) {
            apply_(entry);
        }
        ++stats_.entries_applied;
    }
    maybe_compact();
}

void
RaftNode::maybe_compact()
{
    if (config_.snapshot_threshold == 0 || !snapshot_fn_) {
        return;
    }
    if (last_applied_ <= snapshot_last_index_) {
        return;
    }
    const std::size_t applied_retained = last_applied_ - snapshot_last_index_;
    if (applied_retained <= config_.snapshot_threshold) {
        return;
    }
    snapshot_data_ = std::make_shared<const std::string>(snapshot_fn_());
    snapshot_last_term_ = term_at(last_applied_);
    const std::size_t drop = last_applied_ - snapshot_last_index_;
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
    snapshot_last_index_ = last_applied_;
    snapshot_members_ =
        std::make_shared<const std::vector<net::NodeId>>(members_);
    ++stats_.snapshots_taken;
}

}  // namespace nbos::raft
