/**
 * @file
 * From-scratch Raft consensus (Ongaro & Ousterhout, USENIX ATC'14) running
 * over the simulated network.
 *
 * NotebookOS replicates the CPU-side state of each distributed kernel with
 * Raft (§3.2.2/§3.2.4 of the paper) and runs its executor-election protocol
 * as entries in the Raft log. This implementation provides leader election
 * with randomized timeouts, log replication with consistency repair,
 * commit/apply, proposal forwarding from followers to the leader, log
 * compaction with snapshot install for lagging or freshly migrated replicas,
 * and single-server membership changes (used when a kernel replica migrates
 * to another GPU server).
 *
 * Simplification vs. the dissertation: configuration-change entries take
 * effect when *committed* rather than when appended. NotebookOS performs
 * membership changes one server at a time under an operational majority
 * (§3.2.3), where this rule is safe; tests cover the migration flow.
 */
#ifndef NBOS_RAFT_RAFT_HPP
#define NBOS_RAFT_RAFT_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/network.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace nbos::raft {

/** Raft term number. */
using Term = std::uint64_t;
/** Raft log index (1-based; 0 means "no entry"). */
using Index = std::uint64_t;

/** Role of a Raft node. */
enum class Role
{
    kFollower,
    kCandidate,
    kLeader,
};

/** Human-readable role name. */
const char* to_string(Role role);

/** One replicated log entry. */
struct LogEntry
{
    Term term = 0;
    Index index = 0;
    /** Opaque application payload (empty for config entries). */
    std::string data;
    /** True if this entry changes cluster membership. */
    bool config_change = false;
    /** True for the leader's term-opening no-op (not applied). */
    bool noop = false;
    /** Full member list taking effect when a config entry commits. */
    std::vector<net::NodeId> members;
};

/**
 * Shared handle to one immutable log entry. Entries are frozen once
 * appended, so leaders ship them by reference count instead of deep-copying
 * up to max_entries_per_append payloads per AppendEntries, and followers
 * adopt the shipped entries directly into their logs.
 */
using LogEntryPtr = std::shared_ptr<const LogEntry>;

/** RequestVote RPC arguments (Raft §5.2). */
struct RequestVoteArgs
{
    Term term = 0;
    net::NodeId candidate = net::kNoNode;
    Index last_log_index = 0;
    Term last_log_term = 0;
};

/** RequestVote RPC reply. */
struct RequestVoteReply
{
    Term term = 0;
    bool granted = false;
    net::NodeId voter = net::kNoNode;
};

/** AppendEntries RPC arguments (heartbeat + replication, Raft §5.3). */
struct AppendEntriesArgs
{
    Term term = 0;
    net::NodeId leader = net::kNoNode;
    Index prev_log_index = 0;
    Term prev_log_term = 0;
    std::vector<LogEntryPtr> entries;
    Index leader_commit = 0;
};

/** AppendEntries RPC reply, with a conflict hint for fast log repair. */
struct AppendEntriesReply
{
    Term term = 0;
    bool success = false;
    net::NodeId follower = net::kNoNode;
    /** Highest index known replicated on the follower (on success). */
    Index match_index = 0;
    /** Follower's suggestion for the leader's next_index (on failure). */
    Index conflict_hint = 0;
};

/** InstallSnapshot RPC arguments (Raft §7). */
struct InstallSnapshotArgs
{
    Term term = 0;
    net::NodeId leader = net::kNoNode;
    Index last_included_index = 0;
    Term last_included_term = 0;
    /** Opaque application snapshot produced by the SnapshotFn; shared so
     *  resends to lagging replicas never copy the snapshot bytes. */
    std::shared_ptr<const std::string> snapshot;
    std::shared_ptr<const std::vector<net::NodeId>> members;
};

/** InstallSnapshot RPC reply. */
struct InstallSnapshotReply
{
    Term term = 0;
    net::NodeId follower = net::kNoNode;
    Index last_included_index = 0;
};

/** Follower-to-leader proposal forwarding. */
struct ProposeForward
{
    std::string data;
};

/** Union of all Raft wire messages. */
using RaftMessage =
    std::variant<RequestVoteArgs, RequestVoteReply, AppendEntriesArgs,
                 AppendEntriesReply, InstallSnapshotArgs,
                 InstallSnapshotReply, ProposeForward>;

/** Tunables; defaults follow the classic 150-300 ms / 50 ms split. */
struct RaftConfig
{
    sim::Time election_timeout_min = 150 * sim::kMillisecond;
    sim::Time election_timeout_max = 300 * sim::kMillisecond;
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    /** Max entries shipped per AppendEntries. */
    std::size_t max_entries_per_append = 64;
    /**
     * Compact the log once more than this many applied entries are
     * retained; 0 disables compaction.
     */
    std::size_t snapshot_threshold = 0;
};

/** Counters exposed for tests and the micro benchmarks. */
struct RaftStats
{
    std::uint64_t elections_started = 0;
    std::uint64_t elections_won = 0;
    std::uint64_t entries_applied = 0;
    std::uint64_t snapshots_taken = 0;
    std::uint64_t snapshots_installed = 0;
    std::uint64_t proposals_forwarded = 0;
};

/**
 * One Raft participant. Each NotebookOS kernel replica owns one RaftNode;
 * the three replicas of a distributed kernel form one Raft group.
 */
class RaftNode
{
  public:
    /** Invoked exactly once per committed application entry, in order. */
    using ApplyFn = std::function<void(const LogEntry&)>;
    /** Produces an opaque application snapshot at the current applied state. */
    using SnapshotFn = std::function<std::string()>;
    /** Restores application state from a snapshot payload. */
    using RestoreFn = std::function<void(const std::string&)>;

    /**
     * @param simulation  event engine driving timers.
     * @param network     transport; @p id must already be registered-free.
     * @param id          this node's network endpoint id.
     * @param members     initial member list (must include @p id).
     * @param config      protocol tunables.
     * @param rng         per-node RNG (election timeout randomization).
     */
    RaftNode(sim::Simulation& simulation, net::Network& network,
             net::NodeId id, std::vector<net::NodeId> members,
             RaftConfig config, sim::Rng rng);

    ~RaftNode();

    RaftNode(const RaftNode&) = delete;
    RaftNode& operator=(const RaftNode&) = delete;

    /** Set the apply callback (must be set before start()). */
    void set_apply(ApplyFn fn) { apply_ = std::move(fn); }

    /** Install snapshot hooks (required if compaction is enabled). */
    void set_snapshot_hooks(SnapshotFn snap, RestoreFn restore);

    /** Join the network and arm the election timer. */
    void start();

    /**
     * Join the network without arming the election timer. Used by freshly
     * migrated replicas joining an existing group: the node stays passive
     * until it first hears from the group's leader, so it cannot disrupt
     * the incumbent with spurious elections while its membership entry is
     * still in flight.
     */
    void start_passive();

    /** Fail-stop crash: drop off the network and cancel all timers. */
    void stop();

    /** Recover after stop(); durable state (term, vote, log) is retained. */
    void restart();

    /** True between start()/restart() and stop(). */
    bool running() const { return running_; }

    /**
     * Propose an application command.
     *
     * Leaders append locally; followers forward to the last known leader.
     * @return false if no leader is known (caller should retry later).
     */
    bool propose(std::string data);

    /** Propose adding @p node to the group (leader only; one at a time). */
    bool propose_add_member(net::NodeId node);

    /** Propose removing @p node from the group (leader only). */
    bool propose_remove_member(net::NodeId node);

    /** @name Introspection */
    ///@{
    net::NodeId id() const { return id_; }
    Role role() const { return role_; }
    Term term() const { return current_term_; }
    net::NodeId leader_hint() const { return leader_hint_; }
    Index commit_index() const { return commit_index_; }
    Index last_applied() const { return last_applied_; }
    Index last_log_index() const;
    const std::vector<net::NodeId>& members() const { return members_; }
    const RaftStats& stats() const { return stats_; }
    /** Entries still retained after compaction (for tests). */
    std::size_t retained_log_size() const { return log_.size(); }
    ///@}

  private:
    void handle_message(const net::Message& message);
    void on_request_vote(const RequestVoteArgs& args);
    void on_request_vote_reply(const RequestVoteReply& reply);
    void on_append_entries(const AppendEntriesArgs& args);
    void on_append_entries_reply(const AppendEntriesReply& reply);
    void on_install_snapshot(const InstallSnapshotArgs& args);
    void on_install_snapshot_reply(const InstallSnapshotReply& reply);
    void on_propose_forward(const ProposeForward& forward);

    void become_follower(Term term);
    void become_candidate();
    void become_leader();
    void reset_election_timer();
    void cancel_timers();
    void send_heartbeats();
    void replicate_to(net::NodeId peer);
    void advance_commit();
    void apply_committed();
    void maybe_compact();
    void append_local(LogEntry entry);

    /** Term of the entry at @p index (snapshot-aware; 0 for index 0). */
    Term term_at(Index index) const;
    /** Entry at @p index (must be retained). */
    const LogEntry& entry_at(Index index) const;
    /** Shared handle to the entry at @p index (must be retained). */
    const LogEntryPtr& entry_ptr_at(Index index) const;
    /** True if (last_term, last_index) is at least as up-to-date as ours. */
    bool log_up_to_date(Index last_index, Term last_term) const;
    bool is_member(net::NodeId node) const;
    std::size_t majority() const;
    void send(net::NodeId dst, RaftMessage message);

    sim::Simulation& simulation_;
    net::Network& network_;
    net::NodeId id_;
    RaftConfig config_;
    sim::Rng rng_;

    // Durable state (survives stop()/restart()).
    Term current_term_ = 0;
    net::NodeId voted_for_ = net::kNoNode;
    std::vector<LogEntryPtr> log_;  ///< Entries after the snapshot point.
    Index snapshot_last_index_ = 0;
    Term snapshot_last_term_ = 0;
    std::shared_ptr<const std::string> snapshot_data_;
    std::shared_ptr<const std::vector<net::NodeId>> snapshot_members_;
    std::vector<net::NodeId> members_;

    // Volatile state.
    bool running_ = false;
    Role role_ = Role::kFollower;
    net::NodeId leader_hint_ = net::kNoNode;
    Index commit_index_ = 0;
    Index last_applied_ = 0;
    std::map<net::NodeId, Index> next_index_;
    std::map<net::NodeId, Index> match_index_;
    std::map<net::NodeId, bool> votes_;
    bool config_change_in_flight_ = false;

    sim::EventId election_timer_ = 0;
    sim::EventId heartbeat_timer_ = 0;
    /** Last time an AppendEntries/InstallSnapshot from a leader arrived. */
    sim::Time last_leader_contact_ = -(sim::Time{1} << 60);

    ApplyFn apply_;
    SnapshotFn snapshot_fn_;
    RestoreFn restore_fn_;
    RaftStats stats_{};
};

}  // namespace nbos::raft

#endif  // NBOS_RAFT_RAFT_HPP
