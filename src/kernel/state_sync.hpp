/**
 * @file
 * Namespace (kernel state) serialization for the replication protocol
 * (§3.2.4) and for migration checkpoints (§3.2.3).
 *
 * Small variables are serialized inline and travel in the Raft log; large
 * variables are represented as *pointers* — the value's metadata plus a
 * data-store key — while the bytes go to the Distributed Data Store.
 */
#ifndef NBOS_KERNEL_STATE_SYNC_HPP
#define NBOS_KERNEL_STATE_SYNC_HPP

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "nblang/interpreter.hpp"

namespace nbos::kernel {

/** One replicated variable. */
struct VarRecord
{
    std::string name;
    nblang::Value value;
    /** True if the bytes live in the data store (large object). */
    bool is_pointer = false;
};

/** A namespace delta: updated variables plus deletions. */
struct StateDelta
{
    std::vector<VarRecord> vars;
    std::vector<std::string> deleted;

    /** Total inline payload bytes (what actually travels through Raft). */
    std::uint64_t inline_bytes() const;
};

/** Serialize a delta for a SYNC log entry or a checkpoint object. */
std::string serialize_delta(const StateDelta& delta);

/**
 * Parse a serialized delta.
 * @throws nblang::Error on malformed input.
 */
StateDelta deserialize_delta(const std::string& data);

/**
 * Apply @p delta to @p ns. Pointer variables are installed with their
 * metadata and recorded in @p non_resident (their bytes must be fetched
 * from the data store before first use).
 */
void apply_delta(const StateDelta& delta, nblang::Namespace& ns,
                 std::set<std::string>& non_resident);

/**
 * Build a delta covering @p names from @p ns; values whose footprint is at
 * least @p large_threshold become pointers.
 */
StateDelta build_delta(const nblang::Namespace& ns,
                       const std::vector<std::string>& names,
                       const std::vector<std::string>& deleted,
                       std::uint64_t large_threshold);

/** Full-namespace checkpoint (every variable, large ones as pointers). */
std::string checkpoint_namespace(const nblang::Namespace& ns,
                                 std::uint64_t large_threshold);

/** Data-store key for a kernel variable's bytes. */
std::string object_key(std::int64_t kernel_id, const std::string& var_name);

}  // namespace nbos::kernel

#endif  // NBOS_KERNEL_STATE_SYNC_HPP
