/**
 * @file
 * A NotebookOS kernel replica (§3.2).
 *
 * Each distributed kernel consists of R (default 3) replicas spread across
 * GPU servers. Replicas share a Raft group; the executor-election protocol
 * (Fig. 5) and the state-synchronization protocol (Fig. 6) are implemented
 * as entries in the shared log, so every replica observes identical
 * decisions. Only the elected executor runs user code; standbys apply the
 * resulting namespace deltas.
 */
#ifndef NBOS_KERNEL_REPLICA_HPP
#define NBOS_KERNEL_REPLICA_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "cluster/server.hpp"
#include "kernel/protocol.hpp"
#include "kernel/state_sync.hpp"
#include "net/network.hpp"
#include "nblang/interpreter.hpp"
#include "raft/raft.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/datastore.hpp"

namespace nbos::kernel {

/** Kernel-level tunables. */
struct KernelConfig
{
    /** Replicas per distributed kernel (the paper's R; 3 by default —
     *  5 costs too much, 2 is unsupported by Raft, §3.1). */
    std::int32_t replica_count = 3;
    /** Values at or above this footprint go to the data store (§3.2.4). */
    std::uint64_t large_object_threshold = 1024ULL * 1024ULL;
    /** Raft tunables for the replica group. */
    raft::RaftConfig raft{};
    /** Container / GPU binding latencies. */
    cluster::ContainerTimings timings{};
    /** Retry period when a Raft proposal cannot be placed (no leader). */
    sim::Time proposal_retry = 100 * sim::kMillisecond;
    /** Fixed serialization overhead before a SYNC proposal. */
    sim::Time sync_base_overhead = 4 * sim::kMillisecond;
    /** Serialization bandwidth for inline SYNC payloads (bytes/s). */
    double sync_bytes_per_second = 200e6;
};

/**
 * One kernel replica. Owns its Raft node and its copy of the notebook
 * namespace; interacts with its host server through scheduler-provided
 * hooks so the kernel layer stays independent of scheduler policy.
 */
class KernelReplica
{
  public:
    /** Hooks the Local Scheduler installs. */
    struct Hooks
    {
        /** Try to exclusively commit resources on this replica's server. */
        std::function<bool(const cluster::ResourceSpec&)> try_commit;
        /** Release a previous commitment. */
        std::function<void(const cluster::ResourceSpec&)> release;
        /** Executor finished (reply path to Local/Global scheduler). */
        std::function<void(const ExecutionResult&)> on_result;
        /** This replica observed a failed election (all YIELD). */
        std::function<void(ElectionId)> on_election_failed;
        /** End-to-end small-state sync latency sample (Fig. 11 "Sync"). */
        std::function<void(sim::Time)> on_sync_latency;
    };

    /**
     * @param members Raft member ids of the whole group (must include
     *                @p raft_node_id).
     */
    KernelReplica(sim::Simulation& simulation, net::Network& network,
                  storage::DataStore& store, KernelConfig config,
                  cluster::KernelId kernel_id, std::int32_t replica_index,
                  net::NodeId raft_node_id,
                  std::vector<net::NodeId> members, sim::Rng rng);

    /** Start as a founding member of the group. */
    void start();

    /** Start passively (migrated replica joining an existing group). */
    void start_passive();

    /** Fail-stop crash / termination. */
    void stop();

    /** Recover after stop(): volatile protocol state resets; the durable
     *  Raft log/snapshot rebuild the namespace. */
    void restart();

    bool running() const { return running_; }

    /** Install the scheduler hooks (must precede any requests). */
    void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /** Deliver an execute/yield request (Local Scheduler, step 4). */
    void handle_execute_request(const ExecuteRequest& request);

    /** Serialize the full namespace for a migration checkpoint. */
    std::string checkpoint_state() const;

    /** Restore namespace from a checkpoint (migrated replica). */
    void restore_state(const std::string& checkpoint);

    /** @name Introspection */
    ///@{
    cluster::KernelId kernel_id() const { return kernel_id_; }
    std::int32_t replica_index() const { return replica_index_; }
    raft::RaftNode& raft() { return *raft_; }
    const raft::RaftNode& raft() const { return *raft_; }
    const nblang::Namespace& ns() const { return ns_; }
    /** Variables whose bytes are not resident (pointer state). */
    const std::set<std::string>& non_resident() const
    {
        return non_resident_;
    }
    /** Replica index of the most recent executor (from DONE entries). */
    std::int32_t last_executor() const { return last_executor_; }
    /** True while an election/execution/sync is in flight on this replica
     *  (cell executions are serial within a kernel). */
    bool busy() const { return current_election_ != 0; }
    std::uint64_t executions() const { return executions_; }
    ///@}

  private:
    struct ElectionState
    {
        ExecuteRequest request;
        sim::Time received_at = 0;
        sim::Time election_started_at = 0;
        bool participated = false;   ///< this replica proposed
        bool reserved = false;       ///< GPUs committed at proposal time
        bool committed_immediately = false;
        std::set<std::int32_t> proposals_seen;
        std::int32_t winner = -1;
        bool decided = false;
        bool voted = false;
        bool failed_notified = false;
        bool done = false;
    };

    void on_apply(const raft::LogEntry& entry);
    void on_lead_or_yield(const KernelLogEntry& entry);
    void on_done(const KernelLogEntry& entry);
    void on_sync(const KernelLogEntry& entry);
    void propose_with_retry(std::string payload);
    /**
     * Reliable proposal: re-propose every proposal_retry period until
     * @p applied reports that the entry was observed in the applied log.
     * Raft forwards follower proposals at-most-once, so leader churn can
     * drop one; protocol applies are idempotent, making retries safe.
     */
    void propose_reliable(std::string payload,
                          std::function<bool()> applied);
    void start_election(const ExecuteRequest& request);
    void begin_execution(ElectionId id);
    void run_user_code(ElectionId id);
    void finish_execution(ElectionId id, const nblang::Effect& effect,
                          ExecutionStatus status, const std::string& error);
    void replicate_state(ElectionId id, const nblang::Effect& effect);
    void complete_sync(ElectionId id);
    void drain_queue();
    ElectionState& election(ElectionId id);
    std::string raft_snapshot() const;
    void raft_restore(const std::string& snapshot);

    sim::Simulation& simulation_;
    net::Network& network_;
    storage::DataStore& store_;
    KernelConfig config_;
    cluster::KernelId kernel_id_;
    std::int32_t replica_index_;
    sim::Rng rng_;
    Hooks hooks_;

    std::unique_ptr<raft::RaftNode> raft_;
    nblang::Namespace ns_;
    std::set<std::string> non_resident_;
    std::map<ElectionId, ElectionState> elections_;
    std::deque<ExecuteRequest> queue_;
    bool running_ = false;
    /** Election currently in flight on this replica (0 = idle). */
    ElectionId current_election_ = 0;
    /** True while user code is running on this replica. */
    bool executing_ = false;
    std::int32_t last_executor_ = -1;
    std::uint64_t executions_ = 0;
    sim::Time sync_proposed_at_ = 0;
    ElectionId syncing_election_ = 0;
    /** Elections whose own SYNC already applied in this run (dedup for
     *  reliable-proposal retries; cleared on restart so log replay still
     *  rebuilds state). */
    std::set<ElectionId> own_syncs_applied_;
    ExecutionResult current_result_{};
};

}  // namespace nbos::kernel

#endif  // NBOS_KERNEL_REPLICA_HPP
