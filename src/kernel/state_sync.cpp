#include "kernel/state_sync.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "nblang/token.hpp"

namespace nbos::kernel {

namespace {

constexpr char kFieldSep = '\x1f';
constexpr char kRecordSep = '\x1e';

/** Append @p text to @p out, stripping separator bytes from user strings so
 *  records stay parseable. Appends in place: deltas ride the Raft log on
 *  every cell execution, so serialization avoids temporary strings. */
void
append_sanitized(std::string& out, const std::string& text)
{
    for (const char c : text) {
        if (c != kFieldSep && c != kRecordSep) {
            out += c;
        }
    }
}

/** Split without copying; views point into the argument's storage. */
std::vector<std::string_view>
split(std::string_view text, char sep)
{
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string_view::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

}  // namespace

std::uint64_t
StateDelta::inline_bytes() const
{
    std::uint64_t total = 0;
    for (const VarRecord& var : vars) {
        if (!var.is_pointer) {
            // Inline payload: metadata plus the value's own footprint.
            total += 64 + var.value.text.size() +
                     (var.value.kind == nblang::ValueKind::kTensor
                          ? var.value.size_bytes
                          : 0);
        } else {
            total += 64 + var.value.text.size();  // pointer metadata only
        }
    }
    return total;
}

std::string
serialize_delta(const StateDelta& delta)
{
    std::size_t estimate = 0;
    for (const VarRecord& var : delta.vars) {
        estimate += var.name.size() + var.value.text.size() + 96;
    }
    for (const std::string& name : delta.deleted) {
        estimate += name.size() + 2;
    }
    std::string out;
    out.reserve(estimate);
    for (const VarRecord& var : delta.vars) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%d%c%.17g%c%llu%c%llu%c%d",
                      static_cast<int>(var.value.kind), kFieldSep,
                      var.value.number, kFieldSep,
                      static_cast<unsigned long long>(var.value.size_bytes),
                      kFieldSep,
                      static_cast<unsigned long long>(var.value.version),
                      kFieldSep, var.is_pointer ? 1 : 0);
        append_sanitized(out, var.name);
        out += kFieldSep;
        out += buf;
        out += kFieldSep;
        append_sanitized(out, var.value.text);
        out += kRecordSep;
    }
    for (const std::string& name : delta.deleted) {
        out += "!";
        append_sanitized(out, name);
        out += kRecordSep;
    }
    return out;
}

StateDelta
deserialize_delta(const std::string& data)
{
    StateDelta delta;
    // Views point into @p data; the C numeric parsers below stop at the
    // field separator (never a valid numeric character), so parsing straight
    // from view.data() is safe and copies nothing but names and texts.
    for (const std::string_view record : split(data, kRecordSep)) {
        if (record.empty()) {
            continue;
        }
        if (record[0] == '!') {
            delta.deleted.emplace_back(record.substr(1));
            continue;
        }
        const auto fields = split(record, kFieldSep);
        if (fields.size() != 7) {
            throw nblang::Error("malformed state record: '" +
                                std::string(record) + "'");
        }
        VarRecord var;
        var.name = fields[0];
        var.value.kind =
            static_cast<nblang::ValueKind>(std::atoi(fields[1].data()));
        var.value.number = std::strtod(fields[2].data(), nullptr);
        var.value.size_bytes = std::strtoull(fields[3].data(), nullptr, 10);
        var.value.version = std::strtoull(fields[4].data(), nullptr, 10);
        var.is_pointer = fields[5] == "1";
        var.value.text = fields[6];
        delta.vars.push_back(std::move(var));
    }
    return delta;
}

void
apply_delta(const StateDelta& delta, nblang::Namespace& ns,
            std::set<std::string>& non_resident)
{
    for (const VarRecord& var : delta.vars) {
        ns[var.name] = var.value;
        if (var.is_pointer) {
            non_resident.insert(var.name);
        } else {
            non_resident.erase(var.name);
        }
    }
    for (const std::string& name : delta.deleted) {
        ns.erase(name);
        non_resident.erase(name);
    }
}

StateDelta
build_delta(const nblang::Namespace& ns,
            const std::vector<std::string>& names,
            const std::vector<std::string>& deleted,
            std::uint64_t large_threshold)
{
    StateDelta delta;
    std::set<std::string> seen;
    for (const std::string& name : names) {
        if (!seen.insert(name).second) {
            continue;  // assigned multiple times in one cell
        }
        const auto it = ns.find(name);
        if (it == ns.end()) {
            continue;  // assigned then deleted within the cell
        }
        VarRecord var;
        var.name = name;
        var.value = it->second;
        var.is_pointer = it->second.size_bytes >= large_threshold;
        delta.vars.push_back(std::move(var));
    }
    std::set<std::string> deleted_seen;
    for (const std::string& name : deleted) {
        if (ns.find(name) == ns.end() && deleted_seen.insert(name).second) {
            delta.deleted.push_back(name);
        }
    }
    return delta;
}

std::string
checkpoint_namespace(const nblang::Namespace& ns,
                     std::uint64_t large_threshold)
{
    StateDelta delta;
    for (const auto& [name, value] : ns) {
        VarRecord var;
        var.name = name;
        var.value = value;
        var.is_pointer = value.size_bytes >= large_threshold;
        delta.vars.push_back(std::move(var));
    }
    return serialize_delta(delta);
}

std::string
object_key(std::int64_t kernel_id, const std::string& var_name)
{
    return "kernel/" + std::to_string(kernel_id) + "/var/" + var_name;
}

}  // namespace nbos::kernel
