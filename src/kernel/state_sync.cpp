#include "kernel/state_sync.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "nblang/token.hpp"

namespace nbos::kernel {

namespace {

constexpr char kFieldSep = '\x1f';
constexpr char kRecordSep = '\x1e';

/** Append @p text to @p out, stripping separator bytes from user strings so
 *  records stay parseable. Appends in place: deltas ride the Raft log on
 *  every cell execution, so serialization avoids temporary strings. */
void
append_sanitized(std::string& out, const std::string& text)
{
    for (const char c : text) {
        if (c != kFieldSep && c != kRecordSep) {
            out += c;
        }
    }
}

/** Split without copying; views point into the argument's storage. */
std::vector<std::string_view>
split(std::string_view text, char sep)
{
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find(sep, start);
        if (end == std::string_view::npos) {
            parts.push_back(text.substr(start));
            break;
        }
        parts.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return parts;
}

/** @name Bounded field parsers
 *  The record fields are string_views into the wire buffer, NOT
 *  NUL-terminated at the field boundary, so every parse is bounded to
 *  [data, data + size) and must consume the whole field (trailing garbage
 *  is an error, as in workload/trace_io.cpp). Failures throw nblang::Error
 *  naming the field and the offending record.
 */
///@{

[[noreturn]] void
fail_field(const char* field, std::string_view raw, const char* detail)
{
    throw nblang::Error(std::string("state record field '") + field +
                        "': " + detail + " in '" + std::string(raw) + "'");
}

std::int64_t
parse_i64_field(const char* field, std::string_view raw)
{
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), value);
    if (ec != std::errc{} || ptr != raw.data() + raw.size()) {
        fail_field(field, raw, "not a number");
    }
    return value;
}

std::uint64_t
parse_u64_field(const char* field, std::string_view raw)
{
    // from_chars<unsigned> rejects '-' outright — no silent wraparound.
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(raw.data(), raw.data() + raw.size(), value);
    if (ec != std::errc{} || ptr != raw.data() + raw.size()) {
        fail_field(field, raw, "not an unsigned number");
    }
    return value;
}

double
parse_double_field(const char* field, std::string_view raw)
{
    // strtod needs NUL termination, so copy the field into a bounded
    // buffer first (the serializer emits %.17g, which always fits; a
    // longer token cannot be one of ours).
    char buf[64];
    if (raw.empty() || raw.size() >= sizeof(buf)) {
        fail_field(field, raw, "not a number");
    }
    std::memcpy(buf, raw.data(), raw.size());
    buf[raw.size()] = '\0';
    char* end = nullptr;
    const double value = std::strtod(buf, &end);
    if (end != buf + raw.size()) {
        fail_field(field, raw, "not a number");
    }
    return value;
}

bool
parse_bool_field(const char* field, std::string_view raw)
{
    if (raw == "1") {
        return true;
    }
    if (raw == "0") {
        return false;
    }
    fail_field(field, raw, "not a 0/1 flag");
}

nblang::ValueKind
parse_kind_field(const char* field, std::string_view raw)
{
    const std::int64_t kind = parse_i64_field(field, raw);
    if (kind < 0 || kind > static_cast<std::int64_t>(
                               nblang::ValueKind::kDataset)) {
        fail_field(field, raw, "value kind out of range");
    }
    return static_cast<nblang::ValueKind>(kind);
}

///@}

}  // namespace

std::uint64_t
StateDelta::inline_bytes() const
{
    std::uint64_t total = 0;
    for (const VarRecord& var : vars) {
        if (!var.is_pointer) {
            // Inline payload: metadata plus the value's own footprint.
            total += 64 + var.value.text.size() +
                     (var.value.kind == nblang::ValueKind::kTensor
                          ? var.value.size_bytes
                          : 0);
        } else {
            total += 64 + var.value.text.size();  // pointer metadata only
        }
    }
    return total;
}

std::string
serialize_delta(const StateDelta& delta)
{
    std::size_t estimate = 0;
    for (const VarRecord& var : delta.vars) {
        estimate += var.name.size() + var.value.text.size() + 96;
    }
    for (const std::string& name : delta.deleted) {
        estimate += name.size() + 2;
    }
    std::string out;
    out.reserve(estimate);
    for (const VarRecord& var : delta.vars) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%d%c%.17g%c%llu%c%llu%c%d",
                      static_cast<int>(var.value.kind), kFieldSep,
                      var.value.number, kFieldSep,
                      static_cast<unsigned long long>(var.value.size_bytes),
                      kFieldSep,
                      static_cast<unsigned long long>(var.value.version),
                      kFieldSep, var.is_pointer ? 1 : 0);
        append_sanitized(out, var.name);
        out += kFieldSep;
        out += buf;
        out += kFieldSep;
        append_sanitized(out, var.value.text);
        out += kRecordSep;
    }
    for (const std::string& name : delta.deleted) {
        out += "!";
        append_sanitized(out, name);
        out += kRecordSep;
    }
    return out;
}

StateDelta
deserialize_delta(const std::string& data)
{
    StateDelta delta;
    // Views point into @p data and are NOT NUL-terminated at field
    // boundaries, so every numeric field goes through the bounded parsers
    // above (full-field consumption, range-checked value kinds) instead
    // of atoi/strtod on view.data().
    for (const std::string_view record : split(data, kRecordSep)) {
        if (record.empty()) {
            continue;
        }
        if (record[0] == '!') {
            delta.deleted.emplace_back(record.substr(1));
            continue;
        }
        const auto fields = split(record, kFieldSep);
        if (fields.size() != 7) {
            throw nblang::Error("malformed state record: '" +
                                std::string(record) + "'");
        }
        VarRecord var;
        var.name = fields[0];
        var.value.kind = parse_kind_field("kind", fields[1]);
        var.value.number = parse_double_field("number", fields[2]);
        var.value.size_bytes = parse_u64_field("size_bytes", fields[3]);
        var.value.version = parse_u64_field("version", fields[4]);
        var.is_pointer = parse_bool_field("is_pointer", fields[5]);
        var.value.text = fields[6];
        delta.vars.push_back(std::move(var));
    }
    return delta;
}

void
apply_delta(const StateDelta& delta, nblang::Namespace& ns,
            std::set<std::string>& non_resident)
{
    for (const VarRecord& var : delta.vars) {
        ns[var.name] = var.value;
        if (var.is_pointer) {
            non_resident.insert(var.name);
        } else {
            non_resident.erase(var.name);
        }
    }
    for (const std::string& name : delta.deleted) {
        ns.erase(name);
        non_resident.erase(name);
    }
}

StateDelta
build_delta(const nblang::Namespace& ns,
            const std::vector<std::string>& names,
            const std::vector<std::string>& deleted,
            std::uint64_t large_threshold)
{
    StateDelta delta;
    std::set<std::string> seen;
    for (const std::string& name : names) {
        if (!seen.insert(name).second) {
            continue;  // assigned multiple times in one cell
        }
        const auto it = ns.find(name);
        if (it == ns.end()) {
            continue;  // assigned then deleted within the cell
        }
        VarRecord var;
        var.name = name;
        var.value = it->second;
        var.is_pointer = it->second.size_bytes >= large_threshold;
        delta.vars.push_back(std::move(var));
    }
    std::set<std::string> deleted_seen;
    for (const std::string& name : deleted) {
        if (ns.find(name) == ns.end() && deleted_seen.insert(name).second) {
            delta.deleted.push_back(name);
        }
    }
    return delta;
}

std::string
checkpoint_namespace(const nblang::Namespace& ns,
                     std::uint64_t large_threshold)
{
    StateDelta delta;
    for (const auto& [name, value] : ns) {
        VarRecord var;
        var.name = name;
        var.value = value;
        var.is_pointer = value.size_bytes >= large_threshold;
        delta.vars.push_back(std::move(var));
    }
    return serialize_delta(delta);
}

std::string
object_key(std::int64_t kernel_id, const std::string& var_name)
{
    return "kernel/" + std::to_string(kernel_id) + "/var/" + var_name;
}

}  // namespace nbos::kernel
