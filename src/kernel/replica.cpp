#include "kernel/replica.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <string_view>

#include "nblang/analysis.hpp"
#include "nblang/parser.hpp"
#include "nblang/token.hpp"

namespace nbos::kernel {

namespace {

constexpr char kSnapshotSep = '\x1d';

}  // namespace

KernelReplica::KernelReplica(sim::Simulation& simulation,
                             net::Network& network,
                             storage::DataStore& store, KernelConfig config,
                             cluster::KernelId kernel_id,
                             std::int32_t replica_index,
                             net::NodeId raft_node_id,
                             std::vector<net::NodeId> members, sim::Rng rng)
    : simulation_(simulation),
      network_(network),
      store_(store),
      config_(config),
      kernel_id_(kernel_id),
      replica_index_(replica_index),
      rng_(rng)
{
    raft_ = std::make_unique<raft::RaftNode>(simulation_, network_,
                                             raft_node_id,
                                             std::move(members), config_.raft,
                                             rng_.split());
    raft_->set_apply(
        [this](const raft::LogEntry& entry) { on_apply(entry); });
    raft_->set_snapshot_hooks(
        [this] { return raft_snapshot(); },
        [this](const std::string& snapshot) { raft_restore(snapshot); });
}

void
KernelReplica::start()
{
    running_ = true;
    raft_->start();
}

void
KernelReplica::start_passive()
{
    running_ = true;
    raft_->start_passive();
}

void
KernelReplica::stop()
{
    if (!running_) {
        return;
    }
    running_ = false;
    current_election_ = 0;
    queue_.clear();
    own_syncs_applied_.clear();
    raft_->stop();
}

void
KernelReplica::restart()
{
    assert(!running_);
    running_ = true;
    current_election_ = 0;
    executing_ = false;
    queue_.clear();
    own_syncs_applied_.clear();
    raft_->restart();
}

std::string
KernelReplica::checkpoint_state() const
{
    return std::string("EXEC ") + std::to_string(last_executor_) +
           kSnapshotSep +
           checkpoint_namespace(ns_, config_.large_object_threshold);
}

void
KernelReplica::restore_state(const std::string& checkpoint)
{
    raft_restore(checkpoint);
}

std::string
KernelReplica::raft_snapshot() const
{
    return checkpoint_state();
}

void
KernelReplica::raft_restore(const std::string& snapshot)
{
    ns_.clear();
    non_resident_.clear();
    if (snapshot.empty()) {
        last_executor_ = -1;
        return;
    }
    const std::size_t sep = snapshot.find(kSnapshotSep);
    std::string body = snapshot;
    if (sep != std::string::npos) {
        const std::string head = snapshot.substr(0, sep);
        if (head.rfind("EXEC ", 0) == 0) {
            // Checked parse: atoi silently yielded executor 0 (a real
            // replica index) for malformed heads; a corrupt snapshot must
            // be an error, not a quiet misdirection of executor affinity.
            const std::string_view raw = std::string_view(head).substr(5);
            std::int32_t executor = 0;
            const auto [ptr, ec] = std::from_chars(
                raw.data(), raw.data() + raw.size(), executor);
            if (ec != std::errc{} || ptr != raw.data() + raw.size()) {
                throw nblang::Error(
                    "malformed executor id in checkpoint head: '" + head +
                    "'");
            }
            last_executor_ = executor;
        }
        body = snapshot.substr(sep + 1);
    }
    // A restored namespace has no resident bytes for large objects; they
    // page in from the data store on first use.
    apply_delta(deserialize_delta(body), ns_, non_resident_);
    // A snapshot may replace compacted protocol entries (DONE/SYNC) this
    // replica never applied. The snapshot state already reflects those
    // elections, so a standby must not keep waiting for their completion
    // signals — clear the in-flight marker and drain any queued requests.
    // (An actively executing replica keeps its election: it is the one
    // producing the state.)
    if (!executing_) {
        current_election_ = 0;
        syncing_election_ = 0;
        if (running_) {
            simulation_.schedule_after(0, [this] { drain_queue(); });
        }
    }
}

KernelReplica::ElectionState&
KernelReplica::election(ElectionId id)
{
    // Trim ancient elections so long-lived kernels stay bounded.
    while (elections_.size() > 64 && elections_.begin()->first + 32 < id) {
        elections_.erase(elections_.begin());
    }
    return elections_[id];
}

void
KernelReplica::handle_execute_request(const ExecuteRequest& request)
{
    if (!running_) {
        return;
    }
    if (current_election_ != 0) {
        // §3.2.4: requests arriving during an in-flight election,
        // execution, or state replication are enqueued until the previous
        // cell fully completes (cells are serial within a kernel).
        queue_.push_back(request);
        return;
    }
    start_election(request);
}

void
KernelReplica::start_election(const ExecuteRequest& request)
{
    current_election_ = request.election;
    ElectionState& el = election(request.election);
    el.request = request;
    el.received_at = simulation_.now();
    el.election_started_at = simulation_.now();
    el.participated = true;

    KernelLogEntry entry;
    entry.election = request.election;
    entry.replica = replica_index_;
    if (request.yield_converted) {
        entry.kind = EntryKind::kYield;
    } else if (!request.is_gpu) {
        // CPU-only cells need no GPU binding: always willing to lead.
        entry.kind = EntryKind::kLead;
    } else if (hooks_.try_commit && hooks_.try_commit(request.resources)) {
        el.reserved = true;
        el.committed_immediately = true;
        entry.kind = EntryKind::kLead;
    } else {
        entry.kind = EntryKind::kYield;
    }
    const ElectionId id = request.election;
    propose_reliable(encode_entry(entry), [this, id] {
        return election(id).proposals_seen.count(replica_index_) > 0;
    });
}

void
KernelReplica::propose_with_retry(std::string payload)
{
    if (!running_) {
        return;
    }
    if (!raft_->propose(payload)) {
        simulation_.schedule_after(
            config_.proposal_retry,
            [this, payload = std::move(payload)]() mutable {
                propose_with_retry(std::move(payload));
            });
    }
}

void
KernelReplica::propose_reliable(std::string payload,
                                std::function<bool()> applied)
{
    if (!running_ || applied()) {
        return;
    }
    raft_->propose(payload);
    simulation_.schedule_after(
        config_.proposal_retry,
        [this, payload = std::move(payload),
         applied = std::move(applied)]() mutable {
            propose_reliable(std::move(payload), std::move(applied));
        });
}

void
KernelReplica::on_apply(const raft::LogEntry& entry)
{
    const auto decoded = decode_entry(entry.data);
    if (!decoded) {
        return;
    }
    switch (decoded->kind) {
      case EntryKind::kLead:
      case EntryKind::kYield:
        on_lead_or_yield(*decoded);
        break;
      case EntryKind::kVote:
        break;  // Votes are bookkeeping; the first committed LEAD decides.
      case EntryKind::kDone:
        on_done(*decoded);
        break;
      case EntryKind::kSync:
        on_sync(*decoded);
        break;
    }
}

void
KernelReplica::on_lead_or_yield(const KernelLogEntry& log_entry)
{
    ElectionState& el = election(log_entry.election);
    if (!el.proposals_seen.insert(log_entry.replica).second) {
        return;  // Duplicate proposal (retry); ignore.
    }
    if (log_entry.kind == EntryKind::kLead && !el.decided) {
        // The first committed LEAD proposal wins (Fig. 5, step 3-5).
        el.decided = true;
        el.winner = log_entry.replica;
        if (running_ && !el.voted) {
            el.voted = true;
            KernelLogEntry vote;
            vote.kind = EntryKind::kVote;
            vote.election = log_entry.election;
            vote.replica = replica_index_;
            vote.target = el.winner;
            propose_with_retry(encode_entry(vote));
        }
        if (el.winner == replica_index_) {
            if (el.participated && !el.request.code.empty() && running_) {
                begin_execution(log_entry.election);
            }
        } else if (el.reserved) {
            // Lost the election: free the speculatively committed GPUs.
            el.reserved = false;
            if (hooks_.release) {
                hooks_.release(el.request.resources);
            }
        }
        return;
    }
    // All replicas yielded: the election failed (§3.2.3) and the Global
    // Scheduler must migrate a replica to a server with idle GPUs. The
    // quorum is the *current* group size (a kernel may transiently run
    // with fewer replicas while one is being replaced).
    const std::size_t group_size =
        std::min<std::size_t>(static_cast<std::size_t>(
                                  config_.replica_count),
                              raft_->members().size());
    if (!el.decided && el.proposals_seen.size() >= group_size &&
        !el.failed_notified) {
        el.failed_notified = true;
        if (current_election_ == log_entry.election) {
            current_election_ = 0;
        }
        if (running_ && el.participated && hooks_.on_election_failed) {
            hooks_.on_election_failed(log_entry.election);
        }
        drain_queue();
    }
}

void
KernelReplica::begin_execution(ElectionId id)
{
    ElectionState& el = election(id);
    ++executions_;
    executing_ = true;
    current_result_ = ExecutionResult{};
    current_result_.election = id;
    current_result_.executor_replica = replica_index_;
    current_result_.received_at = el.received_at;
    current_result_.election_latency =
        simulation_.now() - el.election_started_at;
    current_result_.executor_reused = (last_executor_ == replica_index_);
    current_result_.gpus_committed_immediately = el.committed_immediately;

    // Page in referenced large objects that are not resident (§3.2.4:
    // pointers encode data retrieval; replicas handle it transparently).
    std::vector<std::string> to_fetch;
    try {
        const nblang::CellAnalysis analysis =
            nblang::analyze_source(el.request.code);
        for (const std::string& name : analysis.referenced) {
            if (non_resident_.count(name) > 0) {
                to_fetch.push_back(name);
            }
        }
    } catch (const nblang::Error&) {
        // Syntax errors surface from the interpreter below.
    }
    current_result_.restore_reads = static_cast<std::int32_t>(
        to_fetch.size());

    auto proceed = [this, id] {
        ElectionState& state = election(id);
        const sim::Time bind_delay =
            state.request.is_gpu
                ? rng_.uniform_int(config_.timings.gpu_bind_min,
                                   config_.timings.gpu_bind_max)
                : 0;
        simulation_.schedule_after(bind_delay,
                                   [this, id] { run_user_code(id); });
    };
    if (to_fetch.empty()) {
        proceed();
        return;
    }
    auto remaining = std::make_shared<std::size_t>(to_fetch.size());
    for (const std::string& name : to_fetch) {
        store_.read(object_key(kernel_id_, name),
                    [this, name, remaining, proceed](
                        const storage::ReadResult&) {
                        non_resident_.erase(name);
                        if (--*remaining == 0 && running_) {
                            proceed();
                        }
                    });
    }
}

void
KernelReplica::run_user_code(ElectionId id)
{
    if (!running_) {
        return;
    }
    ElectionState& el = election(id);
    current_result_.execution_started_at = simulation_.now();
    nblang::Effect effect;
    ExecutionStatus status = ExecutionStatus::kOk;
    std::string error;
    try {
        effect = nblang::execute_source(el.request.code, ns_);
    } catch (const nblang::Error& e) {
        status = ExecutionStatus::kError;
        error = e.what();
    }
    const sim::Time duration =
        sim::from_seconds(effect.gpu_seconds + effect.cpu_seconds);
    simulation_.schedule_after(duration,
                               [this, id, effect, status, error] {
                                   finish_execution(id, effect, status,
                                                    error);
                               });
}

void
KernelReplica::finish_execution(ElectionId id, const nblang::Effect& effect,
                                ExecutionStatus status,
                                const std::string& error)
{
    if (!running_) {
        return;
    }
    ElectionState& el = election(id);
    current_result_.execution_finished_at = simulation_.now();
    current_result_.status = status;
    current_result_.error = error;
    current_result_.output = effect.output;

    // §3.3: the result returns only after GPU state is copied back to host
    // memory.
    const sim::Time unbind_delay =
        el.request.is_gpu
            ? rng_.uniform_int(config_.timings.gpu_unbind_min,
                               config_.timings.gpu_unbind_max)
            : 0;
    simulation_.schedule_after(unbind_delay, [this, id, effect] {
        if (!running_) {
            return;
        }
        ElectionState& state = election(id);
        if (state.reserved) {
            state.reserved = false;
            if (hooks_.release) {
                hooks_.release(state.request.resources);
            }
        }
        current_result_.replied_at = simulation_.now();
        executing_ = false;
        if (hooks_.on_result) {
            hooks_.on_result(current_result_);
        }
        KernelLogEntry done;
        done.kind = EntryKind::kDone;
        done.election = id;
        done.replica = replica_index_;
        propose_reliable(encode_entry(done),
                         [this, id] { return election(id).done; });
        // State replication happens off the critical path, after the reply.
        replicate_state(id, effect);
    });
}

void
KernelReplica::replicate_state(ElectionId id, const nblang::Effect& effect)
{
    const StateDelta delta =
        build_delta(ns_, effect.assigned, effect.deleted,
                    config_.large_object_threshold);
    // Large objects stream to the Distributed Data Store asynchronously.
    for (const VarRecord& var : delta.vars) {
        if (var.is_pointer) {
            store_.write(object_key(kernel_id_, var.name),
                         var.value.size_bytes, nullptr);
        }
    }
    // A SYNC entry is proposed even when the delta is empty: its
    // commitment is the kernel-wide signal that the cell fully completed,
    // which is what serializes back-to-back cells on standby replicas.
    KernelLogEntry sync;
    sync.kind = EntryKind::kSync;
    sync.election = id;
    sync.replica = replica_index_;
    sync.payload = serialize_delta(delta);
    const sim::Time overhead =
        config_.sync_base_overhead +
        sim::from_seconds(static_cast<double>(delta.inline_bytes()) /
                          config_.sync_bytes_per_second);
    simulation_.schedule_after(
        overhead, [this, id, payload = encode_entry(sync)]() mutable {
            if (!running_) {
                return;
            }
            sync_proposed_at_ = simulation_.now();
            syncing_election_ = id;
            propose_reliable(std::move(payload), [this, id] {
                return own_syncs_applied_.count(id) > 0;
            });
        });
}

void
KernelReplica::complete_sync(ElectionId id)
{
    if (current_election_ == id) {
        current_election_ = 0;
    }
    drain_queue();
}

void
KernelReplica::on_sync(const KernelLogEntry& entry)
{
    if (entry.replica == replica_index_) {
        if (!own_syncs_applied_.insert(entry.election).second) {
            return;  // Duplicate from a reliable-proposal retry.
        }
        while (own_syncs_applied_.size() > 64) {
            own_syncs_applied_.erase(own_syncs_applied_.begin());
        }
        if (syncing_election_ == entry.election &&
            current_election_ == entry.election) {
            // Our own SYNC committed in this run: the executor's namespace
            // is already authoritative, so only record the latency.
            if (hooks_.on_sync_latency) {
                hooks_.on_sync_latency(simulation_.now() -
                                       sync_proposed_at_);
            }
            complete_sync(entry.election);
            return;
        }
        // Otherwise this is a replay after restart: fall through and apply
        // (large objects correctly become non-resident pointers).
    }
    // Standby (or replaying) replica: apply the delta; large objects become
    // non-resident pointers.
    try {
        apply_delta(deserialize_delta(entry.payload), ns_, non_resident_);
    } catch (const nblang::Error&) {
        // Malformed delta: ignore (cannot happen with our own encoder).
    }
    // The committed SYNC completes the election on standbys too.
    complete_sync(entry.election);
}

void
KernelReplica::on_done(const KernelLogEntry& entry)
{
    last_executor_ = entry.replica;
    election(entry.election).done = true;
}

void
KernelReplica::drain_queue()
{
    if (!running_ || current_election_ != 0 || queue_.empty()) {
        return;
    }
    const ExecuteRequest request = queue_.front();
    queue_.pop_front();
    start_election(request);
}

}  // namespace nbos::kernel
