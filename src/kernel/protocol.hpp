/**
 * @file
 * Wire/log protocol of the distributed kernel (§3.2.2, Fig. 5).
 *
 * The executor-election protocol and the state-synchronization protocol are
 * layered on the Raft log: every protocol action is a log entry, so all
 * replicas observe an identical total order. Entries are encoded as compact
 * strings (the Raft substrate is payload-agnostic).
 */
#ifndef NBOS_KERNEL_PROTOCOL_HPP
#define NBOS_KERNEL_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "cluster/resources.hpp"
#include "sim/time.hpp"

namespace nbos::kernel {

/** Identifier of one cell-execution election (monotonic per kernel). */
using ElectionId = std::uint64_t;

/** Kinds of entries the kernel appends to its Raft log. */
enum class EntryKind
{
    kLead,   ///< Replica proposes to execute (has GPUs reserved).
    kYield,  ///< Replica defers (no GPUs, or converted by the scheduler).
    kVote,   ///< Vote for the first committed LEAD proposer.
    kDone,   ///< Executor announces execution completion.
    kSync,   ///< Serialized namespace delta (small vars + large pointers).
};

/** Human-readable entry-kind name. */
const char* to_string(EntryKind kind);

/** One decoded kernel log entry. */
struct KernelLogEntry
{
    EntryKind kind = EntryKind::kLead;
    ElectionId election = 0;
    /** Proposing replica index (0-based). */
    std::int32_t replica = -1;
    /** For kVote: the replica being voted for. */
    std::int32_t target = -1;
    /** For kSync: the serialized state delta. */
    std::string payload;
};

/** Encode a kernel entry into a Raft log payload. */
std::string encode_entry(const KernelLogEntry& entry);

/**
 * Decode a Raft log payload.
 * @return nullopt if the payload is not a kernel protocol entry.
 */
std::optional<KernelLogEntry> decode_entry(const std::string& data);

/** An execute_request as delivered to one kernel replica. */
struct ExecuteRequest
{
    ElectionId election = 0;
    /** NbLang source of the cell. */
    std::string code;
    /** Resources to bind during execution (the session's request). */
    cluster::ResourceSpec resources{};
    /** True if the cell is an IDLT (GPU) task; CPU-only cells skip the
     *  dynamic GPU binding. */
    bool is_gpu = true;
    /** True if the scheduler converted this to a yield_request for this
     *  replica (§3.2.2: the scheduler can pre-select the executor). */
    bool yield_converted = false;
    /** Client-side submission time (for interactivity accounting). */
    sim::Time submitted_at = 0;
};

/** Why an execution finished. */
enum class ExecutionStatus
{
    kOk,
    kError,  ///< NbLang raised (syntax/runtime error in user code).
};

/** Executor-side result of a cell execution. */
struct ExecutionResult
{
    ElectionId election = 0;
    std::int32_t executor_replica = -1;
    ExecutionStatus status = ExecutionStatus::kOk;
    std::string error;
    std::string output;
    /** When the replica received the request. */
    sim::Time received_at = 0;
    /** When user code actually started running (end of delay window). */
    sim::Time execution_started_at = 0;
    /** When user code finished. */
    sim::Time execution_finished_at = 0;
    /** When the reply left the replica (after GPU unbind). */
    sim::Time replied_at = 0;
    /** Raft election-protocol latency (steps 2-5 of Fig. 5). */
    sim::Time election_latency = 0;
    /** Data-store reads needed to page in referenced large objects. */
    std::int32_t restore_reads = 0;
    /** True if this replica also executed the previous cell. */
    bool executor_reused = false;
    /** True if GPUs were committed immediately at request receipt. */
    bool gpus_committed_immediately = false;
};

}  // namespace nbos::kernel

#endif  // NBOS_KERNEL_PROTOCOL_HPP
