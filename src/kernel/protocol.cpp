#include "kernel/protocol.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nbos::kernel {

const char*
to_string(EntryKind kind)
{
    switch (kind) {
      case EntryKind::kLead:
        return "LEAD";
      case EntryKind::kYield:
        return "YIELD";
      case EntryKind::kVote:
        return "VOTE";
      case EntryKind::kDone:
        return "DONE";
      case EntryKind::kSync:
        return "SYNC";
    }
    return "?";
}

std::string
encode_entry(const KernelLogEntry& entry)
{
    char head[96];
    const int head_len =
        std::snprintf(head, sizeof(head), "NBK %s %llu %d %d ",
                      to_string(entry.kind),
                      static_cast<unsigned long long>(entry.election),
                      entry.replica, entry.target);
    std::string out;
    out.reserve(static_cast<std::size_t>(head_len) + entry.payload.size());
    out.append(head, static_cast<std::size_t>(head_len));
    out += entry.payload;
    return out;
}

std::optional<KernelLogEntry>
decode_entry(const std::string& data)
{
    if (data.rfind("NBK ", 0) != 0) {
        return std::nullopt;
    }
    KernelLogEntry entry;
    char kind[16] = {0};
    unsigned long long election = 0;
    int replica = -1;
    int target = -1;
    int consumed = 0;
    const int matched =
        std::sscanf(data.c_str(), "NBK %15s %llu %d %d %n", kind, &election,
                    &replica, &target, &consumed);
    if (matched < 4) {
        return std::nullopt;
    }
    if (std::strcmp(kind, "LEAD") == 0) {
        entry.kind = EntryKind::kLead;
    } else if (std::strcmp(kind, "YIELD") == 0) {
        entry.kind = EntryKind::kYield;
    } else if (std::strcmp(kind, "VOTE") == 0) {
        entry.kind = EntryKind::kVote;
    } else if (std::strcmp(kind, "DONE") == 0) {
        entry.kind = EntryKind::kDone;
    } else if (std::strcmp(kind, "SYNC") == 0) {
        entry.kind = EntryKind::kSync;
    } else {
        return std::nullopt;
    }
    entry.election = election;
    entry.replica = replica;
    entry.target = target;
    if (consumed > 0 && static_cast<std::size_t>(consumed) <= data.size()) {
        entry.payload = data.substr(static_cast<std::size_t>(consumed));
    }
    return entry;
}

}  // namespace nbos::kernel
