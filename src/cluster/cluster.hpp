/**
 * @file
 * The elastic server fleet: server registry plus cluster-wide aggregates
 * used by placement (dynamic SR cap, §3.4.1) and the auto-scaler (§3.4.2).
 */
#ifndef NBOS_CLUSTER_CLUSTER_HPP
#define NBOS_CLUSTER_CLUSTER_HPP

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/server.hpp"

namespace nbos::cluster {

/**
 * Registry of GPU servers. Servers can be added (scale-out) and removed
 * (scale-in) at runtime.
 *
 * Layout: parallel arrays (ids, nodes) kept in id order — ids are handed
 * out monotonically, so scale-out is a push_back and the autoscaler /
 * prewarmer / health-check window scans stream two dense arrays instead
 * of chasing map nodes. Lookup is a binary search on the contiguous id
 * column; scale-in (rare) pays the O(n) erase.
 */
class Cluster
{
  public:
    /** Id-ordered iteration over the parallel arrays, yielding
     *  (ServerId, GpuServer*) pairs so range-for destructuring reads the
     *  same as it did over the old id -> server map. */
    class ServerView
    {
      public:
        class Iterator
        {
          public:
            Iterator(const ServerId* id,
                     const std::unique_ptr<GpuServer>* node)
                : id_(id), node_(node)
            {
            }
            std::pair<ServerId, GpuServer*> operator*() const
            {
                return {*id_, node_->get()};
            }
            Iterator& operator++()
            {
                ++id_;
                ++node_;
                return *this;
            }
            bool operator!=(const Iterator& other) const
            {
                return id_ != other.id_;
            }

          private:
            const ServerId* id_;
            const std::unique_ptr<GpuServer>* node_;
        };

        ServerView(const std::vector<ServerId>& ids,
                   const std::vector<std::unique_ptr<GpuServer>>& nodes)
            : ids_(ids), nodes_(nodes)
        {
        }
        Iterator begin() const { return {ids_.data(), nodes_.data()}; }
        Iterator end() const
        {
            return {ids_.data() + ids_.size(), nodes_.data() + nodes_.size()};
        }
        std::size_t size() const { return ids_.size(); }

      private:
        const std::vector<ServerId>& ids_;
        const std::vector<std::unique_ptr<GpuServer>>& nodes_;
    };

    explicit Cluster(ResourceSpec server_shape = ResourceSpec::server_8gpu());

    /** Provision one server of the default shape. */
    GpuServer& add_server();

    /** Provision one server of a custom shape. */
    GpuServer& add_server(const ResourceSpec& shape);

    /**
     * Remove a server.
     * @return false if the id is unknown.
     */
    bool remove_server(ServerId id);

    GpuServer* find(ServerId id);
    const GpuServer* find(ServerId id) const;

    /** Number of provisioned servers. */
    std::size_t size() const { return ids_.size(); }

    /** Iterate over servers in id order. */
    ServerView servers() const { return {ids_, nodes_}; }

    /** The dense id column (id order; parallel to the node column). */
    const std::vector<ServerId>& ids() const { return ids_; }

    /** All server ids in id order. */
    std::vector<ServerId> server_ids() const;

    /** Total GPUs across all servers (sum G). */
    std::int32_t total_gpus() const;

    /** Total subscribed GPUs across all servers (sum S). */
    std::int32_t total_subscribed_gpus() const;

    /** Total exclusively committed GPUs across all servers (sum C). */
    std::int32_t total_committed_gpus() const;

    /** Total committed millicpus across all servers. */
    std::int64_t total_committed_millicpus() const;

    /**
     * Cluster-wide subscription-ratio limit, sum(S) / (sum(G) * R)
     * (§3.4.1); 0 when the cluster is empty.
     */
    double cluster_subscription_ratio(std::int32_t replicas_per_kernel) const;

    /** The default server shape for scale-out. */
    const ResourceSpec& server_shape() const { return server_shape_; }

  private:
    /** Index of @p id in the parallel arrays, or npos. */
    std::size_t index_of(ServerId id) const;

    static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

    ResourceSpec server_shape_;
    ServerId next_id_ = 1;
    std::vector<ServerId> ids_;
    std::vector<std::unique_ptr<GpuServer>> nodes_;
};

/**
 * Bookkeeping for the pre-warmed container pool (§3.2.3). The Container
 * Prewarmer component in the Global Scheduler refills it; this class only
 * tracks availability per server.
 */
class PrewarmPool
{
  public:
    /** @param target_per_server warm containers to maintain per server. */
    explicit PrewarmPool(std::int32_t target_per_server);

    /** Track a newly provisioned server (starts with zero warm). */
    void register_server(ServerId id);

    /** Forget a removed server. */
    void unregister_server(ServerId id);

    /** Warm containers currently available on @p server. */
    std::int32_t available(ServerId server) const;

    /** Warm containers being provisioned for @p server. */
    std::int32_t pending(ServerId server) const;

    /** Take one warm container; false if none available. */
    bool acquire(ServerId server);

    /** Record the start of a warm-container provisioning. */
    void begin_refill(ServerId server);

    /** Record a completed warm-container provisioning. */
    void complete_refill(ServerId server);

    /** Return a container to the pool (LCP policy returns after use). */
    void release(ServerId server);

    /** How many refills @p server needs to reach the target. */
    std::int32_t deficit(ServerId server) const;

    std::int32_t target_per_server() const { return target_per_server_; }

    /** Pool-wide counters. */
    std::uint64_t total_acquired() const { return total_acquired_; }
    std::uint64_t total_misses() const { return total_misses_; }

  private:
    struct State
    {
        std::int32_t available = 0;
        std::int32_t pending = 0;
    };

    std::int32_t target_per_server_;
    std::map<ServerId, State> pools_;
    std::uint64_t total_acquired_ = 0;
    std::uint64_t total_misses_ = 0;
};

}  // namespace nbos::cluster

#endif  // NBOS_CLUSTER_CLUSTER_HPP
