#include "cluster/server.hpp"

#include <algorithm>
#include <cassert>

namespace nbos::cluster {

const char*
to_string(ContainerState state)
{
    switch (state) {
      case ContainerState::kProvisioning:
        return "provisioning";
      case ContainerState::kWarm:
        return "warm";
      case ContainerState::kIdle:
        return "idle";
      case ContainerState::kRunning:
        return "running";
      case ContainerState::kTerminated:
        return "terminated";
    }
    return "unknown";
}

GpuServer::GpuServer(ServerId id, ResourceSpec capacity)
    : id_(id),
      capacity_(capacity),
      device_busy_(static_cast<std::size_t>(
                       capacity.gpus > 0 ? capacity.gpus : 0),
                   false)
{
}

void
GpuServer::subscribe(const ResourceSpec& spec)
{
    subscribed_ = subscribed_ + spec;
}

void
GpuServer::unsubscribe(const ResourceSpec& spec)
{
    subscribed_ = subscribed_ - spec;
    assert(subscribed_.gpus >= 0 && subscribed_.millicpus >= 0 &&
           subscribed_.memory_mb >= 0);
}

double
GpuServer::subscription_ratio(std::int32_t replicas_per_kernel) const
{
    if (capacity_.gpus <= 0 || replicas_per_kernel <= 0) {
        return 0.0;
    }
    return static_cast<double>(subscribed_.gpus) /
           (static_cast<double>(capacity_.gpus) *
            static_cast<double>(replicas_per_kernel));
}

bool
GpuServer::can_commit(const ResourceSpec& spec) const
{
    return (committed_ + spec).fits_within(capacity_);
}

bool
GpuServer::commit(const ResourceSpec& spec)
{
    if (!can_commit(spec)) {
        return false;
    }
    committed_ = committed_ + spec;
    return true;
}

void
GpuServer::release(const ResourceSpec& spec)
{
    committed_ = committed_ - spec;
    assert(committed_.gpus >= 0 && committed_.millicpus >= 0 &&
           committed_.memory_mb >= 0);
}

std::optional<std::vector<std::int32_t>>
GpuServer::commit_devices(const ResourceSpec& spec)
{
    if (!commit(spec)) {
        return std::nullopt;
    }
    std::vector<std::int32_t> devices;
    devices.reserve(static_cast<std::size_t>(spec.gpus));
    for (std::size_t i = 0;
         i < device_busy_.size() &&
         devices.size() < static_cast<std::size_t>(spec.gpus);
         ++i) {
        if (!device_busy_[i]) {
            device_busy_[i] = true;
            devices.push_back(static_cast<std::int32_t>(i));
        }
    }
    // commit() succeeded, so enough free devices must exist.
    assert(devices.size() == static_cast<std::size_t>(spec.gpus));
    return devices;
}

void
GpuServer::release_devices(const ResourceSpec& spec,
                           const std::vector<std::int32_t>& devices)
{
    release(spec);
    for (const std::int32_t id : devices) {
        if (id >= 0 &&
            static_cast<std::size_t>(id) < device_busy_.size()) {
            device_busy_[static_cast<std::size_t>(id)] = false;
        }
    }
}

bool
GpuServer::device_in_use(std::int32_t id) const
{
    return id >= 0 && static_cast<std::size_t>(id) < device_busy_.size() &&
           device_busy_[static_cast<std::size_t>(id)];
}

void
GpuServer::add_container(const Container& container)
{
    assert(container.server == id_);
    containers_[container.id] = container;
}

void
GpuServer::remove_container(ContainerId id)
{
    containers_.erase(id);
}

Container*
GpuServer::find_container(ContainerId id)
{
    const auto it = containers_.find(id);
    return it == containers_.end() ? nullptr : &it->second;
}

std::size_t
GpuServer::count_replicas_of(KernelId kernel) const
{
    std::size_t count = 0;
    for (const auto& [id, container] : containers_) {
        if (container.kernel == kernel &&
            container.state != ContainerState::kTerminated) {
            ++count;
        }
    }
    return count;
}

bool
GpuServer::is_idle() const
{
    return std::none_of(containers_.begin(), containers_.end(),
                        [](const auto& kv) {
                            return kv.second.state ==
                                   ContainerState::kRunning;
                        });
}

}  // namespace nbos::cluster
