/**
 * @file
 * GPU server and container models.
 *
 * A GpuServer tracks two independent resource views, mirroring §3.2.1 and
 * §3.4 of the paper:
 *  - *subscriptions*: resources requested by resident kernel replicas.
 *    Replicas "subscribe" without exclusivity; the subscription ratio
 *    SR = S / (G * R) drives placement decisions.
 *  - *commitments*: resources exclusively bound to a replica while it is
 *    executing a cell (dynamic GPU binding, §3.3).
 */
#ifndef NBOS_CLUSTER_SERVER_HPP
#define NBOS_CLUSTER_SERVER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/resources.hpp"
#include "sim/time.hpp"

namespace nbos::cluster {

/** Identifier of a GPU server. */
using ServerId = std::int64_t;
/** Identifier of a container. */
using ContainerId = std::int64_t;
/** Identifier of a distributed kernel. */
using KernelId = std::int64_t;

/** Sentinel ids. */
inline constexpr ServerId kNoServer = -1;
inline constexpr KernelId kNoKernel = -1;

/** Lifecycle of a kernel-replica container. */
enum class ContainerState
{
    kProvisioning,  ///< Cold start in progress.
    kWarm,          ///< Pre-warmed, unassigned (in the prewarm pool).
    kIdle,          ///< Hosting a replica that is not executing.
    kRunning,       ///< Hosting the executor replica of an active task.
    kTerminated,
};

/** Human-readable container-state name. */
const char* to_string(ContainerState state);

/** A kernel-replica container resident on one server. */
struct Container
{
    ContainerId id = -1;
    ServerId server = kNoServer;
    ContainerState state = ContainerState::kProvisioning;
    KernelId kernel = kNoKernel;
    std::int32_t replica_index = -1;
    /** Resources the resident replica subscribed to. */
    ResourceSpec subscribed{};
    /** True if this container came from the pre-warm pool. */
    bool from_prewarm_pool = false;
    /** Provisioning completion time (for diagnostics). */
    sim::Time ready_at = 0;
};

/** Provisioning / data-movement latencies for containers and GPU binding. */
struct ContainerTimings
{
    /** On-demand (cold) container provisioning: image pull + start. */
    sim::Time cold_start_min = 8 * sim::kSecond;
    sim::Time cold_start_max = 25 * sim::kSecond;
    /** Assigning a pre-warmed container to a kernel replica. */
    sim::Time prewarm_assign = 350 * sim::kMillisecond;
    /** Host-mem -> VRAM model load on the execution critical path (§3.3,
     *  "typically only takes up to a couple hundred milliseconds"). */
    sim::Time gpu_bind_min = 80 * sim::kMillisecond;
    sim::Time gpu_bind_max = 250 * sim::kMillisecond;
    /** VRAM -> host-mem copy after execution. */
    sim::Time gpu_unbind_min = 40 * sim::kMillisecond;
    sim::Time gpu_unbind_max = 150 * sim::kMillisecond;
};

/**
 * One GPU server. Pure bookkeeping: all timing behaviour lives in the
 * Local/Global schedulers.
 */
class GpuServer
{
  public:
    GpuServer(ServerId id, ResourceSpec capacity);

    ServerId id() const { return id_; }
    const ResourceSpec& capacity() const { return capacity_; }

    /** @name Subscriptions (non-exclusive reservations) */
    ///@{
    void subscribe(const ResourceSpec& spec);
    void unsubscribe(const ResourceSpec& spec);
    std::int32_t subscribed_gpus() const { return subscribed_.gpus; }
    const ResourceSpec& subscribed() const { return subscribed_; }

    /**
     * Subscription ratio S / (G * R) from §3.4.1.
     * @param replicas_per_kernel the R divisor (3 by default).
     */
    double subscription_ratio(std::int32_t replicas_per_kernel) const;
    ///@}

    /** @name Exclusive commitments (during cell execution) */
    ///@{
    /** True if the uncommitted remainder can hold @p spec. */
    bool can_commit(const ResourceSpec& spec) const;

    /**
     * Exclusively bind @p spec.
     * @return false (no change) if it does not fit.
     */
    bool commit(const ResourceSpec& spec);

    /** Release a previous commitment. */
    void release(const ResourceSpec& spec);

    /**
     * Exclusively bind @p spec and assign concrete GPU device ids (§3.3:
     * the Global Scheduler embeds the device ids of the allocated GPUs in
     * the request metadata). Lowest free ids are assigned first.
     * @return the device ids, or std::nullopt if the spec does not fit.
     */
    std::optional<std::vector<std::int32_t>>
    commit_devices(const ResourceSpec& spec);

    /** Release a commitment made with commit_devices(). */
    void release_devices(const ResourceSpec& spec,
                         const std::vector<std::int32_t>& devices);

    /** True if GPU device @p id is currently assigned. */
    bool device_in_use(std::int32_t id) const;

    std::int32_t committed_gpus() const { return committed_.gpus; }
    std::int32_t idle_gpus() const
    {
        return capacity_.gpus - committed_.gpus;
    }
    const ResourceSpec& committed() const { return committed_; }
    ///@}

    /** @name Containers */
    ///@{
    void add_container(const Container& container);
    void remove_container(ContainerId id);
    Container* find_container(ContainerId id);
    const std::map<ContainerId, Container>& containers() const
    {
        return containers_;
    }
    /** Number of containers hosting replicas of @p kernel. */
    std::size_t count_replicas_of(KernelId kernel) const;
    ///@}

    /** True if no container is in the kRunning state. */
    bool is_idle() const;

    /** Mark the server as draining (excluded from placement). */
    void set_draining(bool draining) { draining_ = draining; }
    bool draining() const { return draining_; }

  private:
    ServerId id_;
    ResourceSpec capacity_;
    /** Per-device busy flags (index = CUDA-style device id). */
    std::vector<bool> device_busy_;
    ResourceSpec subscribed_{0, 0, 0, 0.0};
    ResourceSpec committed_{0, 0, 0, 0.0};
    std::map<ContainerId, Container> containers_;
    bool draining_ = false;
};

}  // namespace nbos::cluster

#endif  // NBOS_CLUSTER_SERVER_HPP
