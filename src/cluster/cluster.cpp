#include "cluster/cluster.hpp"

#include <algorithm>

namespace nbos::cluster {

Cluster::Cluster(ResourceSpec server_shape) : server_shape_(server_shape)
{
}

std::size_t
Cluster::index_of(ServerId id) const
{
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it == ids_.end() || *it != id) {
        return kNpos;
    }
    return static_cast<std::size_t>(it - ids_.begin());
}

GpuServer&
Cluster::add_server()
{
    return add_server(server_shape_);
}

GpuServer&
Cluster::add_server(const ResourceSpec& shape)
{
    // Ids are monotonic, so appending keeps the arrays id-sorted.
    const ServerId id = next_id_++;
    auto server = std::make_unique<GpuServer>(id, shape);
    GpuServer& ref = *server;
    ids_.push_back(id);
    nodes_.push_back(std::move(server));
    return ref;
}

bool
Cluster::remove_server(ServerId id)
{
    const std::size_t index = index_of(id);
    if (index == kNpos) {
        return false;
    }
    ids_.erase(ids_.begin() + static_cast<std::ptrdiff_t>(index));
    nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(index));
    return true;
}

GpuServer*
Cluster::find(ServerId id)
{
    const std::size_t index = index_of(id);
    return index == kNpos ? nullptr : nodes_[index].get();
}

const GpuServer*
Cluster::find(ServerId id) const
{
    const std::size_t index = index_of(id);
    return index == kNpos ? nullptr : nodes_[index].get();
}

std::vector<ServerId>
Cluster::server_ids() const
{
    return ids_;
}

std::int32_t
Cluster::total_gpus() const
{
    std::int32_t total = 0;
    for (const auto& server : nodes_) {
        total += server->capacity().gpus;
    }
    return total;
}

std::int32_t
Cluster::total_subscribed_gpus() const
{
    std::int32_t total = 0;
    for (const auto& server : nodes_) {
        total += server->subscribed_gpus();
    }
    return total;
}

std::int32_t
Cluster::total_committed_gpus() const
{
    std::int32_t total = 0;
    for (const auto& server : nodes_) {
        total += server->committed_gpus();
    }
    return total;
}

std::int64_t
Cluster::total_committed_millicpus() const
{
    std::int64_t total = 0;
    for (const auto& server : nodes_) {
        total += server->committed().millicpus;
    }
    return total;
}

double
Cluster::cluster_subscription_ratio(std::int32_t replicas_per_kernel) const
{
    const std::int32_t gpus = total_gpus();
    if (gpus <= 0 || replicas_per_kernel <= 0) {
        return 0.0;
    }
    return static_cast<double>(total_subscribed_gpus()) /
           (static_cast<double>(gpus) *
            static_cast<double>(replicas_per_kernel));
}

PrewarmPool::PrewarmPool(std::int32_t target_per_server)
    : target_per_server_(target_per_server)
{
}

void
PrewarmPool::register_server(ServerId id)
{
    pools_.emplace(id, State{});
}

void
PrewarmPool::unregister_server(ServerId id)
{
    pools_.erase(id);
}

std::int32_t
PrewarmPool::available(ServerId server) const
{
    const auto it = pools_.find(server);
    return it == pools_.end() ? 0 : it->second.available;
}

std::int32_t
PrewarmPool::pending(ServerId server) const
{
    const auto it = pools_.find(server);
    return it == pools_.end() ? 0 : it->second.pending;
}

bool
PrewarmPool::acquire(ServerId server)
{
    const auto it = pools_.find(server);
    if (it == pools_.end() || it->second.available <= 0) {
        ++total_misses_;
        return false;
    }
    --it->second.available;
    ++total_acquired_;
    return true;
}

void
PrewarmPool::begin_refill(ServerId server)
{
    const auto it = pools_.find(server);
    if (it != pools_.end()) {
        ++it->second.pending;
    }
}

void
PrewarmPool::complete_refill(ServerId server)
{
    const auto it = pools_.find(server);
    if (it != pools_.end()) {
        if (it->second.pending > 0) {
            --it->second.pending;
        }
        ++it->second.available;
    }
}

void
PrewarmPool::release(ServerId server)
{
    const auto it = pools_.find(server);
    if (it != pools_.end()) {
        ++it->second.available;
    }
}

std::int32_t
PrewarmPool::deficit(ServerId server) const
{
    const auto it = pools_.find(server);
    if (it == pools_.end()) {
        return 0;
    }
    const std::int32_t shortfall =
        target_per_server_ - it->second.available - it->second.pending;
    return shortfall > 0 ? shortfall : 0;
}

}  // namespace nbos::cluster
