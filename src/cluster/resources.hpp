/**
 * @file
 * Resource vocabulary shared by the schedulers and the kernel layer.
 *
 * Matches the paper's resource-request argument (§3.2.1): millicpus
 * (1/1000 vCPU), memory in MB, whole GPUs, and VRAM in GB.
 */
#ifndef NBOS_CLUSTER_RESOURCES_HPP
#define NBOS_CLUSTER_RESOURCES_HPP

#include <cstdint>
#include <string>

namespace nbos::cluster {

/** A resource request or capacity vector. */
struct ResourceSpec
{
    std::int32_t millicpus = 1000;
    std::int64_t memory_mb = 4096;
    std::int32_t gpus = 1;
    double vram_gb = 16.0;

    /** True if every dimension of *this fits within @p capacity. */
    bool fits_within(const ResourceSpec& capacity) const;

    /** Component-wise sum. */
    ResourceSpec operator+(const ResourceSpec& other) const;

    /** Component-wise difference (may go negative; callers guard). */
    ResourceSpec operator-(const ResourceSpec& other) const;

    bool operator==(const ResourceSpec& other) const = default;

    /** Render as "cpus=.../mem=.../gpus=.../vram=...". */
    std::string to_string() const;

    /** The 8-GPU server shape used throughout the evaluation
     *  (p3.16xlarge-like: 64 vCPUs, 488 GB, 8 GPUs with 16 GB VRAM). */
    static ResourceSpec server_8gpu();
};

}  // namespace nbos::cluster

#endif  // NBOS_CLUSTER_RESOURCES_HPP
