#include "cluster/resources.hpp"

#include <cstdio>

namespace nbos::cluster {

bool
ResourceSpec::fits_within(const ResourceSpec& capacity) const
{
    return millicpus <= capacity.millicpus &&
           memory_mb <= capacity.memory_mb && gpus <= capacity.gpus &&
           vram_gb <= capacity.vram_gb;
}

ResourceSpec
ResourceSpec::operator+(const ResourceSpec& other) const
{
    return ResourceSpec{millicpus + other.millicpus,
                        memory_mb + other.memory_mb, gpus + other.gpus,
                        vram_gb + other.vram_gb};
}

ResourceSpec
ResourceSpec::operator-(const ResourceSpec& other) const
{
    return ResourceSpec{millicpus - other.millicpus,
                        memory_mb - other.memory_mb, gpus - other.gpus,
                        vram_gb - other.vram_gb};
}

std::string
ResourceSpec::to_string() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "cpus=%dm mem=%lldMB gpus=%d vram=%.1fGB", millicpus,
                  static_cast<long long>(memory_mb), gpus, vram_gb);
    return buf;
}

ResourceSpec
ResourceSpec::server_8gpu()
{
    return ResourceSpec{64000, 488 * 1024, 8, 8 * 16.0};
}

}  // namespace nbos::cluster
