/**
 * @file
 * Synthetic workload generation calibrated to the three traces analyzed in
 * §2.3 of the paper.
 *
 * The proprietary AdobeTrace cannot be redistributed, so we fit log-normal
 * marginals to every percentile the paper publishes and re-synthesize
 * statistically matching workloads (see DESIGN.md §1 for the substitution
 * argument). Philly and Alibaba profiles reproduce the published medians
 * for the Fig. 2 comparison.
 */
#ifndef NBOS_WORKLOAD_GENERATOR_HPP
#define NBOS_WORKLOAD_GENERATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workload/trace.hpp"

namespace nbos::workload {

/** Distribution parameters for one trace family. */
struct TraceProfile
{
    std::string name;

    /** Task duration ~ lognormal(mu, sigma), seconds. */
    double duration_mu = 4.787;  // ln(120 s)
    double duration_sigma = 1.7;
    /** Hard floor on durations (trace sample granularity). */
    double duration_floor_s = 15.0;

    /** Within-session IAT = iat_floor + lognormal(mu, sigma), seconds. */
    double iat_mu = 4.094;  // ln(60 s)
    double iat_sigma = 2.0;
    double iat_floor_s = 240.0;

    /** Session arrivals: Poisson at this hourly rate. */
    double session_arrival_per_hour = 5.2;
    /** Session lifetime ~ lognormal(mu, sigma), seconds. */
    double session_lifetime_mu = 11.7;  // ~ ln(1.4 days)
    double session_lifetime_sigma = 1.0;

    /** Fraction of tasks that use GPUs. */
    double gpu_task_fraction = 1.0;
    /** Weights for requesting 1 / 2 / 4 / 8 GPUs per session. */
    std::vector<double> gpu_count_weights{0.45, 0.25, 0.20, 0.10};

    /** True if tasks within a session are strictly serial (notebook users
     *  wait for a cell to finish, §2.3.2); false for batch traces whose
     *  schedulers submit jobs concurrently (Philly/Alibaba). */
    bool serial_tasks = true;

    /** Fraction of sessions that never submit a training task — their
     *  reserved GPUs stay completely idle (§2.3.3: ~70%% of GPUs were
     *  never used by their session). */
    double no_task_fraction = 0.0;
    /** Fraction of sessions that are mostly idle: their think-time gaps
     *  are stretched by idle_iat_multiplier (the 74-75%% of sessions that
     *  use GPUs at most 5%% of their lifetime). */
    double idle_session_fraction = 0.0;
    double idle_iat_multiplier = 15.0;

    /** Probability that an IAT is a long dormant gap (user walks away) —
     *  this is what makes notebook sessions mostly idle (§2.3.3). */
    double long_gap_probability = 0.12;
    /** Long gap ~ lognormal(mu, sigma), seconds. */
    double long_gap_mu = 8.88;  // ~ ln(2 h)
    double long_gap_sigma = 1.0;

    /** @name Load skew (routing-policy benches)
     *
     * Hot-tenant skew: each session is independently hot with probability
     * hot_session_fraction, and a hot session's think-time gaps are
     * divided by hot_boost — multiplying its task rate and making a few
     * sessions dominate the load (the worst case for static hash
     * routing). Hot draws come from a *derived* RNG stream split off the
     * generator lazily on the first draw, so the default (fraction 0)
     * draws nothing and every pre-skew trace stays byte-identical.
     */
    ///@{
    double hot_session_fraction = 0.0;
    double hot_boost = 1.0;
    ///@}

    /** @name Heavy-tailed cell costs (the `heavy_tail` profile)
     *
     * When duration_pareto_alpha > 0, task durations are drawn from
     * Pareto(duration_pareto_xm, duration_pareto_alpha) instead of the
     * lognormal — alpha near 1 produces the infinite-variance tails that
     * stress migration and the SR cap. Off (0, the default) the lognormal
     * draw is consumed exactly as before, so every historical trace stays
     * byte-identical.
     */
    ///@{
    double duration_pareto_alpha = 0.0;
    double duration_pareto_xm = 20.0;
    ///@}

    /** Profile matching the AdobeTrace percentiles in §2.3
     *  (p50 dur 120 s, p50 IAT 300 s, min IAT 240 s). */
    static TraceProfile adobe();

    /** PhillyTrace profile (p50 dur 621 s, p50 IAT 44 s). */
    static TraceProfile philly();

    /** AlibabaTrace profile (p50 dur 957 s, p50 IAT 38 s). */
    static TraceProfile alibaba();
};

/** Generation knobs independent of the trace family. */
struct GeneratorOptions
{
    /** Trace makespan. */
    sim::Time makespan = 17 * sim::kHour + 30 * sim::kMinute;
    /** Cap on generated sessions (<0 means unlimited). For multi-tenant
     *  profiles the cap applies per tenant stream, so merged totals stay
     *  the sum of the per-tenant marginals. */
    std::int64_t max_sessions = -1;
    /** If true, sessions outlive the trace end (the 17.5-hour excerpt in
     *  Fig. 7 only ever accumulates sessions). */
    bool sessions_survive_trace = false;
    /** Multiplier on the profile's session arrival rate — the scale tier
     *  drives million-session streams through the calibrated profiles
     *  without stretching the makespan. 1.0 (the default) multiplies the
     *  rate exactly, so every historical trace stays byte-identical. */
    double arrival_rate_scale = 1.0;
};

/**
 * Deterministic workload synthesizer.
 *
 * @par Authoring new workload profiles
 * Named profiles (workload/profiles.hpp) compose this generator rather
 * than reimplementing it: a profile owns the arrival process — *when*
 * sessions start — and delegates every per-session draw to make_session
 * on its own generator instance, so session shapes stay calibrated to
 * the §2.3 marginals. The contract that keeps the `adobe` / `philly` /
 * `alibaba` streams byte-identical forever: draws on rng() happen in
 * exactly the historical order (arrival gap, then the session's draws,
 * repeated), and any *new* randomness — burst schedules, thinning
 * accept/reject, tenant interleaves — comes from a stream derived via
 * sim::Rng::split() or an independently seeded Rng, never from extra
 * draws on the main stream.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(sim::Rng rng);

    /** Generate a trace from @p profile. */
    Trace generate(const TraceProfile& profile,
                   const GeneratorOptions& options);

    /** Generate the 17.5-hour AdobeTrace excerpt used by the prototype
     *  evaluation (§5.2, Fig. 7: at most ~90 concurrent sessions). */
    Trace adobe_excerpt_17_5h();

    /** Generate the 90-day "summer portion" (Fig. 20, §5.5). */
    Trace adobe_summer_90d();

    /** Draw one session starting at @p start — the profile-authoring
     *  surface (see the class note): custom arrival processes call this
     *  per arrival and get byte-identical sessions to generate()'s. */
    SessionSpec make_session(const TraceProfile& profile, SessionId id,
                             sim::Time start, sim::Time trace_end,
                             bool survive_trace);

    /** The generator's main RNG stream, exposed so custom arrival
     *  processes draw their inter-arrival gaps in the historical order. */
    sim::Rng& rng() { return rng_; }

  private:
    std::string synthesize_cell_code(const SessionSpec& session,
                                     const CellTask& task) const;

    sim::Rng rng_;
    /** Derived stream for hot-tenant skew draws, split off rng_ lazily on
     *  the first draw (TraceProfile::hot_session_fraction > 0) so
     *  skew-free generation consumes exactly the historical stream. */
    sim::Rng skew_rng_;
    bool skew_split_ = false;
};

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_GENERATOR_HPP
