/**
 * @file
 * The workload-profile family: named, registrable scenario generators
 * beyond the single AdobeTrace calibration (ROADMAP item 3).
 *
 * A WorkloadProfile owns an arrival process and composes the calibrated
 * WorkloadGenerator/TraceProfile machinery for the per-session draws (see
 * the authoring note on WorkloadGenerator). Profiles are resolved by name
 * through the process-wide ProfileRegistry — mirroring core::EngineRegistry
 * — so benches and sweeps enumerate scenarios the same way they enumerate
 * engines (`NBOS_BENCH_PROFILE`).
 *
 * Built-in profiles:
 *   adobe / philly / alibaba  the §2.3 calibrations, byte-identical to
 *                             WorkloadGenerator::generate on the same seed
 *   diurnal                   sinusoidal arrival-rate modulation (thinned
 *                             Poisson, peak mid-day)
 *   flash_crowd               Poisson bursts of short-lived sessions atop
 *                             the adobe baseline
 *   heavy_tail                Pareto cell costs (infinite-variance tails)
 *   multi_tenant              adobe + philly + alibaba tenant classes
 *                             merged on one timeline
 *   batch_interactive         serial notebook tenant blended with a
 *                             long-duration batch tenant
 *
 * Every profile's randomness beyond the historical per-session stream
 * comes from split/derived RNG streams, so the three base traces never
 * move (pinned by determinism_test).
 */
#ifndef NBOS_WORKLOAD_PROFILES_HPP
#define NBOS_WORKLOAD_PROFILES_HPP

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "workload/generator.hpp"
#include "workload/session_source.hpp"

namespace nbos::workload {

/** Abstract named workload scenario: opens deterministic session streams
 *  at a seed and materializes traces from them. */
class WorkloadProfile
{
  public:
    WorkloadProfile(std::string name, std::string description)
        : name_(std::move(name)), description_(std::move(description))
    {
    }
    virtual ~WorkloadProfile() = default;

    /** Registry name (e.g. "flash_crowd"). */
    const std::string& name() const { return name_; }
    /** One-line scenario summary. */
    const std::string& description() const { return description_; }

    /** Number of independently generated tenant classes the profile
     *  merges (1 for single-stream profiles). */
    virtual std::size_t tenant_count() const { return 1; }

    /** Open the session stream for (@p seed, @p options). Streams are
     *  deterministic: same arguments, same sessions, every time. */
    virtual std::unique_ptr<SessionSource> open(
        std::uint64_t seed, const GeneratorOptions& options) const = 0;

    /** Open tenant @p tenant's marginal stream. The merged open() stream
     *  contains exactly the union of the per-tenant marginals (same ids,
     *  same sessions), so per-tenant totals always sum to the merged
     *  total. @throws std::out_of_range for tenant >= tenant_count(). */
    virtual std::unique_ptr<SessionSource> open_tenant(
        std::size_t tenant, std::uint64_t seed,
        const GeneratorOptions& options) const;

    /** Materialize the whole stream as a Trace (collects open()). */
    Trace generate(std::uint64_t seed, const GeneratorOptions& options) const;

  private:
    std::string name_;
    std::string description_;
};

/**
 * Thread-safe name -> factory registry of workload profiles, mirroring
 * core::EngineRegistry: the process-wide instance() comes pre-populated
 * with the built-ins, callers register additional profiles at startup and
 * resolve them by name.
 */
class ProfileRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<WorkloadProfile>()>;

    /** The process-wide registry, pre-populated with the built-ins. */
    static ProfileRegistry& instance();

    /** Register @p factory under @p name.
     *  @return false (and leave the registry unchanged) when @p name is
     *          already taken or @p factory is empty. */
    bool register_profile(const std::string& name, Factory factory);

    /** Instantiate profile @p name, or nullptr when unknown. */
    std::unique_ptr<WorkloadProfile> create(const std::string& name) const;

    bool contains(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/** Names of the built-in profiles (always registered). */
inline constexpr const char* kProfileAdobe = "adobe";
inline constexpr const char* kProfilePhilly = "philly";
inline constexpr const char* kProfileAlibaba = "alibaba";
inline constexpr const char* kProfileDiurnal = "diurnal";
inline constexpr const char* kProfileFlashCrowd = "flash_crowd";
inline constexpr const char* kProfileHeavyTail = "heavy_tail";
inline constexpr const char* kProfileMultiTenant = "multi_tenant";
inline constexpr const char* kProfileBatchInteractive = "batch_interactive";

/** The sinusoidal arrival-rate multiplier the `diurnal` profile thins
 *  against: 1 + A·sin(2π·(hour_of_day − 6)/24) with A = 0.75 — peak 1.75x
 *  at noon, trough 0.25x at midnight. Exposed so the property tier can
 *  check generated hourly arrival counts against the curve. */
double diurnal_modulation(sim::Time t);

/** Peak value of diurnal_modulation (the thinning envelope). */
double diurnal_modulation_peak();

/**
 * Stream-generate (@p profile, @p seed, @p options) straight to @p out in
 * the nbos-trace-v1 format, byte-identical to
 * save_trace(profile.generate(seed, options)) but with O(live session)
 * memory: one counting pass pins the header's session count, a second
 * pass re-opens the same deterministic stream and writes session by
 * session, so month-scale traces never materialize.
 */
void generate_trace_stream(const WorkloadProfile& profile,
                           std::uint64_t seed,
                           const GeneratorOptions& options,
                           std::ostream& out);

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_PROFILES_HPP
