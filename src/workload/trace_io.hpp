/**
 * @file
 * Trace serialization: save/load synthesized workloads as CSV so
 * experiments can be archived, diffed, and replayed bit-for-bit (the
 * paper's artifact ships its trace as files; this is our equivalent).
 *
 * Format: a header line, one `S` row per session, one `T` row per task.
 * Cell code is not stored — it is re-synthesized deterministically from
 * the session metadata on load.
 */
#ifndef NBOS_WORKLOAD_TRACE_IO_HPP
#define NBOS_WORKLOAD_TRACE_IO_HPP

#include <iosfwd>
#include <string>

#include "workload/trace.hpp"

namespace nbos::workload {

/** Serialize @p trace to @p out (CSV-ish, line oriented). */
void save_trace(const Trace& trace, std::ostream& out);

/** Save to a file. @return false on I/O failure. */
bool save_trace_file(const Trace& trace, const std::string& path);

/**
 * Parse a trace previously written by save_trace.
 * @throws std::runtime_error on malformed input.
 */
Trace load_trace(std::istream& in);

/** Load from a file. @throws std::runtime_error if unreadable. */
Trace load_trace_file(const std::string& path);

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_TRACE_IO_HPP
