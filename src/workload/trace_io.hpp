/**
 * @file
 * Trace serialization: save/load synthesized workloads as CSV so
 * experiments can be archived, diffed, and replayed bit-for-bit (the
 * paper's artifact ships its trace as files; this is our equivalent).
 *
 * Format: a header line, one `S` row per session, one `T` row per task.
 * Cell code is not stored — it is re-synthesized deterministically from
 * the session metadata on load.
 */
#ifndef NBOS_WORKLOAD_TRACE_IO_HPP
#define NBOS_WORKLOAD_TRACE_IO_HPP

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "workload/trace.hpp"

namespace nbos::workload {

/**
 * Structured parse failure raised by load_trace / load_trace_file.
 *
 * Malformed numeric fields previously escaped as raw std::invalid_argument /
 * std::out_of_range from the std::sto* helpers with no location at all;
 * every malformed input now surfaces as this exception, carrying the source
 * name (file path or "<stream>"), the 1-based line, and the offending field.
 */
class TraceParseError : public std::runtime_error
{
  public:
    TraceParseError(std::string source, std::size_t line, std::string field,
                    const std::string& detail);

    /** File path or "<stream>" for stream input. */
    const std::string& source() const { return source_; }
    /** 1-based line number of the offending row. */
    std::size_t line() const { return line_; }
    /** Name of the field that failed to parse (may be a row description). */
    const std::string& field() const { return field_; }

  private:
    std::string source_;
    std::size_t line_;
    std::string field_;
};

/** Serialize @p trace to @p out (CSV-ish, line oriented). */
void save_trace(const Trace& trace, std::ostream& out);

/** Save to a file. @return false on I/O failure. */
bool save_trace_file(const Trace& trace, const std::string& path);

/**
 * Parse a trace previously written by save_trace.
 * @param source_name label used in parse errors (defaults to "<stream>").
 * @throws TraceParseError on malformed input.
 */
Trace load_trace(std::istream& in,
                 const std::string& source_name = "<stream>");

/** Load from a file. @throws std::runtime_error if unreadable,
 *  TraceParseError (with the path as source) if malformed. */
Trace load_trace_file(const std::string& path);

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_TRACE_IO_HPP
