/**
 * @file
 * Trace serialization: save/load synthesized workloads as CSV so
 * experiments can be archived, diffed, and replayed bit-for-bit (the
 * paper's artifact ships its trace as files; this is our equivalent).
 *
 * Format: a header line, one `S` row per session, one `T` row per task.
 * Cell code is not stored — it is re-synthesized deterministically from
 * the session metadata on load.
 */
#ifndef NBOS_WORKLOAD_TRACE_IO_HPP
#define NBOS_WORKLOAD_TRACE_IO_HPP

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"
#include "workload/session_source.hpp"
#include "workload/trace.hpp"

namespace nbos::workload {

/**
 * Structured parse failure raised by load_trace / load_trace_file.
 *
 * Malformed numeric fields previously escaped as raw std::invalid_argument /
 * std::out_of_range from the std::sto* helpers with no location at all;
 * every malformed input now surfaces as this exception, carrying the source
 * name (file path or "<stream>"), the 1-based line, and the offending field.
 */
class TraceParseError : public std::runtime_error
{
  public:
    TraceParseError(std::string source, std::size_t line, std::string field,
                    const std::string& detail);

    /** File path or "<stream>" for stream input. */
    const std::string& source() const { return source_; }
    /** 1-based line number of the offending row. */
    std::size_t line() const { return line_; }
    /** Name of the field that failed to parse (may be a row description). */
    const std::string& field() const { return field_; }

  private:
    std::string source_;
    std::size_t line_;
    std::string field_;
};

/**
 * Streaming serializer for the nbos-trace-v1 format: the header goes out
 * at construction, sessions one at a time, so month-scale traces can be
 * written with O(one session) memory. save_trace is implemented on top of
 * this writer, so streamed and materialized output are byte-identical.
 *
 * The format pins the session count in the header, so the count must be
 * known up front (generate_trace_stream counts with a first pass);
 * finish() throws std::logic_error when the written count diverges.
 */
class TraceWriter
{
  public:
    /** Write the header row for a trace of exactly @p session_count
     *  sessions. */
    TraceWriter(std::ostream& out, const std::string& name,
                sim::Time makespan, std::uint64_t session_count);

    /** Append one session (its `S` row plus all `T` rows).
     *  @throws std::logic_error past the declared session count. */
    void write_session(const SessionSpec& session);

    /** Sessions written so far. */
    std::uint64_t written() const { return written_; }

    /** Declare the trace complete.
     *  @throws std::logic_error when the written count does not match the
     *          header. */
    void finish();

  private:
    std::ostream& out_;
    std::uint64_t expected_;
    std::uint64_t written_ = 0;
};

/**
 * Streaming parser for the nbos-trace-v1 format: the header is parsed at
 * construction, sessions are pulled one at a time with O(one session)
 * memory. load_trace is implemented on top of this reader, so it accepts
 * and rejects exactly the same inputs with exactly the same
 * TraceParseError source/line/field.
 */
class TraceReader
{
  public:
    /** Parse the header from @p in.
     *  @param source_name label used in parse errors.
     *  @throws TraceParseError on a malformed header. */
    explicit TraceReader(std::istream& in,
                         std::string source_name = "<stream>");

    /** Trace name from the header. */
    const std::string& name() const { return name_; }
    /** Trace makespan from the header. */
    sim::Time makespan() const { return makespan_; }
    /** Session count the header declares. */
    std::uint64_t session_count() const { return session_count_; }

    /** Parse the next complete session into @p out.
     *  @return false when the stream is exhausted (@p out untouched).
     *  @throws TraceParseError on malformed rows, task-count mismatches,
     *          and a final session tally differing from the header. */
    bool next(SessionSpec& out);

  private:
    std::istream& in_;
    std::string source_;
    std::size_t line_ = 0;
    std::string name_;
    sim::Time makespan_ = 0;
    std::uint64_t session_count_ = 0;
    std::uint64_t emitted_ = 0;
    SessionSpec current_;
    std::uint64_t expected_tasks_ = 0;
    bool has_current_ = false;
    bool done_ = false;
};

/** SessionSource over a TraceReader: lets the engines' streamed drivers
 *  inject a serialized trace without ever materializing it. */
class TraceStreamSource final : public SessionSource
{
  public:
    explicit TraceStreamSource(std::istream& in,
                               std::string source_name = "<stream>")
        : reader_(in, std::move(source_name))
    {
    }

    const std::string& trace_name() const override { return reader_.name(); }
    sim::Time makespan() const override { return reader_.makespan(); }
    bool next(SessionSpec& out) override { return reader_.next(out); }

    /** The underlying reader (header metadata access). */
    const TraceReader& reader() const { return reader_; }

  private:
    TraceReader reader_;
};

/** Serialize @p trace to @p out (CSV-ish, line oriented). */
void save_trace(const Trace& trace, std::ostream& out);

/** Save to a file. @return false on I/O failure. */
bool save_trace_file(const Trace& trace, const std::string& path);

/**
 * Parse a trace previously written by save_trace.
 * @param source_name label used in parse errors (defaults to "<stream>").
 * @throws TraceParseError on malformed input.
 */
Trace load_trace(std::istream& in,
                 const std::string& source_name = "<stream>");

/** Load from a file. @throws std::runtime_error if unreadable,
 *  TraceParseError (with the path as source) if malformed. */
Trace load_trace_file(const std::string& path);

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_TRACE_IO_HPP
