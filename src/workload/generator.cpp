#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace nbos::workload {

namespace {

constexpr double kMaxDurationSeconds = 6.0 * 3600.0;  // clamp pathological tails

/** GPU request options matching the paper's 1-8 GPU server shapes. */
constexpr std::int32_t kGpuOptions[] = {1, 2, 4, 8};

std::string
format_seconds(double seconds)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds);
    return buf;
}

}  // namespace

TraceProfile
TraceProfile::adobe()
{
    TraceProfile profile;
    profile.name = "adobe";
    // p50 duration 120 s; sigma fit to the p90/p99 spread in §2.3.1.
    profile.duration_mu = std::log(120.0);
    profile.duration_sigma = 1.7;
    profile.duration_floor_s = 15.0;  // trace sample granularity
    // IAT = max(240 s floor + lognormal, duration): the lognormal location
    // is fitted so the *joint* median lands at the published 300 s / p75
    // 480 s (§2.3.2) after the serial-execution clamp.
    profile.iat_mu = std::log(17.0);
    profile.iat_sigma = 2.0;
    profile.iat_floor_s = 240.0;
    profile.serial_tasks = true;
    profile.session_arrival_per_hour = 5.2;
    profile.session_lifetime_mu = std::log(1.4 * 86400.0);
    profile.session_lifetime_sigma = 1.0;
    profile.long_gap_probability = 0.12;
    profile.long_gap_mu = std::log(2.0 * 3600.0);
    profile.long_gap_sigma = 1.0;
    return profile;
}

TraceProfile
TraceProfile::philly()
{
    TraceProfile profile;
    profile.name = "philly";
    // p50 duration 621 s (§2.3.1); batch jobs, long tails.
    profile.duration_mu = std::log(621.0);
    profile.duration_sigma = 1.9;
    profile.duration_floor_s = 1.0;
    // p50 IAT 44 s (§2.3.2); batch schedulers submit back-to-back.
    profile.iat_mu = std::log(44.0);
    profile.iat_sigma = 1.4;
    profile.iat_floor_s = 0.0;
    profile.session_arrival_per_hour = 5.2;
    profile.session_lifetime_mu = std::log(0.8 * 86400.0);
    profile.session_lifetime_sigma = 1.0;
    profile.long_gap_probability = 0.0;
    profile.serial_tasks = false;
    return profile;
}

TraceProfile
TraceProfile::alibaba()
{
    TraceProfile profile;
    profile.name = "alibaba";
    // p50 duration 957 s (§2.3.1).
    profile.duration_mu = std::log(957.0);
    profile.duration_sigma = 1.8;
    profile.duration_floor_s = 1.0;
    // p50 IAT 38 s (§2.3.2).
    profile.iat_mu = std::log(38.0);
    profile.iat_sigma = 1.3;
    profile.iat_floor_s = 0.0;
    profile.session_arrival_per_hour = 5.2;
    profile.session_lifetime_mu = std::log(0.8 * 86400.0);
    profile.session_lifetime_sigma = 1.0;
    profile.long_gap_probability = 0.0;
    profile.serial_tasks = false;
    return profile;
}

WorkloadGenerator::WorkloadGenerator(sim::Rng rng) : rng_(rng)
{
}

Trace
WorkloadGenerator::generate(const TraceProfile& profile,
                            const GeneratorOptions& options)
{
    Trace trace;
    trace.name = profile.name;
    trace.makespan = options.makespan;

    const double arrival_mean_s =
        3600.0 / std::max(1e-9, profile.session_arrival_per_hour *
                                    options.arrival_rate_scale);
    sim::Time t = sim::from_seconds(rng_.exponential(arrival_mean_s));
    SessionId next_id = 1;
    while (t < options.makespan &&
           (options.max_sessions < 0 ||
            next_id <= options.max_sessions)) {
        trace.sessions.push_back(make_session(profile, next_id++, t,
                                              options.makespan,
                                              options.sessions_survive_trace));
        t += sim::from_seconds(rng_.exponential(arrival_mean_s));
    }
    return trace;
}

SessionSpec
WorkloadGenerator::make_session(const TraceProfile& profile, SessionId id,
                                sim::Time start, sim::Time trace_end,
                                bool survive_trace)
{
    SessionSpec session;
    session.id = id;
    session.start_time = start;
    if (survive_trace) {
        session.end_time = trace_end;
    } else {
        const double lifetime_s = rng_.lognormal(
            profile.session_lifetime_mu, profile.session_lifetime_sigma);
        session.end_time =
            std::min(trace_end, start + sim::from_seconds(lifetime_s));
    }

    // Resource request: GPUs from the profile weights; CPU/memory/VRAM
    // scale with the GPU count (p3-style shapes).
    const std::size_t gpu_idx =
        rng_.weighted_index(profile.gpu_count_weights);
    const std::int32_t gpus =
        kGpuOptions[std::min<std::size_t>(gpu_idx, 3)];
    session.resources.gpus = gpus;
    session.resources.millicpus = 4000 * gpus;
    session.resources.memory_mb = 16384LL * gpus;
    session.resources.vram_gb = 16.0 * gpus;

    // Model/dataset assignment: random domain, then a random pair within
    // the domain (mirrors the paper's workload driver, §5.1.2).
    const auto domain =
        static_cast<nblang::Domain>(rng_.uniform_int(0, 2));
    session.domain = domain;
    const auto models = nblang::models_in_domain(domain);
    const auto datasets = nblang::datasets_in_domain(domain);
    session.model = models[static_cast<std::size_t>(rng_.uniform_int(
                               0, static_cast<std::int64_t>(
                                      models.size()) - 1))]
                        .name;
    session.dataset =
        datasets[static_cast<std::size_t>(rng_.uniform_int(
                     0, static_cast<std::int64_t>(datasets.size()) - 1))]
            .name;

    // Hot-tenant skew (routing benches): decided on a derived stream so
    // the main stream — and therefore every skew-free trace — is
    // untouched when the knob is off.
    double rate_divisor = 1.0;
    if (profile.hot_session_fraction > 0.0) {
        if (!skew_split_) {
            skew_rng_ = rng_.split();
            skew_split_ = true;
        }
        if (skew_rng_.bernoulli(profile.hot_session_fraction)) {
            rate_divisor = std::max(1.0, profile.hot_boost);
        }
    }

    // Session heterogeneity (§2.3.3): some sessions never train, some are
    // mostly idle with heavily stretched think times.
    double idle_multiplier = 1.0;
    const double category = rng_.uniform();
    if (category < profile.no_task_fraction) {
        return session;  // reserved GPUs, zero training events
    }
    if (category < profile.no_task_fraction +
                       profile.idle_session_fraction) {
        idle_multiplier = profile.idle_iat_multiplier;
    }

    // Task sequence: submissions are serial within a session; the next
    // submit time is at least the previous task's completion plus a short
    // think time, with occasional long dormant gaps.
    sim::Time submit =
        start + sim::from_seconds(
                    (profile.iat_floor_s * 0.25 +
                     rng_.lognormal(profile.iat_mu, profile.iat_sigma)) *
                    idle_multiplier / rate_divisor);
    std::int32_t seq = 0;
    while (submit < session.end_time) {
        CellTask task;
        task.session = id;
        task.seq = seq++;
        task.submit_time = submit;
        // Heavy-tail knob: Pareto durations replace the lognormal draw
        // entirely (one code path per profile, so the off position
        // consumes exactly the historical stream).
        const double duration_s =
            profile.duration_pareto_alpha > 0.0
                ? std::clamp(rng_.pareto(profile.duration_pareto_xm,
                                         profile.duration_pareto_alpha),
                             profile.duration_floor_s, kMaxDurationSeconds)
                : std::clamp(rng_.lognormal(profile.duration_mu,
                                            profile.duration_sigma),
                             profile.duration_floor_s, kMaxDurationSeconds);
        task.duration = sim::from_seconds(duration_s);
        task.is_gpu = rng_.bernoulli(profile.gpu_task_fraction);
        task.code = synthesize_cell_code(session, task);
        session.tasks.push_back(std::move(task));

        double gap_s =
            profile.iat_floor_s +
            rng_.lognormal(profile.iat_mu, profile.iat_sigma);
        if (profile.long_gap_probability > 0.0 &&
            rng_.bernoulli(profile.long_gap_probability)) {
            gap_s += rng_.lognormal(profile.long_gap_mu,
                                    profile.long_gap_sigma);
        }
        gap_s *= idle_multiplier;
        // Hot sessions submit hot_boost times faster (floor included: a
        // whale's rate is bounded only by the serial-execution clamp).
        gap_s /= rate_divisor;
        // Notebook users do not submit concurrent tasks (§2.3.2): the next
        // submit waits for the previous completion plus a minimum think
        // time. Batch traces (Philly/Alibaba) have no such constraint.
        if (profile.serial_tasks) {
            gap_s = std::max(gap_s, duration_s + 10.0);
        }
        submit += sim::from_seconds(gap_s);
    }
    return session;
}

std::string
WorkloadGenerator::synthesize_cell_code(const SessionSpec& session,
                                        const CellTask& task) const
{
    const auto model = nblang::find_model(session.model);
    const double model_mb =
        model ? static_cast<double>(model->param_bytes) / (1024.0 * 1024.0)
              : 100.0;
    const double vram_mb =
        std::min(16384.0 * session.resources.gpus, model_mb + 2048.0);
    const double duration_s = sim::to_seconds(task.duration);

    std::string code;
    if (!task.is_gpu) {
        // CPU-only cell: light bookkeeping state plus CPU compute.
        code += "note_" + std::to_string(task.seq) + " = \"edit\"\n";
        code += "cpu_compute(" + format_seconds(duration_s) + ")\n";
        return code;
    }
    if (task.seq == 0) {
        // First cell: set up the session's model/dataset/state.
        code += "model = load_model(\"" + session.model + "\")\n";
        code += "data = load_dataset(\"" + session.dataset + "\")\n";
        code += "step = 0\n";
    } else {
        code += "step = step + 1\n";
    }
    // Small state (goes through Raft SMR) ...
    code += "loss_" + std::to_string(task.seq) + " = " +
            format_seconds(1.0 / (1.0 + task.seq)) + "\n";
    // ... the training itself, with the trace-calibrated duration ...
    code += "gpu_compute(" + format_seconds(duration_s) + ", vram_mb=" +
            format_seconds(vram_mb) + ")\n";
    // ... and large state (checkpointed to the Distributed Data Store).
    // Periodically the cell *reads* the previous weights (fine-tuning from
    // the last checkpoint), forcing a data-store page-in whenever a
    // different replica became the executor (Fig. 11 "Reads").
    if (task.seq > 0 && task.seq % 7 == 3) {
        code += "weights = weights + tensor(" + format_seconds(model_mb) +
                ")\n";
    } else {
        code += "weights = tensor(" + format_seconds(model_mb) + ")\n";
    }
    return code;
}

Trace
WorkloadGenerator::adobe_excerpt_17_5h()
{
    GeneratorOptions options;
    options.makespan = 17 * sim::kHour + 30 * sim::kMinute;
    options.max_sessions = 90;  // Fig. 7: at most 90 concurrent sessions
    options.sessions_survive_trace = true;
    return generate(TraceProfile::adobe(), options);
}

Trace
WorkloadGenerator::adobe_summer_90d()
{
    TraceProfile profile = TraceProfile::adobe();
    // Scaled-down summer portion: fewer arrivals but long-lived sessions,
    // preserving the growth shape of Fig. 20 at tractable event counts.
    profile.session_arrival_per_hour = 0.22;
    profile.session_lifetime_mu = std::log(18.0 * 86400.0);
    profile.session_lifetime_sigma = 0.8;
    profile.long_gap_probability = 0.2;
    profile.long_gap_mu = std::log(4.0 * 3600.0);
    // Production-trace heterogeneity (Fig. 2c): nearly half the sessions
    // never train (~70% of reserved GPUs completely idle in the paper);
    // another ~30% train very rarely, so ~75% of sessions use their GPUs
    // at most 5% of their lifetime.
    profile.no_task_fraction = 0.45;
    profile.idle_session_fraction = 0.3;
    profile.idle_iat_multiplier = 18.0;

    GeneratorOptions options;
    options.makespan = 90 * sim::kDay;
    options.max_sessions = -1;
    options.sessions_survive_trace = false;
    return generate(profile, options);
}

}  // namespace nbos::workload
