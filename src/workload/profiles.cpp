#include "workload/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

#include "workload/trace_io.hpp"

namespace nbos::workload {

namespace {

constexpr double kTau = 6.283185307179586476925287;

/** Diurnal modulation amplitude: 1.75x peak, 0.25x trough. */
constexpr double kDiurnalAmplitude = 0.75;

/** Flash-crowd shape: a burst every ~4 hours (scaled with
 *  arrival_rate_scale), 8-40 sessions each, arriving on a ~90 s ramp. */
constexpr double kBurstIntervalS = 4.0 * 3600.0;
constexpr std::int64_t kBurstMinSessions = 8;
constexpr std::int64_t kBurstMaxSessions = 40;
constexpr double kBurstRampS = 90.0;

/** Tenant id namespaces: tenant k owns [k*stride, (k+1)*stride). */
constexpr SessionId kTenantIdStride = 1'000'000'000'000LL;

double
arrival_mean_seconds(const TraceProfile& profile,
                     const GeneratorOptions& options)
{
    return 3600.0 / std::max(1e-9, profile.session_arrival_per_hour *
                                       options.arrival_rate_scale);
}

/** Derive tenant @p tenant's independent generator stream: children are
 *  split off a root seeded with the caller's seed, so any one tenant's
 *  marginal stream is reproducible without opening the others. */
sim::Rng
tenant_stream(std::uint64_t seed, std::size_t tenant)
{
    sim::Rng root(seed);
    sim::Rng child = root.split();
    for (std::size_t i = 0; i < tenant; ++i) {
        child = root.split();
    }
    return child;
}

/**
 * The base Poisson arrival stream: a pull-shaped replay of
 * WorkloadGenerator::generate's loop (arrival gap drawn on the main
 * stream, then the session's own draws), so on the same Rng it produces
 * byte-identical sessions to the in-memory generator. @p id_offset moves
 * the emitted ids into a tenant's namespace without touching any draw.
 */
class ArrivalStream final : public SessionSource
{
  public:
    ArrivalStream(sim::Rng rng, TraceProfile profile,
                  GeneratorOptions options, std::string trace_name,
                  SessionId id_offset)
        : gen_(rng),
          profile_(std::move(profile)),
          options_(options),
          name_(std::move(trace_name)),
          id_offset_(id_offset)
    {
    }

    const std::string& trace_name() const override { return name_; }
    sim::Time makespan() const override { return options_.makespan; }

    bool next(SessionSpec& out) override
    {
        if (done_) {
            return false;
        }
        const double mean = arrival_mean_seconds(profile_, options_);
        if (!primed_) {
            t_ = sim::from_seconds(gen_.rng().exponential(mean));
            primed_ = true;
        } else {
            t_ += sim::from_seconds(gen_.rng().exponential(mean));
        }
        if (t_ >= options_.makespan ||
            (options_.max_sessions >= 0 &&
             next_id_ > options_.max_sessions)) {
            done_ = true;
            return false;
        }
        out = gen_.make_session(profile_, id_offset_ + next_id_++, t_,
                                options_.makespan,
                                options_.sessions_survive_trace);
        return true;
    }

  private:
    WorkloadGenerator gen_;
    TraceProfile profile_;
    GeneratorOptions options_;
    std::string name_;
    SessionId id_offset_;
    SessionId next_id_ = 1;
    sim::Time t_ = 0;
    bool primed_ = false;
    bool done_ = false;
};

/** Single-stream profile over one fixed TraceProfile. */
class BasicProfile final : public WorkloadProfile
{
  public:
    BasicProfile(std::string name, std::string description,
                 TraceProfile profile)
        : WorkloadProfile(std::move(name), std::move(description)),
          profile_(std::move(profile))
    {
    }

    std::unique_ptr<SessionSource> open(
        std::uint64_t seed, const GeneratorOptions& options) const override
    {
        return std::make_unique<ArrivalStream>(sim::Rng(seed), profile_,
                                               options, name(), 0);
    }

  private:
    TraceProfile profile_;
};

/** Non-homogeneous Poisson arrivals by Lewis-Shedler thinning: candidate
 *  gaps are drawn at the peak rate on the generator's main stream, the
 *  accept/reject draws on a split stream, so the session shapes stay on
 *  the calibrated marginals. */
class DiurnalStream final : public SessionSource
{
  public:
    DiurnalStream(std::uint64_t seed, TraceProfile profile,
                  GeneratorOptions options, std::string trace_name)
        : gen_(sim::Rng(0)),
          profile_(std::move(profile)),
          options_(options),
          name_(std::move(trace_name))
    {
        sim::Rng root(seed);
        thin_rng_ = root.split();
        gen_ = WorkloadGenerator(root);
    }

    const std::string& trace_name() const override { return name_; }
    sim::Time makespan() const override { return options_.makespan; }

    bool next(SessionSpec& out) override
    {
        if (done_) {
            return false;
        }
        const double peak = diurnal_modulation_peak();
        const double mean_peak_s =
            arrival_mean_seconds(profile_, options_) / peak;
        for (;;) {
            t_ += sim::from_seconds(gen_.rng().exponential(mean_peak_s));
            if (t_ >= options_.makespan ||
                (options_.max_sessions >= 0 &&
                 next_id_ > options_.max_sessions)) {
                done_ = true;
                return false;
            }
            if (thin_rng_.uniform() < diurnal_modulation(t_) / peak) {
                out = gen_.make_session(profile_, next_id_++, t_,
                                        options_.makespan,
                                        options_.sessions_survive_trace);
                return true;
            }
        }
    }

  private:
    WorkloadGenerator gen_;
    sim::Rng thin_rng_;
    TraceProfile profile_;
    GeneratorOptions options_;
    std::string name_;
    SessionId next_id_ = 1;
    sim::Time t_ = 0;
    bool done_ = false;
};

class DiurnalProfile final : public WorkloadProfile
{
  public:
    DiurnalProfile()
        : WorkloadProfile(kProfileDiurnal,
                          "adobe sessions on a sinusoidal day/night "
                          "arrival cycle (1.75x noon peak, 0.25x "
                          "midnight trough)")
    {
    }

    std::unique_ptr<SessionSource> open(
        std::uint64_t seed, const GeneratorOptions& options) const override
    {
        TraceProfile profile = TraceProfile::adobe();
        profile.name = kProfileDiurnal;
        return std::make_unique<DiurnalStream>(seed, std::move(profile),
                                               options, name());
    }
};

/** Adobe baseline arrivals with Poisson bursts of short-lived sessions
 *  layered on top: burst times/sizes/ramps come from a split stream, the
 *  sessions themselves from the main stream in emission order. */
class FlashCrowdStream final : public SessionSource
{
  public:
    FlashCrowdStream(std::uint64_t seed, GeneratorOptions options,
                     std::string trace_name)
        : gen_(sim::Rng(0)), options_(options), name_(std::move(trace_name))
    {
        sim::Rng root(seed);
        burst_rng_ = root.split();
        gen_ = WorkloadGenerator(root);

        base_profile_ = TraceProfile::adobe();
        base_profile_.name = kProfileFlashCrowd;
        // Crowd sessions: short-lived, eager, always-training arrivals —
        // the spike the autoscaler has to absorb.
        burst_profile_ = base_profile_;
        burst_profile_.session_lifetime_mu = std::log(2.0 * 3600.0);
        burst_profile_.session_lifetime_sigma = 0.6;
        burst_profile_.long_gap_probability = 0.05;

        const double inter_burst_s =
            kBurstIntervalS / std::max(1e-9, options_.arrival_rate_scale);
        next_base_ = sim::from_seconds(gen_.rng().exponential(
            arrival_mean_seconds(base_profile_, options_)));
        next_burst_start_ =
            sim::from_seconds(burst_rng_.exponential(inter_burst_s));
        inter_burst_s_ = inter_burst_s;
    }

    const std::string& trace_name() const override { return name_; }
    sim::Time makespan() const override { return options_.makespan; }

    bool next(SessionSpec& out) override
    {
        if (done_) {
            return false;
        }
        if (options_.max_sessions >= 0 &&
            next_id_ > options_.max_sessions) {
            done_ = true;
            return false;
        }
        // Expand every burst that starts before the earliest pending
        // candidate, so the global minimum below is the true next arrival.
        for (;;) {
            const sim::Time horizon =
                pending_.empty() ? next_base_
                                 : std::min(next_base_, pending_.top());
            if (next_burst_start_ >= horizon ||
                next_burst_start_ >= options_.makespan) {
                break;
            }
            const std::int64_t count = burst_rng_.uniform_int(
                kBurstMinSessions, kBurstMaxSessions);
            sim::Time at = next_burst_start_;
            for (std::int64_t i = 0; i < count; ++i) {
                at += sim::from_seconds(
                    burst_rng_.exponential(kBurstRampS));
                if (at < options_.makespan) {
                    pending_.push(at);
                }
            }
            next_burst_start_ +=
                sim::from_seconds(burst_rng_.exponential(inter_burst_s_));
        }
        sim::Time t = 0;
        bool burst = false;
        if (!pending_.empty() && pending_.top() <= next_base_) {
            t = pending_.top();
            pending_.pop();
            burst = true;
        } else {
            t = next_base_;
            next_base_ += sim::from_seconds(gen_.rng().exponential(
                arrival_mean_seconds(base_profile_, options_)));
        }
        if (t >= options_.makespan) {
            done_ = true;
            return false;
        }
        out = gen_.make_session(burst ? burst_profile_ : base_profile_,
                                next_id_++, t, options_.makespan,
                                options_.sessions_survive_trace);
        return true;
    }

  private:
    WorkloadGenerator gen_;
    sim::Rng burst_rng_;
    GeneratorOptions options_;
    std::string name_;
    TraceProfile base_profile_;
    TraceProfile burst_profile_;
    std::priority_queue<sim::Time, std::vector<sim::Time>,
                        std::greater<sim::Time>>
        pending_;
    sim::Time next_base_ = 0;
    sim::Time next_burst_start_ = 0;
    double inter_burst_s_ = kBurstIntervalS;
    SessionId next_id_ = 1;
    bool done_ = false;
};

class FlashCrowdProfile final : public WorkloadProfile
{
  public:
    FlashCrowdProfile()
        : WorkloadProfile(kProfileFlashCrowd,
                          "Poisson bursts of 8-40 short-lived sessions "
                          "on a ~90 s ramp atop the adobe baseline")
    {
    }

    std::unique_ptr<SessionSource> open(
        std::uint64_t seed, const GeneratorOptions& options) const override
    {
        return std::make_unique<FlashCrowdStream>(seed, options, name());
    }
};

/** Lazy K-way merge of per-tenant streams by (start_time, id). */
class MergeSource final : public SessionSource
{
  public:
    MergeSource(std::string trace_name, sim::Time makespan,
                std::vector<std::unique_ptr<SessionSource>> children)
        : name_(std::move(trace_name)),
          makespan_(makespan),
          children_(std::move(children)),
          pending_(children_.size()),
          has_pending_(children_.size(), false)
    {
        for (std::size_t i = 0; i < children_.size(); ++i) {
            has_pending_[i] = children_[i]->next(pending_[i]);
        }
    }

    const std::string& trace_name() const override { return name_; }
    sim::Time makespan() const override { return makespan_; }

    bool next(SessionSpec& out) override
    {
        std::size_t pick = children_.size();
        for (std::size_t i = 0; i < children_.size(); ++i) {
            if (!has_pending_[i]) {
                continue;
            }
            if (pick == children_.size() ||
                pending_[i].start_time < pending_[pick].start_time ||
                (pending_[i].start_time == pending_[pick].start_time &&
                 pending_[i].id < pending_[pick].id)) {
                pick = i;
            }
        }
        if (pick == children_.size()) {
            return false;
        }
        out = std::move(pending_[pick]);
        has_pending_[pick] = children_[pick]->next(pending_[pick]);
        return true;
    }

  private:
    std::string name_;
    sim::Time makespan_;
    std::vector<std::unique_ptr<SessionSource>> children_;
    std::vector<SessionSpec> pending_;
    std::vector<char> has_pending_;
};

/** K tenant classes with distinct TraceProfiles merged on one timeline;
 *  tenant k generates on an independent derived stream inside its own id
 *  namespace, so the merged stream is exactly the union of the per-tenant
 *  marginals (the property the props tier pins). */
class MultiTenantProfile final : public WorkloadProfile
{
  public:
    MultiTenantProfile(std::string name, std::string description,
                       std::vector<TraceProfile> tenants)
        : WorkloadProfile(std::move(name), std::move(description)),
          tenants_(std::move(tenants))
    {
    }

    std::size_t tenant_count() const override { return tenants_.size(); }

    std::unique_ptr<SessionSource> open_tenant(
        std::size_t tenant, std::uint64_t seed,
        const GeneratorOptions& options) const override
    {
        if (tenant >= tenants_.size()) {
            throw std::out_of_range("tenant index out of range for " +
                                    name());
        }
        return std::make_unique<ArrivalStream>(
            tenant_stream(seed, tenant), tenants_[tenant], options, name(),
            kTenantIdStride * static_cast<SessionId>(tenant));
    }

    std::unique_ptr<SessionSource> open(
        std::uint64_t seed, const GeneratorOptions& options) const override
    {
        std::vector<std::unique_ptr<SessionSource>> children;
        children.reserve(tenants_.size());
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            children.push_back(open_tenant(i, seed, options));
        }
        return std::make_unique<MergeSource>(name(), options.makespan,
                                             std::move(children));
    }

  private:
    std::vector<TraceProfile> tenants_;
};

TraceProfile
scaled(TraceProfile profile, const char* name, double arrival_scale)
{
    profile.name = name;
    profile.session_arrival_per_hour *= arrival_scale;
    return profile;
}

std::unique_ptr<WorkloadProfile>
make_multi_tenant()
{
    std::vector<TraceProfile> tenants;
    tenants.push_back(scaled(TraceProfile::adobe(), kProfileMultiTenant,
                             1.0));
    tenants.push_back(scaled(TraceProfile::philly(), kProfileMultiTenant,
                             0.6));
    tenants.push_back(scaled(TraceProfile::alibaba(), kProfileMultiTenant,
                             0.5));
    return std::make_unique<MultiTenantProfile>(
        kProfileMultiTenant,
        "adobe + philly + alibaba tenant classes merged on one timeline",
        std::move(tenants));
}

std::unique_ptr<WorkloadProfile>
make_batch_interactive()
{
    std::vector<TraceProfile> tenants;
    // Interactive tenant: serial notebook users (cells wait for the
    // previous completion).
    tenants.push_back(scaled(TraceProfile::adobe(),
                             kProfileBatchInteractive, 0.7));
    // Batch tenant: concurrent long jobs (30 min median, heavy spread).
    TraceProfile batch = TraceProfile::philly();
    batch.duration_mu = std::log(1800.0);
    batch.duration_sigma = 2.0;
    tenants.push_back(scaled(std::move(batch), kProfileBatchInteractive,
                             0.3));
    return std::make_unique<MultiTenantProfile>(
        kProfileBatchInteractive,
        "serial notebook tenant blended with a long-duration batch "
        "tenant",
        std::move(tenants));
}

std::unique_ptr<WorkloadProfile>
make_heavy_tail()
{
    TraceProfile profile = TraceProfile::alibaba();
    profile.name = kProfileHeavyTail;
    profile.duration_pareto_alpha = 1.1;
    profile.duration_pareto_xm = 20.0;
    return std::make_unique<BasicProfile>(
        kProfileHeavyTail,
        "alibaba arrivals with Pareto(20 s, 1.1) cell costs "
        "(infinite-variance tails)",
        std::move(profile));
}

void
register_builtins(ProfileRegistry& registry)
{
    registry.register_profile(kProfileAdobe, [] {
        return std::make_unique<BasicProfile>(
            kProfileAdobe, "the AdobeTrace calibration (§2.3)",
            TraceProfile::adobe());
    });
    registry.register_profile(kProfilePhilly, [] {
        return std::make_unique<BasicProfile>(
            kProfilePhilly, "the PhillyTrace calibration (§2.3)",
            TraceProfile::philly());
    });
    registry.register_profile(kProfileAlibaba, [] {
        return std::make_unique<BasicProfile>(
            kProfileAlibaba, "the AlibabaTrace calibration (§2.3)",
            TraceProfile::alibaba());
    });
    registry.register_profile(kProfileDiurnal, [] {
        return std::make_unique<DiurnalProfile>();
    });
    registry.register_profile(kProfileFlashCrowd, [] {
        return std::make_unique<FlashCrowdProfile>();
    });
    registry.register_profile(kProfileHeavyTail,
                              [] { return make_heavy_tail(); });
    registry.register_profile(kProfileMultiTenant,
                              [] { return make_multi_tenant(); });
    registry.register_profile(kProfileBatchInteractive,
                              [] { return make_batch_interactive(); });
}

}  // namespace

std::unique_ptr<SessionSource>
WorkloadProfile::open_tenant(std::size_t tenant, std::uint64_t seed,
                             const GeneratorOptions& options) const
{
    if (tenant != 0) {
        throw std::out_of_range("tenant index out of range for " + name_);
    }
    return open(seed, options);
}

Trace
WorkloadProfile::generate(std::uint64_t seed,
                          const GeneratorOptions& options) const
{
    const std::unique_ptr<SessionSource> source = open(seed, options);
    Trace trace;
    trace.name = source->trace_name();
    trace.makespan = source->makespan();
    SessionSpec session;
    while (source->next(session)) {
        trace.sessions.push_back(std::move(session));
    }
    return trace;
}

ProfileRegistry&
ProfileRegistry::instance()
{
    static ProfileRegistry* registry = [] {
        auto* fresh = new ProfileRegistry();
        register_builtins(*fresh);
        return fresh;
    }();
    return *registry;
}

bool
ProfileRegistry::register_profile(const std::string& name, Factory factory)
{
    if (!factory) {
        return false;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<WorkloadProfile>
ProfileRegistry::create(const std::string& name) const
{
    Factory factory;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = factories_.find(name);
        if (it == factories_.end()) {
            return nullptr;
        }
        factory = it->second;
    }
    return factory();
}

bool
ProfileRegistry::contains(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.find(name) != factories_.end();
}

std::vector<std::string>
ProfileRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
        names.push_back(name);
    }
    return names;  // std::map iterates sorted
}

double
diurnal_modulation(sim::Time t)
{
    const double hours = static_cast<double>(t) /
                         static_cast<double>(sim::kHour);
    return 1.0 + kDiurnalAmplitude * std::sin(kTau * (hours - 6.0) / 24.0);
}

double
diurnal_modulation_peak()
{
    return 1.0 + kDiurnalAmplitude;
}

void
generate_trace_stream(const WorkloadProfile& profile, std::uint64_t seed,
                      const GeneratorOptions& options, std::ostream& out)
{
    // Pass 1: count sessions (the header is the first line of the
    // format). Both passes open the same deterministic stream, so the
    // written sessions are exactly the counted ones.
    std::uint64_t count = 0;
    {
        const std::unique_ptr<SessionSource> source =
            profile.open(seed, options);
        SessionSpec session;
        while (source->next(session)) {
            ++count;
        }
    }
    // Pass 2: write session by session with bounded memory.
    const std::unique_ptr<SessionSource> source =
        profile.open(seed, options);
    TraceWriter writer(out, source->trace_name(), source->makespan(),
                       count);
    SessionSpec session;
    while (source->next(session)) {
        writer.write_session(session);
    }
    writer.finish();
}

}  // namespace nbos::workload
