#include "workload/trace.hpp"

#include <algorithm>

namespace nbos::workload {

std::size_t
Trace::task_count() const
{
    std::size_t count = 0;
    for (const SessionSpec& session : sessions) {
        count += session.tasks.size();
    }
    return count;
}

std::vector<const CellTask*>
Trace::tasks_by_submit_time() const
{
    std::vector<const CellTask*> tasks;
    tasks.reserve(task_count());
    for (const SessionSpec& session : sessions) {
        for (const CellTask& task : session.tasks) {
            tasks.push_back(&task);
        }
    }
    std::stable_sort(tasks.begin(), tasks.end(),
                     [](const CellTask* a, const CellTask* b) {
                         if (a->submit_time != b->submit_time) {
                             return a->submit_time < b->submit_time;
                         }
                         if (a->session != b->session) {
                             return a->session < b->session;
                         }
                         return a->seq < b->seq;
                     });
    return tasks;
}

metrics::Percentiles
Trace::durations_seconds() const
{
    metrics::Percentiles p;
    for (const SessionSpec& session : sessions) {
        for (const CellTask& task : session.tasks) {
            p.add(sim::to_seconds(task.duration));
        }
    }
    return p;
}

metrics::Percentiles
Trace::iats_seconds() const
{
    metrics::Percentiles p;
    for (const SessionSpec& session : sessions) {
        for (std::size_t i = 1; i < session.tasks.size(); ++i) {
            p.add(sim::to_seconds(session.tasks[i].submit_time -
                                  session.tasks[i - 1].submit_time));
        }
    }
    return p;
}

metrics::Percentiles
Trace::session_busy_fractions() const
{
    metrics::Percentiles p;
    for (const SessionSpec& session : sessions) {
        const sim::Time lifetime = session.end_time - session.start_time;
        if (lifetime <= 0) {
            continue;
        }
        sim::Time busy = 0;
        for (const CellTask& task : session.tasks) {
            if (task.is_gpu) {
                busy += task.duration;
            }
        }
        p.add(std::min(1.0, sim::to_seconds(busy) /
                                sim::to_seconds(lifetime)));
    }
    return p;
}

}  // namespace nbos::workload
