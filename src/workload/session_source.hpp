/**
 * @file
 * Pull-based session streams: the injection interface shared by the
 * workload-profile generators, the streaming trace reader, and the two
 * NotebookOS engines' windowed drivers.
 *
 * A SessionSource yields complete SessionSpecs one at a time in
 * nondecreasing (start_time, id) order, so month-scale traces can be
 * generated, serialized, and simulated without ever materializing a full
 * workload::Trace in memory.
 */
#ifndef NBOS_WORKLOAD_SESSION_SOURCE_HPP
#define NBOS_WORKLOAD_SESSION_SOURCE_HPP

#include <cstddef>
#include <string>

#include "sim/time.hpp"
#include "workload/trace.hpp"

namespace nbos::workload {

/** A stream of sessions in nondecreasing (start_time, id) order. */
class SessionSource
{
  public:
    virtual ~SessionSource() = default;

    /** Name the resulting trace/results carry. */
    virtual const std::string& trace_name() const = 0;

    /** Trace makespan: every session starts strictly before it. */
    virtual sim::Time makespan() const = 0;

    /** Produce the next session into @p out.
     *  @return false when the stream is exhausted (@p out untouched). */
    virtual bool next(SessionSpec& out) = 0;
};

/** Adapter streaming an already-materialized trace, session by session —
 *  the bridge that lets the streamed engine drivers be checked
 *  bit-for-bit against the in-memory ones. Sessions are copied out in
 *  trace order, which generated traces keep sorted by (start_time, id). */
class TraceSessionSource final : public SessionSource
{
  public:
    explicit TraceSessionSource(const Trace& trace) : trace_(trace) {}

    const std::string& trace_name() const override { return trace_.name; }
    sim::Time makespan() const override { return trace_.makespan; }

    bool next(SessionSpec& out) override
    {
        if (next_ >= trace_.sessions.size()) {
            return false;
        }
        out = trace_.sessions[next_++];
        return true;
    }

  private:
    const Trace& trace_;
    std::size_t next_ = 0;
};

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_SESSION_SOURCE_HPP
