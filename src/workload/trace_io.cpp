#include "workload/trace_io.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nblang/catalog.hpp"

namespace nbos::workload {

TraceParseError::TraceParseError(std::string source, std::size_t line,
                                 std::string field,
                                 const std::string& detail)
    : std::runtime_error(source + ":" + std::to_string(line) + ": field '" +
                         field + "': " + detail),
      source_(std::move(source)),
      line_(line),
      field_(std::move(field))
{
}

namespace {

constexpr const char* kMagic = "#nbos-trace-v1";

std::vector<std::string>
split_csv(const std::string& line)
{
    std::vector<std::string> fields;
    std::string field;
    std::stringstream stream(line);
    while (std::getline(stream, field, ',')) {
        fields.push_back(field);
    }
    return fields;
}

/** Parse position of one row, threaded through the field parsers so every
 *  failure reports source/line/field. */
struct ParseContext
{
    const std::string& source;
    std::size_t line = 0;

    [[noreturn]] void fail(const char* field,
                           const std::string& detail) const
    {
        throw TraceParseError(source, line, field, detail);
    }
};

std::int64_t
parse_i64(const ParseContext& ctx, const char* field, const std::string& raw)
{
    try {
        std::size_t consumed = 0;
        const std::int64_t value = std::stoll(raw, &consumed);
        if (consumed != raw.size()) {
            ctx.fail(field, "trailing garbage in '" + raw + "'");
        }
        return value;
    } catch (const std::invalid_argument&) {
        ctx.fail(field, "not a number: '" + raw + "'");
    } catch (const std::out_of_range&) {
        ctx.fail(field, "out of range: '" + raw + "'");
    }
}

std::uint64_t
parse_u64(const ParseContext& ctx, const char* field, const std::string& raw)
{
    // std::stoull silently wraps negative input ("-1" -> 2^64-1, with
    // leading whitespace skipped); a minus sign is never valid in these
    // unsigned count fields, so reject it anywhere in the token and name
    // the offending field instead of failing later with a count mismatch.
    if (raw.find('-') != std::string::npos) {
        ctx.fail(field, "negative count: '" + raw + "'");
    }
    try {
        std::size_t consumed = 0;
        const std::uint64_t value = std::stoull(raw, &consumed);
        if (consumed != raw.size()) {
            ctx.fail(field, "trailing garbage in '" + raw + "'");
        }
        return value;
    } catch (const std::invalid_argument&) {
        ctx.fail(field, "not a number: '" + raw + "'");
    } catch (const std::out_of_range&) {
        ctx.fail(field, "out of range: '" + raw + "'");
    }
}

std::int32_t
parse_i32(const ParseContext& ctx, const char* field, const std::string& raw)
{
    const std::int64_t value = parse_i64(ctx, field, raw);
    if (value < std::numeric_limits<std::int32_t>::min() ||
        value > std::numeric_limits<std::int32_t>::max()) {
        ctx.fail(field, "out of range: '" + raw + "'");
    }
    return static_cast<std::int32_t>(value);
}

double
parse_double(const ParseContext& ctx, const char* field,
             const std::string& raw)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(raw, &consumed);
        if (consumed != raw.size()) {
            ctx.fail(field, "trailing garbage in '" + raw + "'");
        }
        return value;
    } catch (const std::invalid_argument&) {
        ctx.fail(field, "not a number: '" + raw + "'");
    } catch (const std::out_of_range&) {
        ctx.fail(field, "out of range: '" + raw + "'");
    }
}

/** Re-synthesize the deterministic cell code (mirrors the generator). */
std::string
resynthesize_code(const SessionSpec& session, const CellTask& task)
{
    const auto model = nblang::find_model(session.model);
    const double model_mb =
        model ? static_cast<double>(model->param_bytes) / (1024.0 * 1024.0)
              : 100.0;
    const double vram_mb =
        std::min(16384.0 * session.resources.gpus, model_mb + 2048.0);
    const double duration_s = sim::to_seconds(task.duration);
    char buf[64];
    std::string code;
    if (!task.is_gpu) {
        code += "note_" + std::to_string(task.seq) + " = \"edit\"\n";
        std::snprintf(buf, sizeof(buf), "cpu_compute(%.3f)\n", duration_s);
        code += buf;
        return code;
    }
    if (task.seq == 0) {
        code += "model = load_model(\"" + session.model + "\")\n";
        code += "data = load_dataset(\"" + session.dataset + "\")\n";
        code += "step = 0\n";
    } else {
        code += "step = step + 1\n";
    }
    std::snprintf(buf, sizeof(buf), "loss_%d = %.3f\n", task.seq,
                  1.0 / (1.0 + task.seq));
    code += buf;
    std::snprintf(buf, sizeof(buf), "gpu_compute(%.3f, vram_mb=%.3f)\n",
                  duration_s, vram_mb);
    code += buf;
    if (task.seq > 0 && task.seq % 7 == 3) {
        std::snprintf(buf, sizeof(buf),
                      "weights = weights + tensor(%.3f)\n", model_mb);
    } else {
        std::snprintf(buf, sizeof(buf), "weights = tensor(%.3f)\n",
                      model_mb);
    }
    code += buf;
    return code;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out, const std::string& name,
                         sim::Time makespan, std::uint64_t session_count)
    : out_(out), expected_(session_count)
{
    out_ << kMagic << "," << name << "," << makespan << "," << session_count
         << "\n";
}

void
TraceWriter::write_session(const SessionSpec& session)
{
    if (written_ == expected_) {
        throw std::logic_error(
            "TraceWriter: session written past the declared count of " +
            std::to_string(expected_));
    }
    ++written_;
    out_ << "S," << session.id << "," << session.start_time << ","
         << session.end_time << "," << session.resources.millicpus << ","
         << session.resources.memory_mb << "," << session.resources.gpus
         << "," << session.resources.vram_gb << ","
         << static_cast<int>(session.domain) << "," << session.model << ","
         << session.dataset << "," << session.tasks.size() << "\n";
    for (const CellTask& task : session.tasks) {
        out_ << "T," << task.seq << "," << task.submit_time << ","
             << task.duration << "," << (task.is_gpu ? 1 : 0) << "\n";
    }
}

void
TraceWriter::finish()
{
    if (written_ != expected_) {
        throw std::logic_error(
            "TraceWriter: wrote " + std::to_string(written_) +
            " sessions but the header declared " +
            std::to_string(expected_));
    }
}

TraceReader::TraceReader(std::istream& in, std::string source_name)
    : in_(in), source_(std::move(source_name))
{
    std::string line;
    if (!std::getline(in_, line)) {
        const ParseContext ctx{source_, 0};
        ctx.fail("header", "empty trace stream");
    }
    line_ = 1;
    const ParseContext ctx{source_, line_};
    const auto header = split_csv(line);
    if (header.size() < 4 || header[0] != kMagic) {
        ctx.fail("header", "bad trace header: " + line);
    }
    name_ = header[1];
    makespan_ = parse_i64(ctx, "makespan", header[2]);
    session_count_ = parse_u64(ctx, "session_count", header[3]);
}

bool
TraceReader::next(SessionSpec& out)
{
    if (done_) {
        return false;
    }
    std::string line;
    while (std::getline(in_, line)) {
        ++line_;
        if (line.empty()) {
            continue;
        }
        const ParseContext ctx{source_, line_};
        const auto fields = split_csv(line);
        if (fields[0] == "S") {
            if (fields.size() != 12) {
                ctx.fail("session_row", "bad session row: " + line);
            }
            if (has_current_ && current_.tasks.size() != expected_tasks_) {
                ctx.fail("task_count", "task count mismatch in session " +
                                           std::to_string(current_.id));
            }
            SessionSpec session;
            session.id = parse_i64(ctx, "session_id", fields[1]);
            session.start_time = parse_i64(ctx, "start_time", fields[2]);
            session.end_time = parse_i64(ctx, "end_time", fields[3]);
            session.resources.millicpus =
                parse_i32(ctx, "millicpus", fields[4]);
            session.resources.memory_mb =
                parse_i64(ctx, "memory_mb", fields[5]);
            session.resources.gpus = parse_i32(ctx, "gpus", fields[6]);
            session.resources.vram_gb =
                parse_double(ctx, "vram_gb", fields[7]);
            session.domain = static_cast<nblang::Domain>(
                parse_i32(ctx, "domain", fields[8]));
            session.model = fields[9];
            session.dataset = fields[10];
            expected_tasks_ = parse_u64(ctx, "task_count", fields[11]);
            if (has_current_) {
                out = std::move(current_);
                current_ = std::move(session);
                ++emitted_;
                return true;
            }
            current_ = std::move(session);
            has_current_ = true;
        } else if (fields[0] == "T") {
            if (!has_current_ || fields.size() != 5) {
                ctx.fail("task_row", "orphan/bad task row: " + line);
            }
            CellTask task;
            task.session = current_.id;
            task.seq = parse_i32(ctx, "seq", fields[1]);
            task.submit_time = parse_i64(ctx, "submit_time", fields[2]);
            task.duration = parse_i64(ctx, "duration", fields[3]);
            task.is_gpu = fields[4] == "1";
            task.code = resynthesize_code(current_, task);
            current_.tasks.push_back(std::move(task));
        } else {
            ctx.fail("row_type", "unknown row type: " + line);
        }
    }
    // End of stream: flush the final session (after its task-count check),
    // then verify the tally against the header — the same check order, at
    // the same line numbers, as the historical one-shot parser.
    const ParseContext ctx{source_, line_};
    if (has_current_) {
        if (current_.tasks.size() != expected_tasks_) {
            ctx.fail("task_count", "task count mismatch in final session");
        }
        has_current_ = false;
        ++emitted_;
        out = std::move(current_);
        current_ = SessionSpec{};
        return true;
    }
    done_ = true;
    if (emitted_ != session_count_) {
        ctx.fail("session_count", "session count mismatch");
    }
    return false;
}

void
save_trace(const Trace& trace, std::ostream& out)
{
    TraceWriter writer(out, trace.name, trace.makespan,
                       trace.sessions.size());
    for (const SessionSpec& session : trace.sessions) {
        writer.write_session(session);
    }
    writer.finish();
}

bool
save_trace_file(const Trace& trace, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    save_trace(trace, out);
    return static_cast<bool>(out);
}

Trace
load_trace(std::istream& in, const std::string& source_name)
{
    TraceReader reader(in, source_name);
    Trace trace;
    trace.name = reader.name();
    trace.makespan = reader.makespan();
    // Reserve is only a hint: cap it so a malformed huge count surfaces as
    // the final "session count mismatch" TraceParseError instead of
    // length_error/bad_alloc from the allocator.
    constexpr std::uint64_t kReserveCap = 1u << 20;
    trace.sessions.reserve(std::min(reader.session_count(), kReserveCap));
    SessionSpec session;
    while (reader.next(session)) {
        trace.sessions.push_back(std::move(session));
    }
    return trace;
}

Trace
load_trace_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open trace file: " + path);
    }
    return load_trace(in, path);
}

}  // namespace nbos::workload
