#include "workload/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nblang/catalog.hpp"

namespace nbos::workload {

namespace {

constexpr const char* kMagic = "#nbos-trace-v1";

std::vector<std::string>
split_csv(const std::string& line)
{
    std::vector<std::string> fields;
    std::string field;
    std::stringstream stream(line);
    while (std::getline(stream, field, ',')) {
        fields.push_back(field);
    }
    return fields;
}

/** Re-synthesize the deterministic cell code (mirrors the generator). */
std::string
resynthesize_code(const SessionSpec& session, const CellTask& task)
{
    const auto model = nblang::find_model(session.model);
    const double model_mb =
        model ? static_cast<double>(model->param_bytes) / (1024.0 * 1024.0)
              : 100.0;
    const double vram_mb =
        std::min(16384.0 * session.resources.gpus, model_mb + 2048.0);
    const double duration_s = sim::to_seconds(task.duration);
    char buf[64];
    std::string code;
    if (!task.is_gpu) {
        code += "note_" + std::to_string(task.seq) + " = \"edit\"\n";
        std::snprintf(buf, sizeof(buf), "cpu_compute(%.3f)\n", duration_s);
        code += buf;
        return code;
    }
    if (task.seq == 0) {
        code += "model = load_model(\"" + session.model + "\")\n";
        code += "data = load_dataset(\"" + session.dataset + "\")\n";
        code += "step = 0\n";
    } else {
        code += "step = step + 1\n";
    }
    std::snprintf(buf, sizeof(buf), "loss_%d = %.3f\n", task.seq,
                  1.0 / (1.0 + task.seq));
    code += buf;
    std::snprintf(buf, sizeof(buf), "gpu_compute(%.3f, vram_mb=%.3f)\n",
                  duration_s, vram_mb);
    code += buf;
    if (task.seq > 0 && task.seq % 7 == 3) {
        std::snprintf(buf, sizeof(buf),
                      "weights = weights + tensor(%.3f)\n", model_mb);
    } else {
        std::snprintf(buf, sizeof(buf), "weights = tensor(%.3f)\n",
                      model_mb);
    }
    code += buf;
    return code;
}

}  // namespace

void
save_trace(const Trace& trace, std::ostream& out)
{
    out << kMagic << "," << trace.name << "," << trace.makespan << ","
        << trace.sessions.size() << "\n";
    for (const SessionSpec& session : trace.sessions) {
        out << "S," << session.id << "," << session.start_time << ","
            << session.end_time << "," << session.resources.millicpus << ","
            << session.resources.memory_mb << "," << session.resources.gpus
            << "," << session.resources.vram_gb << ","
            << static_cast<int>(session.domain) << "," << session.model
            << "," << session.dataset << "," << session.tasks.size()
            << "\n";
        for (const CellTask& task : session.tasks) {
            out << "T," << task.seq << "," << task.submit_time << ","
                << task.duration << "," << (task.is_gpu ? 1 : 0) << "\n";
        }
    }
}

bool
save_trace_file(const Trace& trace, const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    save_trace(trace, out);
    return static_cast<bool>(out);
}

Trace
load_trace(std::istream& in)
{
    std::string line;
    if (!std::getline(in, line)) {
        throw std::runtime_error("empty trace stream");
    }
    const auto header = split_csv(line);
    if (header.size() < 4 || header[0] != kMagic) {
        throw std::runtime_error("bad trace header: " + line);
    }
    Trace trace;
    trace.name = header[1];
    trace.makespan = std::stoll(header[2]);
    const auto session_count = std::stoull(header[3]);
    trace.sessions.reserve(session_count);

    SessionSpec* current = nullptr;
    std::size_t expected_tasks = 0;
    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        const auto fields = split_csv(line);
        if (fields[0] == "S") {
            if (fields.size() != 12) {
                throw std::runtime_error("bad session row: " + line);
            }
            if (current != nullptr &&
                current->tasks.size() != expected_tasks) {
                throw std::runtime_error("task count mismatch in session " +
                                         std::to_string(current->id));
            }
            SessionSpec session;
            session.id = std::stoll(fields[1]);
            session.start_time = std::stoll(fields[2]);
            session.end_time = std::stoll(fields[3]);
            session.resources.millicpus =
                static_cast<std::int32_t>(std::stol(fields[4]));
            session.resources.memory_mb = std::stoll(fields[5]);
            session.resources.gpus =
                static_cast<std::int32_t>(std::stol(fields[6]));
            session.resources.vram_gb = std::stod(fields[7]);
            session.domain =
                static_cast<nblang::Domain>(std::stoi(fields[8]));
            session.model = fields[9];
            session.dataset = fields[10];
            expected_tasks = std::stoull(fields[11]);
            trace.sessions.push_back(std::move(session));
            current = &trace.sessions.back();
        } else if (fields[0] == "T") {
            if (current == nullptr || fields.size() != 5) {
                throw std::runtime_error("orphan/bad task row: " + line);
            }
            CellTask task;
            task.session = current->id;
            task.seq = static_cast<std::int32_t>(std::stol(fields[1]));
            task.submit_time = std::stoll(fields[2]);
            task.duration = std::stoll(fields[3]);
            task.is_gpu = fields[4] == "1";
            task.code = resynthesize_code(*current, task);
            current->tasks.push_back(std::move(task));
        } else {
            throw std::runtime_error("unknown row type: " + line);
        }
    }
    if (current != nullptr && current->tasks.size() != expected_tasks) {
        throw std::runtime_error("task count mismatch in final session");
    }
    if (trace.sessions.size() != session_count) {
        throw std::runtime_error("session count mismatch");
    }
    return trace;
}

Trace
load_trace_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open trace file: " + path);
    }
    return load_trace(in);
}

}  // namespace nbos::workload
