/**
 * @file
 * Trace structures: sessions and cell tasks, plus the statistics helpers
 * used for the Fig. 2 workload-characterization CDFs.
 */
#ifndef NBOS_WORKLOAD_TRACE_HPP
#define NBOS_WORKLOAD_TRACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/resources.hpp"
#include "metrics/percentiles.hpp"
#include "nblang/catalog.hpp"
#include "sim/time.hpp"

namespace nbos::workload {

/** Identifier of a user session within a trace. */
using SessionId = std::int64_t;

/** One user-submitted cell task. */
struct CellTask
{
    SessionId session = -1;
    /** Position within the session (0 = first cell). */
    std::int32_t seq = 0;
    /** Absolute submission time. */
    sim::Time submit_time = 0;
    /** Execution duration once running (the trace's "training duration"). */
    sim::Time duration = 0;
    /** True if the task requires GPUs (an IDLT task). */
    bool is_gpu = true;
    /** NbLang source the kernel executes for this cell. */
    std::string code;
};

/** One user session: a long-lived notebook with its task sequence. */
struct SessionSpec
{
    SessionId id = -1;
    sim::Time start_time = 0;
    sim::Time end_time = 0;
    /** The session's resource request (GPUs, CPUs, memory, VRAM). */
    cluster::ResourceSpec resources{};
    nblang::Domain domain = nblang::Domain::kComputerVision;
    std::string model;
    std::string dataset;
    std::vector<CellTask> tasks;
};

/** A full workload trace. */
struct Trace
{
    std::string name;
    std::vector<SessionSpec> sessions;
    sim::Time makespan = 0;

    /** Total number of tasks across all sessions. */
    std::size_t task_count() const;

    /** Pointers to every task ordered by submission time. */
    std::vector<const CellTask*> tasks_by_submit_time() const;

    /** Task durations in seconds (Fig. 2a). */
    metrics::Percentiles durations_seconds() const;

    /** Per-session inter-arrival times in seconds (Fig. 2b; IATs are
     *  measured within each session independently, as in §2.3.2). */
    metrics::Percentiles iats_seconds() const;

    /** Per-session fraction of lifetime spent executing GPU tasks
     *  (Fig. 2c, "Frac. GPU Utilized"). */
    metrics::Percentiles session_busy_fractions() const;
};

}  // namespace nbos::workload

#endif  // NBOS_WORKLOAD_TRACE_HPP
