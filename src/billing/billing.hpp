/**
 * @file
 * The provider-side billing model of §5.5.1.
 *
 * The provider pays for EC2 VMs (one rate per 8-GPU server). Users pay
 * 1.15x the provider's rate, proportional to resource usage. Standby
 * distributed-kernel replicas are charged 12.5% of the base rate; an
 * active replica running a task with g GPUs is charged g/8 of the base
 * rate. Reservation users pay the same 1.15x multiplier on the GPUs they
 * reserve for the whole session lifetime.
 */
#ifndef NBOS_BILLING_BILLING_HPP
#define NBOS_BILLING_BILLING_HPP

#include "metrics/timeseries.hpp"
#include "sim/time.hpp"

namespace nbos::billing {

/** Pricing knobs (defaults follow the paper's example). */
struct BillingConfig
{
    /** Provider's hourly cost for one 8-GPU server (p3.16xlarge-like). */
    double server_hour_cost = 24.48;
    /** User price multiplier over the provider rate. */
    double user_multiplier = 1.15;
    /** Standby replica rate as a fraction of the base server rate. */
    double standby_fraction = 0.125;
    /** GPUs per server. */
    std::int32_t gpus_per_server = 8;
};

/** Cumulative cost/revenue series (Fig. 12). */
struct BillingSeries
{
    /** Cumulative provider cost in dollars. */
    metrics::TimeSeries provider_cost;
    /** Cumulative revenue in dollars. */
    metrics::TimeSeries revenue;
    /** Profit margin (revenue - cost) / revenue, in percent. */
    metrics::TimeSeries profit_margin_pct;

    double final_cost() const { return provider_cost.current(); }
    double final_revenue() const { return revenue.current(); }
    double final_margin_pct() const { return profit_margin_pct.current(); }
};

/**
 * Integrate the billing model over experiment timelines.
 *
 * @param provisioned_gpus  provider-side capacity (GPUs on provisioned
 *                          servers) over time; cost accrues on this.
 * @param reserved_or_standby_gpus
 *        For Reservation: GPUs reserved by active sessions (billed at the
 *        full proportional rate). For NotebookOS: pass the *standby
 *        replica-equivalent* series from standby_replica_series().
 * @param active_gpus       GPUs actively used by running tasks (billed at
 *                          the proportional rate; zero for Reservation,
 *                          whose reservation already covers usage).
 * @param standby_rate      true if the second series bills at the standby
 *                          fraction instead of the proportional rate.
 * @param until             end of the accounting window.
 * @param step              sampling step for the cumulative series.
 */
BillingSeries compute_billing(const BillingConfig& config,
                              const metrics::TimeSeries& provisioned_gpus,
                              const metrics::TimeSeries&
                                  reserved_or_standby_gpus,
                              const metrics::TimeSeries& active_gpus,
                              bool standby_rate, sim::Time until,
                              sim::Time step);

}  // namespace nbos::billing

#endif  // NBOS_BILLING_BILLING_HPP
