#include "billing/billing.hpp"

namespace nbos::billing {

BillingSeries
compute_billing(const BillingConfig& config,
                const metrics::TimeSeries& provisioned_gpus,
                const metrics::TimeSeries& reserved_or_standby_gpus,
                const metrics::TimeSeries& active_gpus, bool standby_rate,
                sim::Time until, sim::Time step)
{
    BillingSeries series;
    if (step <= 0 || until <= 0) {
        return series;
    }
    const double base = config.server_hour_cost;
    const double mult = config.user_multiplier;
    const double per_gpu = base / static_cast<double>(config.gpus_per_server);

    double cost = 0.0;
    double revenue = 0.0;
    for (sim::Time t = 0; t <= until; t += step) {
        const sim::Time next = std::min(t + step, until);
        const double dt_hours = sim::to_hours(next - t);
        if (dt_hours <= 0.0) {
            break;
        }
        // Provider pays for every provisioned GPU (server fraction).
        cost += provisioned_gpus.value_at(t) * per_gpu * dt_hours;
        if (standby_rate) {
            // NotebookOS: standby replicas pay the 12.5% flat rate; the
            // active executor pays proportional to the GPUs in use.
            revenue += reserved_or_standby_gpus.value_at(t) * base * mult *
                       config.standby_fraction * dt_hours;
            revenue += active_gpus.value_at(t) * per_gpu * mult * dt_hours;
        } else {
            // Reservation: sessions pay 1.15x on every reserved GPU for
            // their whole lifetime (usage is already covered).
            revenue += reserved_or_standby_gpus.value_at(t) * per_gpu *
                       mult * dt_hours;
            revenue += active_gpus.value_at(t) * per_gpu * mult * dt_hours;
        }
        series.provider_cost.record(next, cost);
        series.revenue.record(next, revenue);
        const double margin =
            revenue > 0.0 ? (revenue - cost) / revenue * 100.0 : 0.0;
        series.profit_margin_pct.record(next, margin);
    }
    return series;
}

}  // namespace nbos::billing
