#include "chaos/controller.hpp"

#include <algorithm>

namespace nbos::chaos {

ChaosController::ChaosController(sim::Simulation& simulation,
                                 net::Network& network)
    : simulation_(simulation), network_(network)
{
}

void
ChaosController::install(const FaultPlan& plan)
{
    record_.seed = plan.seed;
    for (const FaultEvent& event : plan.events) {
        simulation_.schedule_at(event.at,
                                [this, event] { fire(event); });
    }
}

void
ChaosController::fire(const FaultEvent& event)
{
    // The record stamps the actual fire time (schedule_at clamps past
    // times to now), so a recorded schedule replays exactly as it ran.
    FaultEvent applied = event;
    applied.at = simulation_.now();

    switch (event.kind) {
        case FaultKind::kDropBurst: {
            ++active_drop_bursts_;
            network_.set_chaos_drop_probability(event.value);
            if (event.duration > 0) {
                simulation_.schedule_after(event.duration,
                                           [this] { end_drop_burst(); });
            }
            ++stats_.drop_bursts;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kPartition: {
            if (!hooks_.resolve_endpoint) {
                ++stats_.skipped;
                return;
            }
            const net::NodeId na = hooks_.resolve_endpoint(event.a);
            const net::NodeId nb = hooks_.resolve_endpoint(event.b);
            if (na == net::kNoNode || nb == net::kNoNode || na == nb) {
                ++stats_.skipped;
                return;
            }
            network_.set_partitioned(na, nb, true);
            active_partitions_[{event.a, event.b}].push_back({na, nb});
            ++stats_.partitions;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kHeal: {
            // Heal the concrete link the matching kPartition cut, not
            // whatever the slots resolve to now.
            const auto it = active_partitions_.find({event.a, event.b});
            if (it == active_partitions_.end() || it->second.empty()) {
                ++stats_.skipped;
                return;
            }
            const auto [na, nb] = it->second.back();
            it->second.pop_back();
            if (it->second.empty()) {
                active_partitions_.erase(it);
            }
            network_.set_partitioned(na, nb, false);
            ++stats_.heals;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kCrash: {
            if (!hooks_.crash_replica || !hooks_.crash_replica(event.a)) {
                ++stats_.skipped;
                return;
            }
            ++stats_.crashes;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kRestart: {
            if (!hooks_.restart_replica || !hooks_.restart_replica(event.a)) {
                ++stats_.skipped;
                return;
            }
            ++stats_.restarts;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kClockSkew: {
            if (!hooks_.resolve_endpoint) {
                ++stats_.skipped;
                return;
            }
            const net::NodeId node = hooks_.resolve_endpoint(event.a);
            if (node == net::kNoNode) {
                ++stats_.skipped;
                return;
            }
            active_skew_[node] += event.delay;
            network_.set_chaos_node_delay(node, active_skew_[node]);
            if (event.duration > 0) {
                const sim::Time delay = event.delay;
                simulation_.schedule_after(
                    event.duration,
                    [this, node, delay] { end_clock_skew(node, delay); });
            }
            ++stats_.clock_skews;
            record_.events.push_back(applied);
            return;
        }
        case FaultKind::kLatencySpike: {
            active_spike_total_ += event.delay;
            network_.set_chaos_extra_latency(active_spike_total_);
            if (event.duration > 0) {
                const sim::Time delay = event.delay;
                simulation_.schedule_after(
                    event.duration,
                    [this, delay] { end_latency_spike(delay); });
            }
            ++stats_.latency_spikes;
            record_.events.push_back(applied);
            return;
        }
    }
    ++stats_.skipped;
}

void
ChaosController::end_drop_burst()
{
    if (active_drop_bursts_ > 0 && --active_drop_bursts_ == 0) {
        network_.set_chaos_drop_probability(0.0);
    }
}

void
ChaosController::end_latency_spike(sim::Time delay)
{
    active_spike_total_ = std::max<sim::Time>(0, active_spike_total_ - delay);
    network_.set_chaos_extra_latency(active_spike_total_);
}

void
ChaosController::end_clock_skew(net::NodeId node, sim::Time delay)
{
    const auto it = active_skew_.find(node);
    if (it == active_skew_.end()) {
        return;
    }
    it->second = std::max<sim::Time>(0, it->second - delay);
    network_.set_chaos_node_delay(node, it->second);
    if (it->second == 0) {
        active_skew_.erase(it);
    }
}

}  // namespace nbos::chaos
