#include "chaos/fault_plan.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace nbos::chaos {

namespace {

constexpr std::string_view kPlanHeader = "# nbos-chaos-schedule v1";

constexpr std::array<std::string_view, 7> kKindNames = {
    "drop_burst", "partition", "heal",         "crash",
    "restart",    "clock_skew", "latency_spike",
};

bool
parse_kind(std::string_view token, FaultKind& out)
{
    for (std::size_t i = 0; i < kKindNames.size(); ++i) {
        if (kKindNames[i] == token) {
            out = static_cast<FaultKind>(i);
            return true;
        }
    }
    return false;
}

[[noreturn]] void
fail(std::size_t line_number, const std::string& line, const char* what)
{
    throw std::runtime_error("chaos schedule line " +
                             std::to_string(line_number) + ": " + what +
                             ": \"" + line + "\"");
}

void
serialize_plan_body(std::ostringstream& out, const FaultPlan& plan)
{
    out << "seed " << plan.seed << "\n";
    for (const FaultEvent& event : plan.events) {
        out << "fault " << fault_kind_name(event.kind) << ' ' << event.at
            << ' ' << event.a << ' ' << event.b << ' ' << event.value << ' '
            << event.delay << ' ' << event.duration << "\n";
    }
}

}  // namespace

const char*
fault_kind_name(FaultKind kind)
{
    const auto index = static_cast<std::size_t>(kind);
    return index < kKindNames.size() ? kKindNames[index].data() : "unknown";
}

std::string
serialize_plan(const FaultPlan& plan)
{
    std::ostringstream out;
    out.precision(17);
    out << kPlanHeader << "\n";
    serialize_plan_body(out, plan);
    return out.str();
}

std::string
serialize_schedule(const ScheduleFile& schedule)
{
    std::ostringstream out;
    out.precision(17);
    out << kPlanHeader << "\n";
    for (const auto& [shard, plan] : schedule.shards) {
        out << "shard " << shard << "\n";
        serialize_plan_body(out, plan);
    }
    return out.str();
}

namespace {

/** Shared line parser for plans and schedule files. When @p schedule is
 *  non-null, `shard <n>` lines open a new section; otherwise they are an
 *  error and every line accumulates into @p plan. */
void
parse_lines(const std::string& text, FaultPlan* plan, ScheduleFile* schedule)
{
    std::istringstream in(text);
    std::string line;
    std::size_t line_number = 0;
    bool saw_header = false;
    FaultPlan* current = plan;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty()) {
            continue;
        }
        if (line[0] == '#') {
            if (!saw_header) {
                if (line != kPlanHeader) {
                    fail(line_number, line, "unrecognized header");
                }
                saw_header = true;
            }
            continue;
        }
        std::istringstream fields(line);
        std::string keyword;
        fields >> keyword;
        if (keyword == "shard") {
            if (schedule == nullptr) {
                fail(line_number, line, "shard section in a single plan");
            }
            std::int32_t shard = 0;
            if (!(fields >> shard)) {
                fail(line_number, line, "bad shard index");
            }
            current = &schedule->shards[shard];
            continue;
        }
        if (current == nullptr) {
            fail(line_number, line, "fault line before any shard section");
        }
        if (keyword == "seed") {
            if (!(fields >> current->seed)) {
                fail(line_number, line, "bad seed");
            }
            continue;
        }
        if (keyword != "fault") {
            fail(line_number, line, "unknown keyword");
        }
        std::string kind_token;
        FaultEvent event;
        if (!(fields >> kind_token >> event.at >> event.a >> event.b >>
              event.value >> event.delay >> event.duration)) {
            fail(line_number, line, "bad fault fields");
        }
        if (!parse_kind(kind_token, event.kind)) {
            fail(line_number, line, "unknown fault kind");
        }
        current->events.push_back(event);
    }
    if (!saw_header) {
        throw std::runtime_error("chaos schedule: missing \"" +
                                 std::string(kPlanHeader) + "\" header");
    }
}

}  // namespace

FaultPlan
parse_plan(const std::string& text)
{
    FaultPlan plan;
    parse_lines(text, &plan, nullptr);
    return plan;
}

ScheduleFile
parse_schedule(const std::string& text)
{
    ScheduleFile schedule;
    parse_lines(text, nullptr, &schedule);
    return schedule;
}

bool
save_schedule_file(const std::string& path, const ScheduleFile& schedule)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        return false;
    }
    out << serialize_schedule(schedule);
    return static_cast<bool>(out);
}

ScheduleFile
load_schedule_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("chaos schedule: cannot open " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return parse_schedule(text.str());
}

}  // namespace nbos::chaos
