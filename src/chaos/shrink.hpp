/**
 * @file
 * Greedy delta-debugging minimization of failing fault schedules.
 *
 * Given a plan whose injection makes some invariant fail, `shrink()` runs
 * the classic ddmin loop: split the event list into chunks, try each chunk
 * and each complement against the user's failure predicate, keep the
 * smallest variant that still fails, and refine the granularity until no
 * single event can be removed. The result is 1-minimal: deleting any one
 * remaining event makes the failure disappear.
 */
#ifndef NBOS_CHAOS_SHRINK_HPP
#define NBOS_CHAOS_SHRINK_HPP

#include <cstddef>
#include <functional>

#include "chaos/fault_plan.hpp"

namespace nbos::chaos {

/** Returns true when running @p plan still reproduces the failure. The
 *  predicate must be deterministic — rerun the full (seeded) experiment
 *  with the candidate plan installed and evaluate the invariant. */
using FailurePredicate = std::function<bool(const FaultPlan&)>;

/**
 * Minimize @p failing to a smallest event subset that still satisfies
 * @p fails, preserving event order and the plan seed. If @p failing does
 * not fail in the first place it is returned unchanged. @p evaluations,
 * when non-null, receives the number of predicate calls made.
 */
FaultPlan shrink(const FaultPlan& failing, const FailurePredicate& fails,
                 std::size_t* evaluations = nullptr);

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_SHRINK_HPP
