/**
 * @file
 * `NBOS_CHAOS_*` environment knobs, so benches and CI can steer the chaos
 * tier without recompiling:
 *
 *   NBOS_CHAOS_SEED=<u64>     override the generator seed
 *   NBOS_CHAOS_RATE=<double>  scale every fault-class rate
 *   NBOS_CHAOS_RECORD=<path>  RECORD: write the injected schedule here
 *   NBOS_CHAOS_REPLAY=<path>  REPLAY: re-execute this schedule file
 */
#ifndef NBOS_CHAOS_ENV_HPP
#define NBOS_CHAOS_ENV_HPP

#include <cstdint>
#include <string>

namespace nbos::chaos {

struct EnvKnobs
{
    std::uint64_t seed = 0;   ///< 0 = unset
    double rate_scale = 1.0;  ///< multiplier on every fault-class rate
    std::string record_path;  ///< empty = no RECORD file
    std::string replay_path;  ///< empty = no REPLAY file
};

/** Read the NBOS_CHAOS_* variables (missing/malformed values keep defaults). */
EnvKnobs read_env_knobs();

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_ENV_HPP
