#include "chaos/shrink.hpp"

#include <algorithm>
#include <vector>

namespace nbos::chaos {

namespace {

FaultPlan
with_events(const FaultPlan& base, std::vector<FaultEvent> events)
{
    FaultPlan plan;
    plan.seed = base.seed;
    plan.events = std::move(events);
    return plan;
}

}  // namespace

FaultPlan
shrink(const FaultPlan& failing, const FailurePredicate& fails,
       std::size_t* evaluations)
{
    std::size_t evals = 0;
    const auto still_fails = [&](const std::vector<FaultEvent>& events) {
        ++evals;
        return fails(with_events(failing, events));
    };

    std::vector<FaultEvent> events = failing.events;
    if (!still_fails(events)) {
        // Not a failing plan: nothing to minimize.
        if (evaluations != nullptr) {
            *evaluations = evals;
        }
        return failing;
    }

    std::size_t granularity = 2;
    while (events.size() >= 2) {
        const std::size_t n = events.size();
        const std::size_t chunks = std::min(granularity, n);
        bool reduced = false;

        // Chunk boundaries: chunk i covers [i*n/chunks, (i+1)*n/chunks).
        const auto chunk_range = [&](std::size_t i) {
            return std::pair{i * n / chunks, (i + 1) * n / chunks};
        };

        // Try each chunk alone (big jumps first)...
        for (std::size_t i = 0; i < chunks && !reduced; ++i) {
            const auto [lo, hi] = chunk_range(i);
            std::vector<FaultEvent> candidate(events.begin() + lo,
                                              events.begin() + hi);
            if (candidate.size() < events.size() && still_fails(candidate)) {
                events = std::move(candidate);
                granularity = 2;
                reduced = true;
            }
        }
        // ...then each complement (remove one chunk).
        for (std::size_t i = 0; i < chunks && !reduced; ++i) {
            const auto [lo, hi] = chunk_range(i);
            std::vector<FaultEvent> candidate;
            candidate.reserve(n - (hi - lo));
            candidate.insert(candidate.end(), events.begin(),
                             events.begin() + lo);
            candidate.insert(candidate.end(), events.begin() + hi,
                             events.end());
            if (candidate.size() < events.size() && still_fails(candidate)) {
                events = std::move(candidate);
                granularity = std::max<std::size_t>(2, chunks - 1);
                reduced = true;
            }
        }

        if (!reduced) {
            if (chunks >= n) {
                break;  // 1-minimal: no single event is removable.
            }
            granularity = std::min(n, granularity * 2);
        }
    }

    if (evaluations != nullptr) {
        *evaluations = evals;
    }
    return with_events(failing, std::move(events));
}

}  // namespace nbos::chaos
