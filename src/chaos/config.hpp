/**
 * @file
 * Platform-facing chaos configuration: RECORD / REPLAY plumbing and the
 * knobs a `SchedulerConfig` carries to turn fault injection on for a run.
 */
#ifndef NBOS_CHAOS_CONFIG_HPP
#define NBOS_CHAOS_CONFIG_HPP

#include <cstdint>
#include <memory>
#include <mutex>

#include "chaos/fault_plan.hpp"
#include "chaos/generator.hpp"

namespace nbos::chaos {

/**
 * RECORD-mode destination. Each scheduler shard deposits the plan it
 * actually injected (with resolved fire times); the merged `ScheduleFile`
 * can be serialized, saved, and replayed byte-identically. Thread-safe:
 * sharded runs record from one thread per shard.
 */
class RecordSink
{
  public:
    void put(std::int32_t shard, FaultPlan plan)
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        recorded_.shards[shard] = std::move(plan);
    }

    ScheduleFile merged() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return recorded_;
    }

    std::string serialize() const { return serialize_schedule(merged()); }

  private:
    mutable std::mutex mutex_;
    ScheduleFile recorded_;
};

/**
 * Chaos knobs on `SchedulerConfig`. Modes compose from two optional
 * attachments:
 *  - `replay` non-null: REPLAY — each shard installs its section of the
 *    schedule file instead of generating a plan.
 *  - `record` non-null: RECORD — each shard deposits the faults it injected.
 * With neither, the run just generates-and-injects from the seed.
 *
 * Chaos targets the discrete-event prototype engine; the fast analytic
 * engine has no network to break and rejects chaos configs.
 */
struct ChaosConfig
{
    bool enabled = false;

    /** Generator seed; 0 derives a per-shard seed from the engine seed. */
    std::uint64_t seed = 0;

    ChaosOptions options{};

    /** REPLAY source (shared, read-only across shards). */
    std::shared_ptr<const ScheduleFile> replay;

    /** RECORD destination (shared across shards). */
    std::shared_ptr<RecordSink> record;
};

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_CONFIG_HPP
