#include "chaos/generator.hpp"

#include <algorithm>
#include <cmath>

namespace nbos::chaos {

ChaosGenerator::ChaosGenerator(std::uint64_t seed) : seed_(seed), rng_(seed)
{
}

FaultPlan
ChaosGenerator::generate(const ChaosOptions& options)
{
    FaultPlan plan;
    plan.seed = seed_;
    if (options.horizon <= 0) {
        return plan;
    }
    const double hours = sim::to_hours(options.horizon);
    const sim::Time last = options.start + options.horizon - 1;

    // Deterministic count for `rate` events/hour over the window: the
    // integer part plus one Bernoulli draw for the fraction. (A full
    // Poisson draw would work too; this keeps counts tightly coupled to
    // the knob, which makes rate sweeps monotone and easy to reason about.)
    const auto draw_count = [&](double rate_per_hour) -> std::uint64_t {
        const double expected = std::max(0.0, rate_per_hour) * hours;
        const double whole = std::floor(expected);
        const double frac = expected - whole;
        std::uint64_t count = static_cast<std::uint64_t>(whole);
        if (frac > 0.0 && rng_.bernoulli(frac)) {
            ++count;
        }
        return count;
    };
    const auto draw_time = [&]() -> sim::Time {
        return rng_.uniform_int(options.start, last);
    };
    const auto draw_slot = [&](std::uint32_t slots) -> std::uint32_t {
        return slots == 0
                   ? 0
                   : static_cast<std::uint32_t>(rng_.uniform_int(0, slots - 1));
    };

    const std::uint64_t drop_bursts = draw_count(options.rates.drop_burst);
    for (std::uint64_t i = 0; i < drop_bursts; ++i) {
        FaultEvent event;
        event.kind = FaultKind::kDropBurst;
        event.at = draw_time();
        event.value = options.drop_probability;
        event.duration = options.drop_duration;
        plan.events.push_back(event);
    }

    const std::uint64_t partitions = draw_count(options.rates.partition);
    for (std::uint64_t i = 0; i < partitions; ++i) {
        FaultEvent cut;
        cut.kind = FaultKind::kPartition;
        cut.at = draw_time();
        cut.a = draw_slot(options.endpoint_slots);
        cut.b = draw_slot(options.endpoint_slots);
        if (cut.a == cut.b) {
            cut.b = (cut.b + 1) % std::max<std::uint32_t>(
                                      2, options.endpoint_slots);
        }
        cut.duration = options.partition_duration;
        FaultEvent heal = cut;
        heal.kind = FaultKind::kHeal;
        heal.at = cut.at + options.partition_duration;
        heal.duration = 0;
        plan.events.push_back(cut);
        plan.events.push_back(heal);
    }

    const std::uint64_t crashes = draw_count(options.rates.crash);
    for (std::uint64_t i = 0; i < crashes; ++i) {
        FaultEvent crash;
        crash.kind = FaultKind::kCrash;
        crash.at = draw_time();
        crash.a = draw_slot(options.replica_slots);
        crash.duration = options.crash_downtime;
        FaultEvent restart = crash;
        restart.kind = FaultKind::kRestart;
        restart.at = crash.at + options.crash_downtime;
        restart.duration = 0;
        plan.events.push_back(crash);
        plan.events.push_back(restart);
    }

    const std::uint64_t skews = draw_count(options.rates.clock_skew);
    for (std::uint64_t i = 0; i < skews; ++i) {
        FaultEvent event;
        event.kind = FaultKind::kClockSkew;
        event.at = draw_time();
        event.a = draw_slot(options.endpoint_slots);
        event.delay = options.skew;
        event.duration = options.skew_duration;
        plan.events.push_back(event);
    }

    const std::uint64_t spikes = draw_count(options.rates.latency_spike);
    for (std::uint64_t i = 0; i < spikes; ++i) {
        FaultEvent event;
        event.kind = FaultKind::kLatencySpike;
        event.at = draw_time();
        event.delay = options.spike;
        event.duration = options.spike_duration;
        plan.events.push_back(event);
    }

    // Stable sort by fire time: the draw order above is deterministic, so
    // ties keep a deterministic order too.
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                         return x.at < y.at;
                     });
    return plan;
}

}  // namespace nbos::chaos
