/**
 * @file
 * Installs a `FaultPlan` into a live simulation.
 *
 * The controller drives only existing public failure APIs — the network's
 * chaos drop probability, partitions, latency knobs — plus caller-supplied
 * hooks for replica crash/restart, so no core subsystem needs chaos-specific
 * edits. Every fault it applies is appended to an in-memory record with its
 * virtual fire time: serializing that record IS the RECORD mode, and
 * installing a parsed schedule IS the REPLAY mode.
 */
#ifndef NBOS_CHAOS_CONTROLLER_HPP
#define NBOS_CHAOS_CONTROLLER_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

namespace nbos::chaos {

/** Counters of injected (and skipped) faults, per fault class. */
struct ChaosStats
{
    std::uint64_t drop_bursts = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t clock_skews = 0;
    std::uint64_t latency_spikes = 0;
    /** Events whose target could not be resolved at fire time. */
    std::uint64_t skipped = 0;

    std::uint64_t injected() const
    {
        return drop_bursts + partitions + heals + crashes + restarts +
               clock_skews + latency_spikes;
    }
};

class ChaosController
{
  public:
    /**
     * Target-resolution hooks. Fault events name abstract slots; these map
     * a slot onto the live cluster at fire time. All optional: without
     * `resolve_endpoint` no partition/skew can resolve, without the replica
     * hooks no crash/restart applies — such events count as skipped.
     * Resolution MUST be deterministic (same run state, same answer) for
     * record/replay to be byte-identical.
     */
    struct Hooks
    {
        /** Map an endpoint slot to a live node id (net::kNoNode = skip). */
        std::function<net::NodeId(std::uint32_t)> resolve_endpoint;
        /** Crash replica slot; return false if nothing could be crashed. */
        std::function<bool(std::uint32_t)> crash_replica;
        /** Restart replica slot; return false if nothing was down. */
        std::function<bool(std::uint32_t)> restart_replica;
    };

    ChaosController(sim::Simulation& simulation, net::Network& network);

    void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

    /** Schedule every event of @p plan into the simulation. */
    void install(const FaultPlan& plan);

    /** The faults actually injected so far, with their fire times. */
    const FaultPlan& record() const { return record_; }

    /** RECORD-mode serialization of the injected-fault record. */
    std::string schedule_text() const { return serialize_plan(record_); }

    const ChaosStats& stats() const { return stats_; }

  private:
    void fire(const FaultEvent& event);
    void end_drop_burst();
    void end_latency_spike(sim::Time delay);
    void end_clock_skew(net::NodeId node, sim::Time delay);

    sim::Simulation& simulation_;
    net::Network& network_;
    Hooks hooks_{};
    FaultPlan record_;
    ChaosStats stats_{};

    // Windowed-fault bookkeeping so overlapping faults compose and every
    // heal/restore undoes exactly what its start event did.
    std::uint32_t active_drop_bursts_ = 0;
    sim::Time active_spike_total_ = 0;
    std::map<net::NodeId, sim::Time> active_skew_;
    /** Slot-pair -> resolved node pairs cut by kPartition, so the matching
     *  kHeal heals the same concrete link even if the live endpoint set
     *  changed in between. */
    std::map<std::pair<std::uint32_t, std::uint32_t>,
             std::vector<std::pair<net::NodeId, net::NodeId>>>
        active_partitions_;
};

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_CONTROLLER_HPP
