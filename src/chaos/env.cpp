#include "chaos/env.hpp"

#include <cstdlib>
#include <string>

namespace nbos::chaos {

EnvKnobs
read_env_knobs()
{
    EnvKnobs knobs;
    if (const char* seed = std::getenv("NBOS_CHAOS_SEED")) {
        try {
            knobs.seed = std::stoull(seed);
        } catch (...) {
        }
    }
    if (const char* rate = std::getenv("NBOS_CHAOS_RATE")) {
        try {
            const double scale = std::stod(rate);
            if (scale >= 0.0) {
                knobs.rate_scale = scale;
            }
        } catch (...) {
        }
    }
    if (const char* record = std::getenv("NBOS_CHAOS_RECORD")) {
        knobs.record_path = record;
    }
    if (const char* replay = std::getenv("NBOS_CHAOS_REPLAY")) {
        knobs.replay_path = replay;
    }
    return knobs;
}

}  // namespace nbos::chaos
