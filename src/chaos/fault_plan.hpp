/**
 * @file
 * Typed fault plans for the deterministic chaos tier.
 *
 * A `FaultPlan` is an ordered list of fault events — message drop bursts,
 * link partitions and heals, replica crash/restart, clock skew, latency
 * spikes — each stamped with the virtual time at which it fires. Plans are
 * generated from a seed (generator.hpp), installed into a run
 * (controller.hpp), serialized to a text schedule (RECORD), re-executed
 * byte-identically from that schedule (REPLAY), and minimized by delta
 * debugging (shrink.hpp), following the NodeFz record/replay-scheduler mold.
 */
#ifndef NBOS_CHAOS_FAULT_PLAN_HPP
#define NBOS_CHAOS_FAULT_PLAN_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nbos::chaos {

/** The fault classes the chaos tier can inject. */
enum class FaultKind : std::uint8_t
{
    /** Network-wide chaos drop probability `value` for `duration`. */
    kDropBurst = 0,
    /** Cut the link between endpoint slots `a` and `b`. */
    kPartition = 1,
    /** Heal the link between endpoint slots `a` and `b`. */
    kHeal = 2,
    /** Crash replica slot `a` (volatile state lost, durable state kept). */
    kCrash = 3,
    /** Restart replica slot `a` if it is still down. */
    kRestart = 4,
    /** Delay messages sent by endpoint slot `a` by `delay` for `duration`. */
    kClockSkew = 5,
    /** Delay every delivery by `delay` for `duration`. */
    kLatencySpike = 6,
};

/** Stable lowercase token for a fault kind (used in the schedule format). */
const char* fault_kind_name(FaultKind kind);

/**
 * One fault event. Endpoint/replica targets are abstract slots: the
 * controller maps a slot onto a concrete live endpoint or replica at fire
 * time, so the same plan applies to any cluster size, and a deterministic
 * run resolves a slot to the same target on record and on replay.
 */
struct FaultEvent
{
    FaultKind kind = FaultKind::kDropBurst;
    sim::Time at = 0;          ///< virtual fire time
    std::uint32_t a = 0;       ///< first endpoint / replica slot
    std::uint32_t b = 0;       ///< second endpoint slot (partition/heal)
    double value = 0.0;        ///< drop probability (kDropBurst)
    sim::Time delay = 0;       ///< injected delay (kClockSkew/kLatencySpike)
    sim::Time duration = 0;    ///< how long a windowed fault stays active

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/** A seeded, ordered fault schedule for one simulation. */
struct FaultPlan
{
    std::uint64_t seed = 0;
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/**
 * Serialize a plan to the `nbos-chaos-schedule v1` text format:
 *
 *     # nbos-chaos-schedule v1
 *     seed <u64>
 *     fault <kind> <at_us> <a> <b> <value> <delay_us> <duration_us>
 *     ...
 *
 * The format round-trips exactly: parse_plan(serialize_plan(p)) == p.
 */
std::string serialize_plan(const FaultPlan& plan);

/** Parse a serialized plan. Throws std::runtime_error on malformed input. */
FaultPlan parse_plan(const std::string& text);

/**
 * A schedule file: one plan per scheduler shard, so a sharded run records
 * and replays every shard's fault stream. Monolithic runs use the single
 * shard's identity, index 0.
 */
struct ScheduleFile
{
    std::map<std::int32_t, FaultPlan> shards;

    friend bool operator==(const ScheduleFile&, const ScheduleFile&) = default;
};

/** Serialize a schedule file (shard sections in ascending shard order). */
std::string serialize_schedule(const ScheduleFile& schedule);

/** Parse a schedule file. Throws std::runtime_error on malformed input. */
ScheduleFile parse_schedule(const std::string& text);

/** Write a schedule to disk; returns false on I/O failure. */
bool save_schedule_file(const std::string& path, const ScheduleFile& schedule);

/** Read a schedule from disk. Throws std::runtime_error on I/O or parse error. */
ScheduleFile load_schedule_file(const std::string& path);

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_FAULT_PLAN_HPP
