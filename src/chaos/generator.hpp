/**
 * @file
 * Seeded fault-plan generation with per-fault-class rate knobs.
 *
 * `ChaosGenerator` owns its own deterministic RNG stream, so generating a
 * plan never perturbs the simulation or network randomness: the same
 * (seed, options) pair yields the same `FaultPlan` on every platform, and a
 * chaos run differs from a chaos-free run only by the injected faults.
 */
#ifndef NBOS_CHAOS_GENERATOR_HPP
#define NBOS_CHAOS_GENERATOR_HPP

#include <cstdint>

#include "chaos/fault_plan.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace nbos::chaos {

/** Expected fault events per simulated hour, one knob per fault class. */
struct ChaosRates
{
    double drop_burst = 0.0;
    double partition = 0.0;
    double crash = 0.0;
    double clock_skew = 0.0;
    double latency_spike = 0.0;

    /** Uniform rate across every class (convenience for sweeps). */
    static ChaosRates uniform(double per_hour)
    {
        return ChaosRates{per_hour, per_hour, per_hour, per_hour, per_hour};
    }

    /** Multiply every class rate by @p factor. */
    ChaosRates scaled(double factor) const
    {
        return ChaosRates{drop_burst * factor, partition * factor,
                          crash * factor, clock_skew * factor,
                          latency_spike * factor};
    }
};

/** Shape of the generated plan: window, target-slot counts, magnitudes. */
struct ChaosOptions
{
    /** Faults fire uniformly inside [start, start + horizon). */
    sim::Time start = 30 * sim::kSecond;
    sim::Time horizon = 4 * sim::kHour;

    /** Abstract endpoint slots for partitions / clock skew; the controller
     *  maps a slot onto a live endpoint at fire time. */
    std::uint32_t endpoint_slots = 8;
    /** Abstract replica slots for crash/restart. */
    std::uint32_t replica_slots = 8;

    ChaosRates rates{};

    double drop_probability = 0.25;               ///< kDropBurst intensity
    sim::Time drop_duration = 5 * sim::kSecond;   ///< kDropBurst window
    sim::Time partition_duration = 10 * sim::kSecond;  ///< cut-to-heal gap
    sim::Time crash_downtime = 5 * sim::kSecond;  ///< crash-to-restart gap
    sim::Time skew = 200 * sim::kMillisecond;     ///< kClockSkew delay
    sim::Time skew_duration = 30 * sim::kSecond;
    sim::Time spike = 50 * sim::kMillisecond;     ///< kLatencySpike delay
    sim::Time spike_duration = 5 * sim::kSecond;
};

/**
 * Draws a `FaultPlan` from a seed. Windowed faults are emitted as event
 * pairs — every kPartition gets a matching kHeal, every kCrash a matching
 * kRestart — so a generated plan always heals what it breaks and the
 * "converges after every heal" invariants are meaningful.
 */
class ChaosGenerator
{
  public:
    explicit ChaosGenerator(std::uint64_t seed);

    /** Generate a plan; consecutive calls draw further down the stream. */
    FaultPlan generate(const ChaosOptions& options);

  private:
    std::uint64_t seed_;
    sim::Rng rng_;
};

}  // namespace nbos::chaos

#endif  // NBOS_CHAOS_GENERATOR_HPP
