/**
 * @file
 * Move-only callable used for scheduled simulation events.
 *
 * The event hot path (one entry per network message, timer, and scheduler
 * tick) previously stored closures in std::function, which requires
 * copy-constructible captures and heap-allocates anything beyond a couple of
 * pointers. EventFn lifts both limits: captures may be move-only (message
 * envelopes own their payloads exclusively), and closures up to kInlineSize
 * bytes live inline, so steady-state event scheduling performs no heap
 * allocation.
 */
#ifndef NBOS_SIM_EVENT_FN_HPP
#define NBOS_SIM_EVENT_FN_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nbos::sim {

/** Move-only type-erased `void()` callable with inline small-buffer storage. */
class EventFn
{
  public:
    /** Inline capture budget; larger closures fall back to one heap node. */
    static constexpr std::size_t kInlineSize = 64;

    EventFn() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                          std::is_invocable_r_v<void, D&>>>
    EventFn(F&& fn)  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site.
    {
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
            ops_ = &inline_ops<D>();
        } else {
            *reinterpret_cast<void**>(storage_) = new D(std::forward<F>(fn));
            ops_ = &heap_ops<D>();
        }
    }

    EventFn(EventFn&& other) noexcept { move_from(other); }

    EventFn& operator=(EventFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            move_from(other);
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Invoke the held callable (undefined if empty). */
    void operator()() { ops_->invoke(target()); }

    /** Destroy the held callable, if any. */
    void reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void* callable);
        /** Move the callable between storage blocks, destroying the source. */
        void (*relocate)(void* dst_storage, void* src_storage) noexcept;
        void (*destroy)(void* storage) noexcept;
        bool inline_storage;
    };

    template <typename F>
    static constexpr bool fits_inline()
    {
        // Relocation must be noexcept so EventFn moves (and therefore event
        // slot reuse) never throw mid-flight.
        return sizeof(F) <= kInlineSize &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    template <typename F>
    static const Ops& inline_ops()
    {
        static constexpr Ops ops{
            [](void* callable) { (*static_cast<F*>(callable))(); },
            [](void* dst, void* src) noexcept {
                F* from = static_cast<F*>(src);
                ::new (dst) F(std::move(*from));
                from->~F();
            },
            [](void* storage) noexcept { static_cast<F*>(storage)->~F(); },
            true};
        return ops;
    }

    template <typename F>
    static const Ops& heap_ops()
    {
        static constexpr Ops ops{
            [](void* callable) { (*static_cast<F*>(callable))(); },
            [](void* dst, void* src) noexcept {
                *static_cast<void**>(dst) = *static_cast<void**>(src);
            },
            [](void* storage) noexcept {
                delete *reinterpret_cast<F**>(storage);
            },
            false};
        return ops;
    }

    void* target() noexcept
    {
        return ops_->inline_storage ? static_cast<void*>(storage_)
                                    : *reinterpret_cast<void**>(storage_);
    }

    void move_from(EventFn& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    const Ops* ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
};

}  // namespace nbos::sim

#endif  // NBOS_SIM_EVENT_FN_HPP
