/**
 * @file
 * The discrete-event simulation engine at the bottom of the NotebookOS stack.
 *
 * Every subsystem (network, Raft, schedulers, kernels) advances exclusively
 * through events scheduled here, which makes whole-cluster runs deterministic
 * for a given seed and cheap enough to replay 90-day traces in seconds.
 */
#ifndef NBOS_SIM_SIMULATION_HPP
#define NBOS_SIM_SIMULATION_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace nbos::sim {

/** Handle identifying a scheduled event (usable with Simulation::cancel). */
using EventId = std::uint64_t;

class SimMemoryPool;

/**
 * Deterministic discrete-event scheduler.
 *
 * Events at equal timestamps fire in scheduling order (FIFO), which removes
 * all non-determinism from simultaneous events.
 *
 * Layout: callbacks live in a recycled slot arena; the ready heap holds
 * 24-byte POD tickets (time, sequence, slot), so heap sift operations are
 * plain memmoves instead of type-erased callable moves, and cancellation is
 * an O(1) slot invalidation with no side allocation. This is the engine's
 * hottest code: one ticket per simulated network message.
 *
 * Far-future timers (election timeouts, autoscaler ticks, session arrivals)
 * are staged in a hierarchical timer wheel instead of the heap: insert and
 * cancel are O(1), and a timer cancelled before its wheel slot is flushed —
 * the common fate of every election timer under steady heartbeats — never
 * touches the heap at all. The wheel only defers heap insertion: a ticket is
 * cascaded into the heap before the clock can reach its slot, and the heap's
 * (time, seq) total order then fires events in exactly the sequence the
 * heap-only engine did, so the wheel is invisible to the determinism goldens.
 */
class Simulation
{
  public:
    /** Construction knobs (see SimMemoryPool for `recycle`). */
    struct Options
    {
        /** Stage far-future timers in the hierarchical wheel. Off forces
         *  every ticket through the binary heap (the pre-wheel engine) —
         *  kept for the wheel-vs-heap equivalence tests. */
        bool timer_wheel = true;
        /** Recycle backing buffers through this pool (nullptr: none). */
        SimMemoryPool* recycle = nullptr;
    };

    Simulation() : Simulation(Options{}) {}
    explicit Simulation(const Options& options);
    ~Simulation();

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p t (clamped to now()).
     * @return a handle usable with cancel().
     */
    EventId schedule_at(Time t, EventFn fn);

    /** Schedule @p fn @p delay after now() (negative delays clamp to 0). */
    EventId schedule_after(Time delay, EventFn fn);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Run the next event.
     * @return false if the queue was empty.
     */
    bool step() { return run_one(std::numeric_limits<Time>::max()); }

    /** Run events until the queue drains. */
    void run();

    /**
     * Run all events with timestamp <= @p t, then set now() to @p t.
     * Events scheduled past @p t remain pending.
     */
    void run_until(Time t);

    /** Total number of events executed so far. */
    std::uint64_t events_executed() const { return executed_; }

    /** Number of events currently pending (cancelled events excluded). */
    std::size_t pending() const { return live_; }

    /** True when far-future timers are staged in the wheel. */
    bool timer_wheel_enabled() const { return wheel_enabled_; }

    /** Tickets currently staged in the wheel (cancelled ones included
     *  until their slot is flushed) — introspection for tests/benches. */
    std::size_t wheel_pending() const { return wheel_count_; }

    /** Opaque recycled backing buffers (defined in simulation.cpp). */
    struct Memory;

  private:
    /** Low bits of an EventId address the slot; high bits carry the
     *  monotonically increasing schedule sequence used for FIFO
     *  tie-breaking, so ids stay unique and ordered across slot reuse. */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;

    /** Wheel geometry: level-0 granularity is 2^16 us (~65.5 ms); each of
     *  the four levels has 64 buckets, spanning ~4.2 s / 4.5 min / 4.8 h /
     *  12.7 days. Anything further out goes straight to the heap. */
    static constexpr unsigned kWheelShift = 16;
    static constexpr unsigned kWheelLevelBits = 6;
    static constexpr std::int64_t kWheelSlots = 1 << kWheelLevelBits;
    static constexpr std::int64_t kWheelMask = kWheelSlots - 1;
    static constexpr unsigned kWheelLevels = 4;

    struct Ticket
    {
        Time time;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct TicketOrder
    {
        bool operator()(const Ticket& a, const Ticket& b) const
        {
            // std::push/pop_heap keep the max at front; invert for
            // earliest-first, and break timestamp ties by schedule order
            // for determinism.
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    struct Slot
    {
        EventFn fn;
        /** Full id of the occupying event; 0 when the slot is free. */
        EventId id = 0;
        std::uint32_t next_free = kNoSlot;
    };

    static EventId make_id(std::uint64_t seq, std::uint32_t slot)
    {
        return (seq << kSlotBits) | slot;
    }

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);

    bool is_live(const Ticket& ticket) const
    {
        return slots_[ticket.slot].id == make_id(ticket.seq, ticket.slot);
    }

    void heap_push(const Ticket& ticket);
    void heap_pop();

    /** Stage @p ticket in the wheel if its level-0 slot is at least
     *  @p min_delta slots past the cursor and within the top level's
     *  span. @return false if it belongs in the heap instead. */
    bool wheel_place(const Ticket& ticket, std::int64_t min_delta);

    /** Pull higher-level buckets down when the cursor sits on their
     *  window boundary (highest level first, so a level-3 ticket can
     *  land in the level-1 bucket refilled right after it). */
    void refill_levels();

    /** Advance the wheel by one step: refill boundaries, then either
     *  flush the cursor's level-0 bucket into the heap or hop the cursor
     *  to the next boundary that could produce level-0 work. */
    void cascade_step();

    /** Run the next live event if its time is <= @p limit. */
    bool run_one(Time limit);

    Time now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoSlot;
    std::vector<Ticket> heap_;

    bool wheel_enabled_ = true;
    /** kWheelLevels x kWheelSlots buckets, flattened level-major. */
    std::vector<std::vector<Ticket>> wheel_;
    /** Next unflushed absolute level-0 slot; every wheel ticket's
     *  level-0 slot is >= this cursor. */
    std::int64_t wheel_next_ = 0;
    /** Tickets physically staged in the wheel (tombstones included). */
    std::size_t wheel_count_ = 0;
    std::size_t level_count_[kWheelLevels] = {0, 0, 0, 0};
    /** Scratch for refill_levels (kept to recycle its capacity). */
    std::vector<Ticket> refill_scratch_;

    SimMemoryPool* pool_ = nullptr;
};

/**
 * Recycles Simulation backing buffers (slot arena, ready heap, wheel
 * buckets) across engine runs. A sweep constructs one Simulation per
 * shard per spec; without recycling every run re-faults the same cold
 * pages the previous run just released. Buffers come back cleared but
 * with capacity intact, so reuse is invisible to determinism (slot and
 * sequence numbering always start fresh).
 *
 * Thread-safe; shards on different threads may acquire concurrently.
 */
class SimMemoryPool
{
  public:
    SimMemoryPool();
    ~SimMemoryPool();

    SimMemoryPool(const SimMemoryPool&) = delete;
    SimMemoryPool& operator=(const SimMemoryPool&) = delete;

    /** The process-wide pool shared by the sharded engines. */
    static SimMemoryPool& global();

    /** Buffer sets currently retained (telemetry/tests). */
    std::size_t size() const;

  private:
    friend class Simulation;

    std::unique_ptr<Simulation::Memory> acquire();
    void release(std::unique_ptr<Simulation::Memory> memory);

    /** Retention cap: a pool entry is a few hundred KB after a big run;
     *  64 entries bound worst-case retention well under one run's RSS. */
    static constexpr std::size_t kMaxEntries = 64;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Simulation::Memory>> entries_;
};

}  // namespace nbos::sim

#endif  // NBOS_SIM_SIMULATION_HPP
