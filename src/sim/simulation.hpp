/**
 * @file
 * The discrete-event simulation engine at the bottom of the NotebookOS stack.
 *
 * Every subsystem (network, Raft, schedulers, kernels) advances exclusively
 * through events scheduled here, which makes whole-cluster runs deterministic
 * for a given seed and cheap enough to replay 90-day traces in seconds.
 */
#ifndef NBOS_SIM_SIMULATION_HPP
#define NBOS_SIM_SIMULATION_HPP

#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/time.hpp"

namespace nbos::sim {

/** Handle identifying a scheduled event (usable with Simulation::cancel). */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event scheduler.
 *
 * Events at equal timestamps fire in scheduling order (FIFO), which removes
 * all non-determinism from simultaneous events.
 *
 * Layout: callbacks live in a recycled slot arena; the priority queue holds
 * 24-byte POD tickets (time, sequence, slot), so heap sift operations are
 * plain memmoves instead of type-erased callable moves, and cancellation is
 * an O(1) slot invalidation with no side allocation. This is the engine's
 * hottest code: one ticket per simulated network message.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p t (clamped to now()).
     * @return a handle usable with cancel().
     */
    EventId schedule_at(Time t, EventFn fn);

    /** Schedule @p fn @p delay after now() (negative delays clamp to 0). */
    EventId schedule_after(Time delay, EventFn fn);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const { return live_ == 0; }

    /**
     * Run the next event.
     * @return false if the queue was empty.
     */
    bool step() { return run_one(std::numeric_limits<Time>::max()); }

    /** Run events until the queue drains. */
    void run();

    /**
     * Run all events with timestamp <= @p t, then set now() to @p t.
     * Events scheduled past @p t remain pending.
     */
    void run_until(Time t);

    /** Total number of events executed so far. */
    std::uint64_t events_executed() const { return executed_; }

    /** Number of events currently pending (cancelled events excluded). */
    std::size_t pending() const { return live_; }

  private:
    /** Low bits of an EventId address the slot; high bits carry the
     *  monotonically increasing schedule sequence used for FIFO
     *  tie-breaking, so ids stay unique and ordered across slot reuse. */
    static constexpr unsigned kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;
    static constexpr std::uint32_t kNoSlot = 0xffffffffU;

    struct Ticket
    {
        Time time;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct TicketOrder
    {
        bool operator()(const Ticket& a, const Ticket& b) const
        {
            // priority_queue is a max-heap; invert for earliest-first, and
            // break timestamp ties by schedule order for determinism.
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.seq > b.seq;
        }
    };

    struct Slot
    {
        EventFn fn;
        /** Full id of the occupying event; 0 when the slot is free. */
        EventId id = 0;
        std::uint32_t next_free = kNoSlot;
    };

    static EventId make_id(std::uint64_t seq, std::uint32_t slot)
    {
        return (seq << kSlotBits) | slot;
    }

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);

    /** Run the next live event if its time is <= @p limit. */
    bool run_one(Time limit);

    Time now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::size_t live_ = 0;
    std::vector<Slot> slots_;
    std::uint32_t free_head_ = kNoSlot;
    std::priority_queue<Ticket, std::vector<Ticket>, TicketOrder> queue_;
};

}  // namespace nbos::sim

#endif  // NBOS_SIM_SIMULATION_HPP
