/**
 * @file
 * The discrete-event simulation engine at the bottom of the NotebookOS stack.
 *
 * Every subsystem (network, Raft, schedulers, kernels) advances exclusively
 * through events scheduled here, which makes whole-cluster runs deterministic
 * for a given seed and cheap enough to replay 90-day traces in seconds.
 */
#ifndef NBOS_SIM_SIMULATION_HPP
#define NBOS_SIM_SIMULATION_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace nbos::sim {

/** Handle identifying a scheduled event (usable with Simulation::cancel). */
using EventId = std::uint64_t;

/**
 * Deterministic discrete-event scheduler.
 *
 * Events at equal timestamps fire in scheduling order (FIFO), which removes
 * all non-determinism from simultaneous events.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn at absolute time @p t (clamped to now()).
     * @return a handle usable with cancel().
     */
    EventId schedule_at(Time t, std::function<void()> fn);

    /** Schedule @p fn @p delay after now() (negative delays clamp to 0). */
    EventId schedule_after(Time delay, std::function<void()> fn);

    /**
     * Cancel a pending event.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /** True if no runnable events remain. */
    bool empty() const;

    /**
     * Run the next event.
     * @return false if the queue was empty.
     */
    bool step();

    /** Run events until the queue drains. */
    void run();

    /**
     * Run all events with timestamp <= @p t, then set now() to @p t.
     * Events scheduled past @p t remain pending.
     */
    void run_until(Time t);

    /** Total number of events executed so far. */
    std::uint64_t events_executed() const { return executed_; }

    /** Number of events currently pending (including cancelled tombstones). */
    std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  private:
    struct Event
    {
        Time time;
        EventId id;
        std::function<void()> fn;
    };

    struct EventOrder
    {
        bool operator()(const Event& a, const Event& b) const
        {
            // priority_queue is a max-heap; invert for earliest-first, and
            // break timestamp ties by insertion order for determinism.
            if (a.time != b.time) {
                return a.time > b.time;
            }
            return a.id > b.id;
        }
    };

    /** Pop cancelled tombstones off the top of the queue. */
    void skim_cancelled();

    Time now_ = 0;
    EventId next_id_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
    std::unordered_set<EventId> cancelled_;
};

}  // namespace nbos::sim

#endif  // NBOS_SIM_SIMULATION_HPP
