/**
 * @file
 * Simulated-time primitives shared by every NotebookOS subsystem.
 *
 * Simulation time is an integer count of microseconds so that event ordering
 * is exact and runs are bit-for-bit reproducible across platforms.
 */
#ifndef NBOS_SIM_TIME_HPP
#define NBOS_SIM_TIME_HPP

#include <cstdint>
#include <string>

namespace nbos::sim {

/** Simulated time in microseconds since the start of the run. */
using Time = std::int64_t;

/** One microsecond (the base unit). */
inline constexpr Time kMicrosecond = 1;
/** One millisecond in simulated time. */
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
/** One second in simulated time. */
inline constexpr Time kSecond = 1000 * kMillisecond;
/** One minute in simulated time. */
inline constexpr Time kMinute = 60 * kSecond;
/** One hour in simulated time. */
inline constexpr Time kHour = 60 * kMinute;
/** One day in simulated time. */
inline constexpr Time kDay = 24 * kHour;

/** Convert a floating-point second count to simulated time (rounds down). */
constexpr Time from_seconds(double seconds)
{
    return static_cast<Time>(seconds * static_cast<double>(kSecond));
}

/** Convert simulated time to floating-point seconds. */
constexpr double to_seconds(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert simulated time to floating-point milliseconds. */
constexpr double to_millis(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert simulated time to floating-point hours. */
constexpr double to_hours(Time t)
{
    return static_cast<double>(t) / static_cast<double>(kHour);
}

/** Render a time as "HH:MM:SS.mmm" for logs and experiment output. */
std::string format_time(Time t);

}  // namespace nbos::sim

#endif  // NBOS_SIM_TIME_HPP
