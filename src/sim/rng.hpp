/**
 * @file
 * Deterministic random-number generation for the simulation.
 *
 * A hand-rolled xoshiro256** keeps runs reproducible across standard-library
 * implementations (std::mt19937 distributions are not portable between
 * libstdc++ / libc++, which would make experiment output machine-dependent).
 */
#ifndef NBOS_SIM_RNG_HPP
#define NBOS_SIM_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace nbos::sim {

/**
 * Deterministic pseudo-random generator (xoshiro256**) with the sampling
 * helpers the workload generator and latency models need.
 */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield identical streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Exponential variate with the given mean (mean > 0). */
    double exponential(double mean);

    /** Standard normal variate (Box-Muller, cached spare). */
    double normal();

    /** Normal variate with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Log-normal variate: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Pareto variate with scale xm and shape alpha. */
    double pareto(double xm, double alpha);

    /**
     * Sample an index according to the given non-negative weights.
     * @return index in [0, weights.size()); 0 if all weights are zero.
     */
    std::size_t weighted_index(const std::vector<double>& weights);

    /** Derive an independent child generator (for per-component streams). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_{};
    double spare_normal_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace nbos::sim

#endif  // NBOS_SIM_RNG_HPP
