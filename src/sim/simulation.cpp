#include "sim/simulation.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace nbos::sim {

std::string
format_time(Time t)
{
    const bool negative = t < 0;
    if (negative) {
        t = -t;
    }
    const std::int64_t total_ms = t / kMillisecond;
    const std::int64_t ms = total_ms % 1000;
    const std::int64_t total_s = total_ms / 1000;
    const std::int64_t s = total_s % 60;
    const std::int64_t m = (total_s / 60) % 60;
    const std::int64_t h = total_s / 3600;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld.%03lld",
                  negative ? "-" : "", static_cast<long long>(h),
                  static_cast<long long>(m), static_cast<long long>(s),
                  static_cast<long long>(ms));
    return buf;
}

struct Simulation::Memory
{
    std::vector<Slot> slots;
    std::vector<Ticket> heap;
    std::vector<std::vector<Ticket>> wheel;
};

Simulation::Simulation(const Options& options)
    : wheel_enabled_(options.timer_wheel), pool_(options.recycle)
{
    if (pool_ != nullptr) {
        if (auto memory = pool_->acquire()) {
            slots_ = std::move(memory->slots);
            heap_ = std::move(memory->heap);
            wheel_ = std::move(memory->wheel);
        }
    }
    if (wheel_enabled_) {
        wheel_.resize(static_cast<std::size_t>(kWheelLevels * kWheelSlots));
    }
}

Simulation::~Simulation()
{
    if (pool_ == nullptr) {
        return;
    }
    // Hand the backing buffers back cleared (running any pending callback
    // destructors now) but with capacity intact.
    slots_.clear();
    heap_.clear();
    for (auto& bucket : wheel_) {
        bucket.clear();
    }
    auto memory = std::make_unique<Memory>();
    memory->slots = std::move(slots_);
    memory->heap = std::move(heap_);
    memory->wheel = std::move(wheel_);
    pool_->release(std::move(memory));
}

std::uint32_t
Simulation::acquire_slot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slots_[slot].next_free;
        return slot;
    }
    // The arena only grows to the peak number of simultaneously pending
    // events; kSlotBits bounds that peak at ~16M. Enforced unconditionally:
    // overflowing would alias slot indices inside EventIds and silently
    // corrupt cancellation.
    if (slots_.size() >= kSlotMask) {
        throw std::length_error("Simulation: too many pending events");
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
Simulation::release_slot(std::uint32_t slot)
{
    Slot& s = slots_[slot];
    s.fn.reset();
    s.id = 0;
    s.next_free = free_head_;
    free_head_ = slot;
}

void
Simulation::heap_push(const Ticket& ticket)
{
    heap_.push_back(ticket);
    std::push_heap(heap_.begin(), heap_.end(), TicketOrder{});
}

void
Simulation::heap_pop()
{
    std::pop_heap(heap_.begin(), heap_.end(), TicketOrder{});
    heap_.pop_back();
}

bool
Simulation::wheel_place(const Ticket& ticket, std::int64_t min_delta)
{
    const std::int64_t slot0 = ticket.time >> kWheelShift;
    if (slot0 - wheel_next_ < min_delta) {
        return false;
    }
    for (unsigned level = 0; level < kWheelLevels; ++level) {
        const unsigned shift = kWheelLevelBits * level;
        const std::int64_t index = slot0 >> shift;
        if (index - (wheel_next_ >> shift) < kWheelSlots) {
            wheel_[static_cast<std::size_t>(
                       static_cast<std::int64_t>(level) * kWheelSlots +
                       (index & kWheelMask))]
                .push_back(ticket);
            ++wheel_count_;
            ++level_count_[level];
            return true;
        }
    }
    return false;  // Beyond the top level's span: the heap absorbs it.
}

void
Simulation::refill_levels()
{
    for (unsigned level = kWheelLevels - 1; level >= 1; --level) {
        const unsigned shift = kWheelLevelBits * level;
        const std::int64_t window_mask = (std::int64_t{1} << shift) - 1;
        if ((wheel_next_ & window_mask) != 0 || level_count_[level] == 0) {
            continue;
        }
        auto& bucket = wheel_[static_cast<std::size_t>(
            static_cast<std::int64_t>(level) * kWheelSlots +
            ((wheel_next_ >> shift) & kWheelMask))];
        if (bucket.empty()) {
            continue;
        }
        wheel_count_ -= bucket.size();
        level_count_[level] -= bucket.size();
        refill_scratch_.clear();
        refill_scratch_.swap(bucket);
        for (const Ticket& ticket : refill_scratch_) {
            if (!is_live(ticket)) {
                continue;  // Cancelled while staged: drop here, not in the heap.
            }
            // Re-placement from level l always lands below l (the window
            // just entered spans fewer than 64^l level-0 slots).
            wheel_place(ticket, 0);
        }
        refill_scratch_.clear();
    }
}

void
Simulation::cascade_step()
{
    refill_levels();
    if (level_count_[0] == 0) {
        // No level-0 work pending: hop the cursor to the next window
        // boundary where a higher-level bucket could refill level 0.
        std::int64_t boundary =
            ((wheel_next_ >> kWheelLevelBits) + 1) << kWheelLevelBits;
        if (level_count_[1] == 0) {
            boundary = ((wheel_next_ >> (2 * kWheelLevelBits)) + 1)
                       << (2 * kWheelLevelBits);
            if (level_count_[2] == 0) {
                boundary = ((wheel_next_ >> (3 * kWheelLevelBits)) + 1)
                           << (3 * kWheelLevelBits);
            }
        }
        wheel_next_ = boundary;
        return;
    }
    auto& bucket =
        wheel_[static_cast<std::size_t>(wheel_next_ & kWheelMask)];
    if (!bucket.empty()) {
        wheel_count_ -= bucket.size();
        level_count_[0] -= bucket.size();
        for (const Ticket& ticket : bucket) {
            if (is_live(ticket)) {
                heap_push(ticket);
            }
        }
        bucket.clear();
    }
    ++wheel_next_;
}

EventId
Simulation::schedule_at(Time t, EventFn fn)
{
    if (t < now_) {
        t = now_;
    }
    // Mirror of the slot-arena bound: a sequence past 2^40 would wrap out
    // of its EventId bit-field and alias stale handles onto live events.
    if (next_seq_ >> (64 - kSlotBits) != 0) {
        throw std::length_error("Simulation: schedule sequence exhausted");
    }
    const std::uint32_t slot = acquire_slot();
    const std::uint64_t seq = next_seq_++;
    const EventId id = make_id(seq, slot);
    slots_[slot].fn = std::move(fn);
    slots_[slot].id = id;
    const Ticket ticket{t, seq, slot};
    // Near tickets (inside the cursor's level-0 slot) go straight to the
    // heap; everything else is staged in the wheel.
    if (!wheel_enabled_ || !wheel_place(ticket, 1)) {
        heap_push(ticket);
    }
    ++live_;
    return id;
}

EventId
Simulation::schedule_after(Time delay, EventFn fn)
{
    if (delay < 0) {
        delay = 0;
    }
    return schedule_at(now_ + delay, std::move(fn));
}

bool
Simulation::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (id == 0 || slot >= slots_.size() || slots_[slot].id != id) {
        return false;  // Never scheduled, already fired, or already cancelled.
    }
    // The staged ticket becomes a tombstone — discarded lazily when it
    // surfaces in the heap or when its wheel slot is flushed; the slot is
    // immediately reusable.
    release_slot(slot);
    --live_;
    return true;
}

bool
Simulation::run_one(Time limit)
{
    for (;;) {
        // Cascade until the heap front (if any) is provably the earliest
        // pending ticket: every wheel ticket's time is >= the cursor's
        // level-0 slot start.
        while (wheel_count_ > 0) {
            const Time wheel_floor = wheel_next_ << kWheelShift;
            if (!heap_.empty() && heap_.front().time < wheel_floor) {
                break;
            }
            if (wheel_floor > limit) {
                break;  // Everything still staged is past the limit.
            }
            cascade_step();
        }
        if (heap_.empty()) {
            return false;
        }
        const Ticket ticket = heap_.front();
        Slot& slot = slots_[ticket.slot];
        if (slot.id != make_id(ticket.seq, ticket.slot)) {
            heap_pop();  // Cancelled tombstone.
            continue;
        }
        if (ticket.time > limit) {
            return false;
        }
        heap_pop();
        now_ = ticket.time;
        // Move the callback out and free the slot before invoking, so the
        // callback may schedule or cancel events (which mutates the arena).
        EventFn fn = std::move(slot.fn);
        release_slot(ticket.slot);
        --live_;
        ++executed_;
        fn();
        return true;
    }
}

void
Simulation::run()
{
    while (step()) {
    }
}

void
Simulation::run_until(Time t)
{
    while (run_one(t)) {
    }
    if (now_ < t) {
        now_ = t;
    }
}

SimMemoryPool::SimMemoryPool() = default;
SimMemoryPool::~SimMemoryPool() = default;

SimMemoryPool&
SimMemoryPool::global()
{
    static SimMemoryPool pool;
    return pool;
}

std::size_t
SimMemoryPool::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::unique_ptr<Simulation::Memory>
SimMemoryPool::acquire()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.empty()) {
        return nullptr;
    }
    auto memory = std::move(entries_.back());
    entries_.pop_back();
    return memory;
}

void
SimMemoryPool::release(std::unique_ptr<Simulation::Memory> memory)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.size() < kMaxEntries) {
        entries_.push_back(std::move(memory));
    }
}

}  // namespace nbos::sim
