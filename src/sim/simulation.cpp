#include "sim/simulation.hpp"

#include <cstdio>
#include <utility>

namespace nbos::sim {

std::string
format_time(Time t)
{
    const bool negative = t < 0;
    if (negative) {
        t = -t;
    }
    const std::int64_t total_ms = t / kMillisecond;
    const std::int64_t ms = total_ms % 1000;
    const std::int64_t total_s = total_ms / 1000;
    const std::int64_t s = total_s % 60;
    const std::int64_t m = (total_s / 60) % 60;
    const std::int64_t h = total_s / 3600;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld.%03lld",
                  negative ? "-" : "", static_cast<long long>(h),
                  static_cast<long long>(m), static_cast<long long>(s),
                  static_cast<long long>(ms));
    return buf;
}

EventId
Simulation::schedule_at(Time t, std::function<void()> fn)
{
    if (t < now_) {
        t = now_;
    }
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    return id;
}

EventId
Simulation::schedule_after(Time delay, std::function<void()> fn)
{
    if (delay < 0) {
        delay = 0;
    }
    return schedule_at(now_ + delay, std::move(fn));
}

bool
Simulation::cancel(EventId id)
{
    if (id == 0 || id >= next_id_) {
        return false;
    }
    // Tombstone; the queue discards it lazily in skim_cancelled().
    return cancelled_.insert(id).second;
}

void
Simulation::skim_cancelled()
{
    while (!queue_.empty()) {
        auto it = cancelled_.find(queue_.top().id);
        if (it == cancelled_.end()) {
            return;
        }
        cancelled_.erase(it);
        queue_.pop();
    }
}

bool
Simulation::empty() const
{
    // Count only non-cancelled events.
    return queue_.size() == cancelled_.size();
}

bool
Simulation::step()
{
    skim_cancelled();
    if (queue_.empty()) {
        return false;
    }
    // Move the callback out before popping so that the callback may schedule
    // new events (which mutates the queue).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
}

void
Simulation::run()
{
    while (step()) {
    }
}

void
Simulation::run_until(Time t)
{
    while (true) {
        skim_cancelled();
        if (queue_.empty() || queue_.top().time > t) {
            break;
        }
        step();
    }
    if (now_ < t) {
        now_ = t;
    }
}

}  // namespace nbos::sim
