#include "sim/simulation.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

namespace nbos::sim {

std::string
format_time(Time t)
{
    const bool negative = t < 0;
    if (negative) {
        t = -t;
    }
    const std::int64_t total_ms = t / kMillisecond;
    const std::int64_t ms = total_ms % 1000;
    const std::int64_t total_s = total_ms / 1000;
    const std::int64_t s = total_s % 60;
    const std::int64_t m = (total_s / 60) % 60;
    const std::int64_t h = total_s / 3600;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld.%03lld",
                  negative ? "-" : "", static_cast<long long>(h),
                  static_cast<long long>(m), static_cast<long long>(s),
                  static_cast<long long>(ms));
    return buf;
}

std::uint32_t
Simulation::acquire_slot()
{
    if (free_head_ != kNoSlot) {
        const std::uint32_t slot = free_head_;
        free_head_ = slots_[slot].next_free;
        return slot;
    }
    // The arena only grows to the peak number of simultaneously pending
    // events; kSlotBits bounds that peak at ~16M. Enforced unconditionally:
    // overflowing would alias slot indices inside EventIds and silently
    // corrupt cancellation.
    if (slots_.size() >= kSlotMask) {
        throw std::length_error("Simulation: too many pending events");
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
Simulation::release_slot(std::uint32_t slot)
{
    Slot& s = slots_[slot];
    s.fn.reset();
    s.id = 0;
    s.next_free = free_head_;
    free_head_ = slot;
}

EventId
Simulation::schedule_at(Time t, EventFn fn)
{
    if (t < now_) {
        t = now_;
    }
    // Mirror of the slot-arena bound: a sequence past 2^40 would wrap out
    // of its EventId bit-field and alias stale handles onto live events.
    if (next_seq_ >> (64 - kSlotBits) != 0) {
        throw std::length_error("Simulation: schedule sequence exhausted");
    }
    const std::uint32_t slot = acquire_slot();
    const std::uint64_t seq = next_seq_++;
    const EventId id = make_id(seq, slot);
    slots_[slot].fn = std::move(fn);
    slots_[slot].id = id;
    queue_.push(Ticket{t, seq, slot});
    ++live_;
    return id;
}

EventId
Simulation::schedule_after(Time delay, EventFn fn)
{
    if (delay < 0) {
        delay = 0;
    }
    return schedule_at(now_ + delay, std::move(fn));
}

bool
Simulation::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
    if (id == 0 || slot >= slots_.size() || slots_[slot].id != id) {
        return false;  // Never scheduled, already fired, or already cancelled.
    }
    // The queue ticket becomes a tombstone, discarded lazily when it
    // surfaces; the slot is immediately reusable.
    release_slot(slot);
    --live_;
    return true;
}

bool
Simulation::run_one(Time limit)
{
    while (!queue_.empty()) {
        const Ticket ticket = queue_.top();
        Slot& slot = slots_[ticket.slot];
        if (slot.id != make_id(ticket.seq, ticket.slot)) {
            queue_.pop();  // Cancelled tombstone.
            continue;
        }
        if (ticket.time > limit) {
            return false;
        }
        queue_.pop();
        now_ = ticket.time;
        // Move the callback out and free the slot before invoking, so the
        // callback may schedule or cancel events (which mutates the arena).
        EventFn fn = std::move(slot.fn);
        release_slot(ticket.slot);
        --live_;
        ++executed_;
        fn();
        return true;
    }
    return false;
}

void
Simulation::run()
{
    while (step()) {
    }
}

void
Simulation::run_until(Time t)
{
    while (run_one(t)) {
    }
    if (now_ < t) {
        now_ = t;
    }
}

}  // namespace nbos::sim
