#include "sim/rng.hpp"

#include <cmath>

namespace nbos::sim {

namespace {

/** SplitMix64 step used to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_) {
        word = splitmix64(s);
    }
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniform_int(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo) {
        return lo;
    }
    // The span is computed in uint64_t: hi - lo in int64_t overflows (UB)
    // for extreme ranges such as (INT64_MIN, INT64_MAX). Unsigned wraparound
    // gives the exact span, and for every non-overflowing range the result
    // is bit-identical to the previous signed computation, so seeded
    // streams (and the determinism contract) are unchanged.
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {
        // Full 2^64-value range: every draw is in range already.
        return static_cast<std::int64_t>(next_u64());
    }
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     next_u64() % span);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0) {
        u = 0x1.0p-53;
    }
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (has_spare_) {
        has_spare_ = false;
        return spare_normal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) {
        u1 = 0x1.0p-53;
    }
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_normal_ = mag * std::sin(2.0 * M_PI * u2);
    has_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

double
Rng::pareto(double xm, double alpha)
{
    double u = uniform();
    if (u <= 0.0) {
        u = 0x1.0p-53;
    }
    return xm / std::pow(u, 1.0 / alpha);
}

std::size_t
Rng::weighted_index(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        total += w;
    }
    if (total <= 0.0) {
        return 0;
    }
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        target -= weights[i];
        if (target <= 0.0) {
            return i;
        }
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next_u64() ^ 0xa0761d6478bd642fULL);
}

}  // namespace nbos::sim
