/**
 * @file
 * The fast analytic NotebookOS engine used for the 90-day simulation
 * studies (§5.5), mirroring the paper's companion simulator.
 *
 * It models the same scheduling decisions as the prototype — replicated
 * kernels subscribed on three least-loaded servers under the dynamic SR
 * cap, dynamic GPU binding, migration on placement failure, pre-warmed
 * containers, and the §3.4.2 auto-scaler — but samples the latency of the
 * consensus protocol instead of exchanging per-message Raft traffic, so a
 * 90-day trace runs in seconds.
 *
 * The engine body lives in FastEngineShard (fastsim_engine.hpp): one
 * shard over the full trace is the historical monolithic engine, and
 * ShardedFastSim (sharded_fastsim.cpp) scales the same model across
 * cores by partitioning sessions over several shards.
 */
#include "core/fastsim.hpp"

#include <algorithm>
#include <memory>

#include "core/fastsim_engine.hpp"
#include "core/sharded_fastsim.hpp"
#include "sched/autoscaler.hpp"

namespace nbos::core {

FastEngineShard::FastEngineShard(FastShardPlan plan,
                                 const PlatformConfig& config)
    : plan_(std::move(plan)),
      config_(config),
      // Recycle simulation buffers across shard runs: a sweep constructs
      // one shard per spec and the cold-page faults dominated re-runs.
      simulation_(sim::Simulation::Options{
          true, &sim::SimMemoryPool::global()}),
      rng_(plan_.seed),
      store_(simulation_, config.scheduler.store_backend,
             sim::Rng(plan_.seed ^ 0x2545f491)),
      cluster_(config.scheduler.server_shape),
      placement_(config.scheduler.sr_watermark),
      prewarm_(config.scheduler.prewarm_per_server)
{
    results_.policy = Policy::kNotebookOS;
    results_.trace_name = plan_.trace_name;
    results_.makespan = plan_.makespan;
}

void
FastEngineShard::start()
{
    for (std::int32_t i = 0; i < plan_.initial_servers; ++i) {
        add_server();
    }
    if (!plan_.windowed) {
        schedule_workload();
    }
    schedule_tick();
}

void
FastEngineShard::run_until(sim::Time t)
{
    simulation_.run_until(t);
}

ExperimentResults
FastEngineShard::finish()
{
    finalize();
    return std::move(results_);
}

ExperimentResults
FastEngineShard::run()
{
    start();
    run_until(plan_.makespan + 12 * sim::kHour);
    return finish();
}

std::uint64_t
FastEngineShard::events_executed() const
{
    return simulation_.events_executed();
}

void
FastEngineShard::add_server()
{
    cluster::GpuServer& server = cluster_.add_server();
    prewarm_.register_server(server.id());
    // Fast mode refills the pool instantly on the periodic tick; the
    // initial fill is immediate.
    for (std::int32_t i = 0; i < config_.scheduler.prewarm_per_server;
         ++i) {
        prewarm_.begin_refill(server.id());
        prewarm_.complete_refill(server.id());
    }
    record_fleet_size();
}

void
FastEngineShard::record_fleet_size()
{
    const double total = static_cast<double>(cluster_.total_gpus());
    if (plan_.record_timeline) {
        results_.provisioned_gpus.record(simulation_.now(), total);
    } else {
        // Sharded mode: feed the driver-side merged fleet series as
        // (time, change) deltas; summing deltas across shards rebuilds
        // the fleet-wide step function deterministically.
        gpu_deltas_.emplace_back(simulation_.now(),
                                 total - last_total_gpus_);
    }
    last_total_gpus_ = total;
}

void
FastEngineShard::provision_server()
{
    ++provisioning_;
    results_.sched_stats.scale_outs += 1;
    record_event(sched::SchedulerEvent::Kind::kScaleOut);
    simulation_.schedule_after(
        sample(config_.scheduler.server_provision_min,
               config_.scheduler.server_provision_max),
        [this] {
            --provisioning_;
            add_server();
            place_pending_kernels();
        });
}

sim::Time
FastEngineShard::sample(sim::Time lo, sim::Time hi)
{
    return hi <= lo ? lo : lo + rng_.uniform_int(0, hi - lo);
}

void
FastEngineShard::record_event(sched::SchedulerEvent::Kind kind)
{
    results_.events.push_back(sched::SchedulerEvent{kind, simulation_.now()});
}

void
FastEngineShard::schedule_workload()
{
    for (const workload::SessionSpec* sp : plan_.sessions) {
        simulation_.schedule_at(sp->start_time,
                                [this, sp] { start_session(*sp); });
        if (sp->end_time < plan_.makespan) {
            simulation_.schedule_at(sp->end_time,
                                    [this, sp] { end_session(*sp); });
        }
        for (const workload::CellTask& task : sp->tasks) {
            const workload::CellTask* tp = &task;
            simulation_.schedule_at(task.submit_time, [this, sp, tp] {
                run_task(*sp, *tp);
            });
        }
    }
}

void
FastEngineShard::start_session(const workload::SessionSpec& session)
{
    FastKernel& kernel = kernel_at(session.id);
    kernel.session = session.id;
    kernel.spec = session.resources;
    ++live_sessions_;
    place_kernel(session.id);
}

void
FastEngineShard::place_kernel(workload::SessionId id)
{
    FastKernel& kernel = kernel_at(id);
    const auto replicas = static_cast<std::size_t>(
        config_.scheduler.kernel.replica_count);
    const auto servers = placement_.pick(
        cluster_, kernel.spec, replicas,
        config_.scheduler.kernel.replica_count);
    if (servers.size() < replicas) {
        pending_kernels_.insert(id);
        if (provisioning_ == 0) {
            for (std::size_t i = servers.size(); i < replicas; ++i) {
                provision_server();
            }
        }
        return;
    }
    kernel.servers = servers;
    kernel.alive = true;
    for (const cluster::ServerId server_id : servers) {
        cluster_.find(server_id)->subscribe(kernel.spec);
    }
    // Count each session's kernel exactly once: a session adopted from
    // another shard arrives with counted set, so the merged
    // kernels_created total is independent of the routing policy.
    if (!kernel.counted) {
        kernel.counted = true;
        results_.sched_stats.kernels_created += 1;
        record_event(sched::SchedulerEvent::Kind::kKernelCreated);
    }
}

void
FastEngineShard::place_pending_kernels()
{
    const std::set<workload::SessionId> pending = pending_kernels_;
    pending_kernels_.clear();
    for (const workload::SessionId id : pending) {
        place_kernel(id);
    }
}

void
FastEngineShard::end_session(const workload::SessionSpec& session)
{
    FastKernel& kernel = kernel_at(session.id);
    --live_sessions_;
    if (!kernel.alive) {
        pending_kernels_.erase(session.id);
        return;
    }
    for (const cluster::ServerId server_id : kernel.servers) {
        if (cluster::GpuServer* server = cluster_.find(server_id)) {
            server->unsubscribe(kernel.spec);
        }
    }
    kernel.alive = false;
}

TaskOutcome&
FastEngineShard::new_outcome(const workload::SessionSpec& session,
                             const workload::CellTask& task)
{
    results_.tasks.push_back(TaskOutcome{});
    TaskOutcome& outcome = results_.tasks.back();
    outcome.session = session.id;
    outcome.seq = task.seq;
    outcome.is_gpu = task.is_gpu;
    outcome.gpus = session.resources.gpus;
    outcome.submit = task.submit_time;
    return outcome;
}

void
FastEngineShard::run_task(const workload::SessionSpec& session,
                          const workload::CellTask& task)
{
    new_outcome(session, task);
    const std::size_t index = results_.tasks.size() - 1;
    FastKernel& kernel = kernel_at(session.id);
    if (plan_.windowed) {
        if (kernel.window_tasks == 0) {
            window_active_.push_back(session.id);
        }
        ++kernel.window_tasks;
    }
    if (!kernel.alive) {
        // Kernel still waiting for placement: treat as queued until
        // the next tick re-attempts; abort for simplicity if it never
        // placed (counted, excluded from latency stats).
        results_.tasks[index].aborted = true;
        return;
    }
    if (!task.is_gpu) {
        const sim::Time start = task.submit_time + 3 * sim::kMillisecond;
        complete(index, start, start + task.duration, 0, session.id);
        return;
    }
    // A GPU cell is now in flight (immediately or through a migration
    // chain); the session is pinned to this shard until it completes.
    kernel.inflight += 1;
    // Overheads along the critical path: hops + executor election +
    // GPU binding (sampled rather than message-by-message).
    const sim::Time overhead =
        sample(2 * sim::kMillisecond, 5 * sim::kMillisecond) +
        sample(10 * sim::kMillisecond, 60 * sim::kMillisecond) +
        sample(config_.scheduler.timings.gpu_bind_min,
               config_.scheduler.timings.gpu_bind_max);

    // Executor choice: prefer the previous executor's server.
    cluster::ServerId chosen = cluster::kNoServer;
    if (kernel.last_executor != cluster::kNoServer) {
        cluster::GpuServer* server = cluster_.find(kernel.last_executor);
        if (server != nullptr && server->can_commit(kernel.spec)) {
            chosen = kernel.last_executor;
        }
    }
    if (chosen == cluster::kNoServer) {
        std::int32_t best_idle = -1;
        for (const cluster::ServerId id : kernel.servers) {
            cluster::GpuServer* server = cluster_.find(id);
            if (server != nullptr && server->can_commit(kernel.spec) &&
                server->idle_gpus() > best_idle) {
                best_idle = server->idle_gpus();
                chosen = id;
            }
        }
    }
    if (chosen != cluster::kNoServer) {
        results_.sched_stats.immediate_commits += 1;
        if (chosen == kernel.last_executor) {
            results_.sched_stats.executor_reuses += 1;
        }
        results_.sched_stats.gpu_executions += 1;
        begin_execution(index, session.id, chosen,
                        task.submit_time + overhead, task.duration);
        return;
    }
    // No replica has GPUs: failed election -> migration (§3.2.3).
    results_.sched_stats.gpu_executions += 1;
    results_.sched_stats.elections_failed += 1;
    migrate_and_run(index, session.id, task, 0);
}

void
FastEngineShard::begin_execution(std::size_t index,
                                 workload::SessionId session_id,
                                 cluster::ServerId server_id,
                                 sim::Time start, sim::Time duration)
{
    FastKernel& kernel = kernel_at(session_id);
    cluster::GpuServer* server = cluster_.find(server_id);
    if (server == nullptr || !server->commit(kernel.spec)) {
        // Raced out; go through migration.
        results_.sched_stats.elections_failed += 1;
        migrate_and_run(index, session_id,
                        workload::CellTask{},  // duration passed below
                        0, duration);
        return;
    }
    kernel.last_executor = server_id;
    kernel.executions += 1;
    const sim::Time end = std::max(start, simulation_.now()) + duration;
    simulation_.schedule_at(end, [this, index, session_id, server_id,
                                  start, end] {
        if (cluster::GpuServer* host = cluster_.find(server_id)) {
            host->release(kernel_at(session_id).spec);
        }
        complete(index, start, end, 0, session_id);
    });
}

void
FastEngineShard::migrate_and_run(std::size_t index,
                                 workload::SessionId session_id,
                                 const workload::CellTask& task,
                                 int retries, sim::Time duration_override)
{
    FastKernel& kernel = kernel_at(session_id);
    const sim::Time duration =
        duration_override >= 0 ? duration_override : task.duration;
    // Migration target: any server outside the kernel with capacity.
    cluster::ServerId target = cluster::kNoServer;
    std::int32_t best_idle = -1;
    for (const auto& [id, server] : cluster_.servers()) {
        if (std::find(kernel.servers.begin(), kernel.servers.end(), id) !=
            kernel.servers.end()) {
            continue;
        }
        if (server->can_commit(kernel.spec) &&
            server->idle_gpus() > best_idle) {
            best_idle = server->idle_gpus();
            target = id;
        }
    }
    if (target == cluster::kNoServer) {
        if (retries >= config_.scheduler.migration_max_retries &&
            provisioning_ == 0) {
            results_.sched_stats.migrations_aborted += 1;
            results_.tasks[index].aborted = true;
            if (kernel.inflight > 0) {
                kernel.inflight -= 1;
            }
            return;
        }
        if (provisioning_ == 0) {
            provision_server();
        }
        simulation_.schedule_after(
            config_.scheduler.migration_retry,
            [this, index, session_id, task, retries, duration] {
                migrate_and_run(index, session_id, task, retries + 1,
                                duration);
            });
        return;
    }
    results_.sched_stats.migrations += 1;
    record_event(sched::SchedulerEvent::Kind::kMigration);

    // Victim: the kernel server with the fewest idle GPUs.
    cluster::ServerId victim = kernel.servers.front();
    std::int32_t worst = 1 << 30;
    for (const cluster::ServerId id : kernel.servers) {
        const cluster::GpuServer* server = cluster_.find(id);
        const std::int32_t idle =
            server != nullptr ? server->idle_gpus() : 0;
        if (idle < worst) {
            worst = idle;
            victim = id;
        }
    }
    if (cluster::GpuServer* old_server = cluster_.find(victim)) {
        old_server->unsubscribe(kernel.spec);
    }
    std::replace(kernel.servers.begin(), kernel.servers.end(), victim,
                 target);
    cluster_.find(target)->subscribe(kernel.spec);

    // Migration latency: checkpoint write + container + state read +
    // Raft reconfiguration.
    const sim::Time container_delay =
        prewarm_.acquire(target)
            ? (results_.sched_stats.prewarm_hits += 1,
               config_.scheduler.timings.prewarm_assign)
            : (results_.sched_stats.cold_starts += 1,
               sample(config_.scheduler.timings.cold_start_min,
                      config_.scheduler.timings.cold_start_max));
    auto stage = std::make_shared<sim::Time>(0);
    const std::string key =
        "kernel/" + std::to_string(session_id) + "/checkpoint";
    store_.write(key, 8ULL << 20, [this, index, session_id, target,
                                   container_delay, key, duration](
                                      sim::Time) {
        simulation_.schedule_after(container_delay, [this, index,
                                                     session_id, target,
                                                     key, duration] {
            store_.read(key, [this, index, session_id, target,
                              duration](const storage::ReadResult&) {
                const sim::Time reconfig =
                    sample(500 * sim::kMillisecond, 1500 *
                                                        sim::kMillisecond);
                simulation_.schedule_after(
                    reconfig, [this, index, session_id, target,
                               duration] {
                        TaskOutcome& outcome = results_.tasks[index];
                        outcome.migrated = true;
                        begin_execution(index, session_id, target,
                                        simulation_.now() +
                                            sample(config_.scheduler
                                                       .timings
                                                       .gpu_bind_min,
                                                   config_.scheduler
                                                       .timings
                                                       .gpu_bind_max),
                                        duration);
                    });
            });
        });
    });
    (void)stage;
}

void
FastEngineShard::complete(std::size_t index, sim::Time start, sim::Time end,
                          sim::Time extra_reply,
                          workload::SessionId session_id)
{
    TaskOutcome& outcome = results_.tasks[index];
    outcome.exec_start = start;
    outcome.exec_end = end;
    outcome.reply = end + extra_reply +
                    sample(2 * sim::kMillisecond, 6 * sim::kMillisecond);
    results_.sched_stats.executions_completed += 1;
    if (outcome.is_gpu) {
        FastKernel& kernel = kernel_at(session_id);
        if (kernel.inflight > 0) {
            kernel.inflight -= 1;
        }
    }
}

void
FastEngineShard::schedule_tick()
{
    simulation_.schedule_after(
        config_.scheduler.autoscale_interval, [this] {
            tick();
            if (simulation_.now() < plan_.makespan) {
                schedule_tick();
            }
        });
}

void
FastEngineShard::tick()
{
    // Auto-scaler (§3.4.2). SchedulerConfig::enable_autoscaler freezes
    // the fleet (no scale decisions) without disabling placement retries
    // or the timeline samples — the scale bench and the shard-count
    // invariance property both rely on a frozen fleet.
    if (config_.scheduler.enable_autoscaler) {
        sched::AutoScalerInputs inputs;
        inputs.committed_gpus = cluster_.total_committed_gpus();
        inputs.total_gpus = cluster_.total_gpus();
        inputs.gpus_per_server = config_.scheduler.server_shape.gpus;
        inputs.current_servers =
            static_cast<std::int32_t>(cluster_.size()) + provisioning_;
        std::vector<cluster::ServerId> idle;
        for (const auto& [id, server] : cluster_.servers()) {
            if (server->subscribed_gpus() == 0 &&
                server->committed_gpus() == 0) {
                idle.push_back(id);
            }
        }
        inputs.idle_servers = static_cast<std::int32_t>(idle.size());
        sched::AutoScaleDecision decision = sched::evaluate_autoscaler(
            inputs, config_.scheduler.autoscaler);
        if (!pending_kernels_.empty() || provisioning_ > 0) {
            decision.remove_servers = 0;
        }
        for (std::int32_t i = 0; i < decision.add_servers; ++i) {
            provision_server();
        }
        for (std::int32_t i = 0;
             i < decision.remove_servers &&
             i < static_cast<std::int32_t>(idle.size());
             ++i) {
            prewarm_.unregister_server(idle[i]);
            cluster_.remove_server(idle[i]);
            results_.sched_stats.scale_ins += 1;
            record_event(sched::SchedulerEvent::Kind::kScaleIn);
            record_fleet_size();
        }
    }
    // Instant pre-warm refills (their cold start is amortized by the
    // tick interval in fast mode).
    for (const auto& [id, server] : cluster_.servers()) {
        while (prewarm_.deficit(id) > 0) {
            prewarm_.begin_refill(id);
            prewarm_.complete_refill(id);
        }
    }
    place_pending_kernels();
    // Timeline samples. Sharded mode records the raw fleet signals
    // instead: every shard ticks on the same (autoscale_interval,
    // makespan) grid, so the driver merges samples positionally into the
    // fleet-wide subscription ratio.
    if (plan_.record_timeline) {
        results_.subscription_ratio.record(
            simulation_.now(),
            cluster_.cluster_subscription_ratio(
                config_.scheduler.kernel.replica_count));
    } else {
        tick_samples_.push_back(FastTickSample{
            simulation_.now(), cluster_.total_subscribed_gpus(),
            cluster_.total_gpus()});
    }
}

void
FastEngineShard::inject_session_start(const workload::SessionSpec* sp)
{
    simulation_.schedule_at(sp->start_time,
                            [this, sp] { start_session(*sp); });
}

void
FastEngineShard::inject_session_end(const workload::SessionSpec* sp)
{
    simulation_.schedule_at(sp->end_time,
                            [this, sp] { end_session(*sp); });
}

void
FastEngineShard::inject_task(const workload::SessionSpec* sp,
                             const workload::CellTask* tp)
{
    simulation_.schedule_at(tp->submit_time,
                            [this, sp, tp] { run_task(*sp, *tp); });
}

bool
FastEngineShard::session_movable(workload::SessionId id) const
{
    const std::int32_t row = kernels_.find(id);
    if (row < 0) {
        return false;
    }
    const FastKernel& kernel = kernels_.cold_at(row);
    return kernel.alive && kernel.inflight == 0;
}

bool
FastEngineShard::extract_session(workload::SessionId id,
                                 FastSessionExtract& out)
{
    const std::int32_t row = kernels_.find(id);
    if (row < 0) {
        return false;
    }
    FastKernel& kernel = kernels_.cold_at(row);
    if (!kernel.alive || kernel.inflight != 0) {
        return false;
    }
    out.session = id;
    out.spec = kernel.spec;
    out.executions = kernel.executions;
    for (const cluster::ServerId server_id : kernel.servers) {
        if (cluster::GpuServer* server = cluster_.find(server_id)) {
            server->unsubscribe(kernel.spec);
        }
    }
    kernels_.erase(id);
    --live_sessions_;
    return true;
}

void
FastEngineShard::adopt_session(const FastSessionExtract& extract)
{
    FastKernel& kernel = kernel_at(extract.session);
    kernel.session = extract.session;
    kernel.spec = extract.spec;
    kernel.executions = extract.executions;
    kernel.servers.clear();
    kernel.last_executor = cluster::kNoServer;
    kernel.alive = false;
    kernel.inflight = 0;
    kernel.window_tasks = 0;
    // Already counted on the shard that first placed it.
    kernel.counted = true;
    ++live_sessions_;
    place_kernel(extract.session);
}

void
FastEngineShard::harvest_window_load(sched::ShardLoad& load,
                                     std::vector<sched::SessionLoad>&
                                         sessions)
{
    load.sessions = live_sessions_;
    load.weight = 0;
    sessions.clear();
    // Canonical id order: the merged per-shard lists (and therefore the
    // rebalance plan) are a pure function of session state, independent
    // of the event interleaving that filled window_active_.
    std::sort(window_active_.begin(), window_active_.end());
    sessions.reserve(window_active_.size());
    for (const workload::SessionId id : window_active_) {
        FastKernel& kernel = kernel_at(id);
        if (kernel.window_tasks == 0) {
            continue;
        }
        load.weight += kernel.window_tasks;
        sessions.push_back(sched::SessionLoad{id, kernel.window_tasks,
                                              session_movable(id)});
        kernel.window_tasks = 0;
    }
    window_active_.clear();
}

void
FastEngineShard::finalize()
{
    std::vector<std::pair<sim::Time, double>> committed;
    for (TaskOutcome& task : results_.tasks) {
        if (task.reply == 0) {
            task.aborted = true;
        }
        if (task.is_gpu && !task.aborted) {
            committed.emplace_back(task.exec_start,
                                   static_cast<double>(task.gpus));
            committed.emplace_back(task.exec_end,
                                   -static_cast<double>(task.gpus));
        }
    }
    results_.committed_gpus = series_from_deltas(std::move(committed));
    results_.read_ms = store_.read_latencies();
    results_.write_ms = store_.write_latencies();
    results_.store_bytes_written = store_.bytes_written();
}

ExperimentResults
run_fast_notebookos(const workload::Trace& trace,
                    const PlatformConfig& config)
{
    return ShardedFastSim(trace, config).run();
}

}  // namespace nbos::core
