/**
 * @file
 * Experiment result structures shared by every policy engine, plus the
 * trace-derived reference series (oracle / reservation / session counts)
 * used across the paper's figures.
 */
#ifndef NBOS_CORE_RESULTS_HPP
#define NBOS_CORE_RESULTS_HPP

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "metrics/percentiles.hpp"
#include "metrics/timeseries.hpp"
#include "sched/global_scheduler.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** The scheduling policies evaluated in §5. */
enum class Policy
{
    kReservation,    ///< GPUs bound for the whole session (Colab-style).
    kBatch,          ///< FCFS batch scheduler, on-demand containers.
    kNotebookOS,     ///< Replicated kernels, dynamic binding (this paper).
    kNotebookOSLCP,  ///< Large warm-container pool variant.
};

/** Human-readable policy name. */
const char* to_string(Policy policy);

/** Parse a to_string(Policy) name back into the enum.
 *  @return std::nullopt for unknown names. */
std::optional<Policy> policy_from_string(std::string_view name);

/** Outcome of one cell task under some policy. */
struct TaskOutcome
{
    workload::SessionId session = -1;
    std::int32_t seq = 0;
    bool is_gpu = true;
    std::int32_t gpus = 0;
    sim::Time submit = 0;
    sim::Time exec_start = 0;
    sim::Time exec_end = 0;
    sim::Time reply = 0;
    bool migrated = false;
    bool aborted = false;
    /** Error text when aborted (diagnostics). */
    std::string error;
    /** Full request breakdown (populated by the prototype engines). */
    sched::RequestTrace trace{};

    /** §5.3.2: interval between submission and execution start. */
    sim::Time interactivity_delay() const { return exec_start - submit; }

    /** §5.3.3: interval between submission and completed reply. */
    sim::Time tct() const { return reply - submit; }
};

/** Everything one experiment run produces. */
struct ExperimentResults
{
    Policy policy = Policy::kNotebookOS;
    std::string trace_name;
    sim::Time makespan = 0;
    std::vector<TaskOutcome> tasks;

    /** Provider-side capacity: GPUs on provisioned servers over time. */
    metrics::TimeSeries provisioned_gpus;
    /** GPUs exclusively bound to running work over time. */
    metrics::TimeSeries committed_gpus;
    /** Cluster subscription ratio over time (NotebookOS only). */
    metrics::TimeSeries subscription_ratio;
    /** Scheduler events (kernel creations, migrations, scaling). */
    std::vector<sched::SchedulerEvent> events;
    /** Small-state sync latency (ms, NotebookOS only). */
    metrics::Percentiles sync_ms;
    /** Data-store read/write latency (ms). */
    metrics::Percentiles read_ms;
    metrics::Percentiles write_ms;
    /** Scheduler counters (NotebookOS only). */
    sched::SchedulerStats sched_stats{};
    /** Network delivery counters with the per-fault-class drop breakdown
     *  (NotebookOS prototype engine only; zeros on the fast engine). */
    net::NetworkStats net_stats{};
    /** Cumulative bytes written to the data store. */
    std::uint64_t store_bytes_written = 0;

    /** Interactivity delays of completed GPU tasks, seconds (Fig. 9a). */
    metrics::Percentiles interactivity_delays_seconds() const;
    /** Task completion times in milliseconds (Fig. 9b). */
    metrics::Percentiles tct_ms() const;
    /** Area under provisioned_gpus over the makespan. */
    double gpu_hours_provisioned() const;
    /** Area under committed_gpus over the makespan. */
    double gpu_hours_committed() const;
    /** Number of concurrently running trainings over time (Fig. 7). */
    metrics::TimeSeries active_trainings_series() const;
    /** Count of aborted tasks. */
    std::size_t aborted_count() const;
};

/** Build a step series from (time, delta) pairs (sorted internally). */
metrics::TimeSeries
series_from_deltas(std::vector<std::pair<sim::Time, double>> deltas);

/** Oracle provisioning: exactly the GPUs demanded by running tasks. */
metrics::TimeSeries oracle_gpu_series(const workload::Trace& trace);

/** GPUs a Reservation platform keeps bound: sum over active sessions. */
metrics::TimeSeries reserved_gpu_series(const workload::Trace& trace);

/** Active sessions over time (Fig. 7 / Fig. 20). */
metrics::TimeSeries active_sessions_series(const workload::Trace& trace);

/**
 * Fig. 13: GPU-hours of re-execution avoided by NotebookOS's state
 * persistence, for an idle-reclamation interval @p reclaim. Whenever a
 * session is idle longer than the interval, a state-less platform reclaims
 * the kernel and the user must re-run the notebook's cells on return.
 *
 * @return cumulative GPU-hours-saved series sampled at @p step.
 */
metrics::TimeSeries reexecution_saved_series(const workload::Trace& trace,
                                             sim::Time reclaim,
                                             sim::Time step);

}  // namespace nbos::core

#endif  // NBOS_CORE_RESULTS_HPP
