/**
 * @file
 * ExperimentRunner: execute a batch of ExperimentSpecs on a thread pool.
 *
 * Every engine run is single-threaded and deterministic over its own
 * simulation world, so specs are embarrassingly parallel: a 4-policy
 * figure bench or an N-seed sweep finishes in the wall-clock time of its
 * slowest spec. Results come back in spec order regardless of completion
 * order, so tables printed from them are byte-identical to serial runs.
 */
#ifndef NBOS_CORE_RUNNER_HPP
#define NBOS_CORE_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** One experiment: an engine name, a trace, and its configuration. */
struct ExperimentSpec
{
    /** EngineRegistry name ("reservation", "notebookos-fast", ...). */
    std::string engine;
    /** Trace to execute; not owned and must outlive the run() call. */
    const workload::Trace* trace = nullptr;
    /** Engine knobs. policy/fast_mode are overridden by @ref engine;
     *  seed is overridden by @ref seed. */
    PlatformConfig config{};
    /** Seed applied to the config before the run. */
    std::uint64_t seed = 1;
    /** Display label; defaults to the engine name when empty. */
    std::string label;
};

/** Outcome of one spec: results on success, an error message otherwise. */
struct ExperimentOutcome
{
    std::size_t index = 0;  ///< Position in the submitted batch.
    std::string label;
    std::string engine;
    bool ok = false;
    std::string error;
    ExperimentResults results;
};

/** Runs experiment batches concurrently with stable result ordering. */
class ExperimentRunner
{
  public:
    /**
     * Invoked once per finished experiment. Callbacks are serialized
     * under the runner's mutex (never concurrent with each other), in
     * completion order; @p completed counts finished specs so far.
     */
    using ProgressCallback = std::function<void(
        const ExperimentOutcome& outcome, std::size_t completed,
        std::size_t total)>;

    /** @param threads worker count; 0 picks hardware concurrency. */
    explicit ExperimentRunner(std::size_t threads = 0);

    /** Execute every spec and block until all are done.
     *  @return one outcome per spec, in spec order. */
    std::vector<ExperimentOutcome>
    run(const std::vector<ExperimentSpec>& specs,
        const ProgressCallback& on_complete = nullptr) const;

    std::size_t threads() const { return threads_; }

  private:
    std::size_t threads_;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_RUNNER_HPP
