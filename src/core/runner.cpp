#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/engine_api.hpp"

namespace nbos::core {
namespace {

ExperimentOutcome
run_one(const ExperimentSpec& spec, std::size_t index)
{
    ExperimentOutcome outcome;
    outcome.index = index;
    outcome.engine = spec.engine;
    outcome.label = spec.label.empty() ? spec.engine : spec.label;
    if (spec.trace == nullptr) {
        outcome.error = "spec has no trace";
        return outcome;
    }
    // An empty name is an unknown engine here, not "derive from policy"
    // as in core::run — ExperimentSpec::engine is documented as a
    // registry name and the registry never holds an empty key.
    if (spec.engine.empty()) {
        outcome.error = "unknown engine ''";
        return outcome;
    }
    // The whole pipeline runs inside the try: a throwing user-registered
    // factory must surface as outcome.error, not escape the worker
    // thread (which would std::terminate the process). core::run keeps
    // the historical error strings — an unknown name still reads
    // "unknown engine '<name>'".
    try {
        RunRequest request;
        request.engine = spec.engine;
        request.config = spec.config;
        request.trace = spec.trace;
        request.mode = RunMode::kMaterialized;
        request.seed = spec.seed;
        outcome.results = run(request).results;
        outcome.ok = true;
    } catch (const std::exception& error) {
        outcome.error = error.what();
    } catch (...) {
        outcome.error = "unknown exception from engine '" + spec.engine +
                        "'";
    }
    return outcome;
}

}  // namespace

ExperimentRunner::ExperimentRunner(std::size_t threads) : threads_(threads)
{
    if (threads_ == 0) {
        const unsigned hardware = std::thread::hardware_concurrency();
        threads_ = hardware > 0 ? hardware : 1;
    }
}

std::vector<ExperimentOutcome>
ExperimentRunner::run(const std::vector<ExperimentSpec>& specs,
                      const ProgressCallback& on_complete) const
{
    std::vector<ExperimentOutcome> outcomes(specs.size());
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::size_t completed = 0;

    const auto worker = [&] {
        for (;;) {
            const std::size_t index = next.fetch_add(1);
            if (index >= specs.size()) {
                return;
            }
            ExperimentOutcome outcome = run_one(specs[index], index);
            const std::lock_guard<std::mutex> lock(mutex);
            outcomes[index] = std::move(outcome);
            ++completed;
            if (on_complete) {
                on_complete(outcomes[index], completed, specs.size());
            }
        }
    };

    const std::size_t pool = std::min(threads_, specs.size());
    if (pool <= 1) {
        worker();
        return outcomes;
    }
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) {
        threads.emplace_back(worker);
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    return outcomes;
}

}  // namespace nbos::core
