#include "core/baselines.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>

#include "nblang/catalog.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace nbos::core {

namespace {

/** Common machinery of the three baselines. */
class BaselineEngine
{
  public:
    BaselineEngine(Policy policy, const workload::Trace& trace,
                   const BaselineConfig& config, std::uint64_t seed)
        : policy_(policy),
          trace_(trace),
          config_(config),
          rng_(seed),
          store_(simulation_, config.backend, sim::Rng(seed ^ 0x517cc1b7)),
          cluster_(config.server_shape)
    {
        results_.policy = policy;
        results_.trace_name = trace.name;
        results_.makespan = trace.makespan;
        preload_artifacts();
    }

    virtual ~BaselineEngine() = default;

    ExperimentResults
    run()
    {
        schedule_workload();
        // Periodic services (reapers) reschedule forever; a bounded drain
        // window lets queued long tasks finish without running unbounded.
        simulation_.run_until(trace_.makespan + 24 * sim::kHour);
        finalize();
        return std::move(results_);
    }

  protected:
    virtual void on_session_start(const workload::SessionSpec& session) = 0;
    virtual void on_session_end(const workload::SessionSpec& session) = 0;
    virtual void on_task(const workload::SessionSpec& session,
                         const workload::CellTask& task) = 0;

    /** Preload model/dataset artifacts into the object store (the paper's
     *  S3 bucket of models and datasets, §5.1.2). */
    void
    preload_artifacts()
    {
        for (const auto& model : nblang::model_catalog()) {
            store_.write("model/" + model.name, model.param_bytes, nullptr);
        }
        for (const auto& dataset : nblang::dataset_catalog()) {
            store_.write("dataset/" + dataset.name, dataset.bytes, nullptr);
        }
    }

    void
    schedule_workload()
    {
        for (const workload::SessionSpec& session : trace_.sessions) {
            simulation_.schedule_at(session.start_time, [this, &session] {
                on_session_start(session);
            });
            if (session.end_time < trace_.makespan) {
                simulation_.schedule_at(session.end_time, [this, &session] {
                    on_session_end(session);
                });
            }
            for (const workload::CellTask& task : session.tasks) {
                simulation_.schedule_at(task.submit_time,
                                        [this, &session, &task] {
                                            on_task(session, task);
                                        });
            }
        }
    }

    void
    finalize()
    {
        results_.committed_gpus = series_from_deltas(committed_deltas_);
        results_.read_ms = store_.read_latencies();
        results_.write_ms = store_.write_latencies();
        results_.store_bytes_written = store_.bytes_written();
        // Tasks that never completed within the drain window do not carry
        // valid timings; exclude them from the distributions.
        for (TaskOutcome& task : results_.tasks) {
            if (task.reply == 0) {
                task.aborted = true;
            }
        }
    }

    cluster::GpuServer&
    add_server()
    {
        cluster::GpuServer& server = cluster_.add_server();
        results_.provisioned_gpus.record(
            simulation_.now(), static_cast<double>(cluster_.total_gpus()));
        return server;
    }

    void
    remove_server(cluster::ServerId id)
    {
        cluster_.remove_server(id);
        results_.provisioned_gpus.record(
            simulation_.now(), static_cast<double>(cluster_.total_gpus()));
    }

    /** Provision one server asynchronously; @p on_ready fires once up. */
    void
    provision_server(std::function<void(cluster::ServerId)> on_ready)
    {
        ++provisioning_;
        const sim::Time delay = sample(config_.server_provision_min,
                                       config_.server_provision_max);
        simulation_.schedule_after(
            delay, [this, on_ready = std::move(on_ready)] {
                --provisioning_;
                cluster::GpuServer& server = add_server();
                if (on_ready) {
                    on_ready(server.id());
                }
            });
    }

    void
    record_commit(std::int32_t gpus)
    {
        committed_deltas_.emplace_back(simulation_.now(),
                                       static_cast<double>(gpus));
    }

    void
    record_release(std::int32_t gpus)
    {
        committed_deltas_.emplace_back(simulation_.now(),
                                       -static_cast<double>(gpus));
    }

    sim::Time
    sample(sim::Time lo, sim::Time hi)
    {
        return hi <= lo ? lo : lo + rng_.uniform_int(0, hi - lo);
    }

    /** One-way client->server request overhead. */
    sim::Time
    request_hops()
    {
        return sample(config_.hops.client_to_gs_min,
                      config_.hops.client_to_gs_max) +
               sample(config_.hops.gs_to_ls_min, config_.hops.gs_to_ls_max) +
               sample(config_.hops.ls_to_replica_min,
                      config_.hops.ls_to_replica_max);
    }

    /** Read the session's model + dataset from the store; @p done fires
     *  when both complete (the baselines' warm-up I/O). */
    void
    load_artifacts(const workload::SessionSpec& session,
                   std::function<void()> done)
    {
        auto remaining = std::make_shared<int>(2);
        auto fire = [remaining, done = std::move(done)] {
            if (--*remaining == 0) {
                done();
            }
        };
        store_.read("model/" + session.model,
                    [fire](const storage::ReadResult&) { fire(); });
        store_.read("dataset/" + session.dataset,
                    [fire](const storage::ReadResult&) { fire(); });
    }

    /** Write back the updated model parameters (post-processing I/O). */
    void
    writeback_model(const workload::SessionSpec& session,
                    std::function<void()> done)
    {
        const auto model = nblang::find_model(session.model);
        store_.write("model/" + session.model + "/session-" +
                         std::to_string(session.id),
                     model ? model->param_bytes : 100ULL << 20,
                     [done = std::move(done)](sim::Time) {
                         if (done) {
                             done();
                         }
                     });
    }

    TaskOutcome&
    new_outcome(const workload::SessionSpec& session,
                const workload::CellTask& task)
    {
        results_.tasks.push_back(TaskOutcome{});
        TaskOutcome& outcome = results_.tasks.back();
        outcome.session = session.id;
        outcome.seq = task.seq;
        outcome.is_gpu = task.is_gpu;
        outcome.gpus = session.resources.gpus;
        outcome.submit = task.submit_time;
        outcome.trace.submitted_at = task.submit_time;
        return outcome;
    }

    Policy policy_;
    const workload::Trace& trace_;
    BaselineConfig config_;
    sim::Simulation simulation_;
    sim::Rng rng_;
    storage::DataStore store_;
    cluster::Cluster cluster_;
    ExperimentResults results_;
    std::vector<std::pair<sim::Time, double>> committed_deltas_;
    std::int32_t provisioning_ = 0;
};

/* ------------------------------ Reservation --------------------------- */

class ReservationEngine : public BaselineEngine
{
  public:
    using BaselineEngine::BaselineEngine;

  private:
    struct SessionState
    {
        cluster::ServerId server = cluster::kNoServer;
        sim::Time ready_at = 0;
        sim::Time prev_reply = 0;
        bool placed = false;
    };

    void
    on_session_start(const workload::SessionSpec& session) override
    {
        SessionState& state = sessions_[session.id];
        // Find (or provision) a server and bind the GPUs for the whole
        // session lifetime.
        for (const auto& [id, server] : cluster_.servers()) {
            if (server->commit(session.resources)) {
                attach(session, state, id);
                return;
            }
        }
        provision_server([this, &session](cluster::ServerId id) {
            SessionState& st = sessions_[session.id];
            cluster::GpuServer* server = cluster_.find(id);
            if (server != nullptr && server->commit(session.resources)) {
                attach(session, st, id);
            }
        });
    }

    void
    attach(const workload::SessionSpec& session, SessionState& state,
           cluster::ServerId id)
    {
        state.server = id;
        state.placed = true;
        record_commit(session.resources.gpus);
        // Container cold start plus the initial model/dataset download.
        const sim::Time cold = sample(config_.timings.cold_start_min,
                                      config_.timings.cold_start_max);
        const sim::Time start = simulation_.now();
        state.ready_at = start + cold;
        simulation_.schedule_after(cold, [this, &session] {
            load_artifacts(session, [this, &session] {
                sessions_[session.id].ready_at = simulation_.now();
            });
        });
    }

    void
    on_session_end(const workload::SessionSpec& session) override
    {
        SessionState& state = sessions_[session.id];
        if (!state.placed) {
            return;
        }
        record_release(session.resources.gpus);
        if (cluster::GpuServer* server = cluster_.find(state.server)) {
            server->release(session.resources);
            if (server->committed_gpus() == 0) {
                remove_server(state.server);
            }
        }
        state.placed = false;
    }

    void
    on_task(const workload::SessionSpec& session,
            const workload::CellTask& task) override
    {
        new_outcome(session, task);
        const std::size_t index = results_.tasks.size() - 1;
        SessionState& state = sessions_[session.id];
        // GPUs stay bound: the cell starts as soon as the kernel is free.
        const sim::Time request_ready =
            task.submit_time + request_hops() +
            sample(10 * sim::kMillisecond, 50 * sim::kMillisecond);
        const sim::Time start = std::max(
            {request_ready, state.ready_at, state.prev_reply});
        const sim::Time end = start + task.duration;
        state.prev_reply = end;
        simulation_.schedule_at(end, [this, index, &session, start, end] {
            // Persist updated state before replying (Fig. 16, step 9).
            writeback_model(session, [this, index, start, end] {
                TaskOutcome& done = results_.tasks[index];
                done.exec_start = start;
                done.exec_end = end;
                done.reply = simulation_.now();
                done.trace.execution_started = start;
                done.trace.execution_finished = end;
                done.trace.replica_replied = end;
                done.trace.client_replied = done.reply;
            });
        });
    }

    std::map<workload::SessionId, SessionState> sessions_;
};

/* --------------------------------- Batch ------------------------------ */

class BatchEngine : public BaselineEngine
{
  public:
    BatchEngine(Policy policy, const workload::Trace& trace,
                const BaselineConfig& config, std::uint64_t seed)
        : BaselineEngine(policy, trace, config, seed)
    {
        add_server();  // minimal standing capacity
        schedule_reaper();
    }

  private:
    struct QueuedTask
    {
        const workload::SessionSpec* session;
        const workload::CellTask* task;
        std::size_t outcome_index;
    };

    void on_session_start(const workload::SessionSpec&) override {}
    void on_session_end(const workload::SessionSpec&) override {}

    void
    on_task(const workload::SessionSpec& session,
            const workload::CellTask& task) override
    {
        TaskOutcome& outcome = new_outcome(session, task);
        (void)outcome;
        queue_.push_back(QueuedTask{&session, &task,
                                    results_.tasks.size() - 1});
        dispatch();
    }

    /** Strict FCFS: the head blocks until some server can host it. */
    void
    dispatch()
    {
        while (!queue_.empty()) {
            const QueuedTask next = queue_.front();
            cluster::GpuServer* host = nullptr;
            for (const auto& [id, server] : cluster_.servers()) {
                if (server->can_commit(next.session->resources)) {
                    host = server;
                    break;
                }
            }
            if (host == nullptr) {
                if (provisioning_ == 0) {
                    provision_server(
                        [this](cluster::ServerId) { dispatch(); });
                }
                return;
            }
            queue_.pop_front();
            run_task(next, host->id());
        }
    }

    void
    run_task(const QueuedTask& queued, cluster::ServerId host_id)
    {
        cluster::GpuServer* host = cluster_.find(host_id);
        host->commit(queued.session->resources);
        record_commit(queued.session->resources.gpus);
        busy_servers_[host_id] += 1;
        // On-demand container provisioning (the Batch cold start).
        const sim::Time cold = sample(config_.timings.cold_start_min,
                                      config_.timings.cold_start_max);
        const std::size_t index = queued.outcome_index;
        const workload::SessionSpec* session = queued.session;
        const workload::CellTask* task = queued.task;
        simulation_.schedule_after(cold, [this, index, session, task,
                                          host_id] {
            // Mandatory pre-processing I/O: model + dataset download.
            load_artifacts(*session, [this, index, session, task, host_id] {
                TaskOutcome& outcome = results_.tasks[index];
                outcome.exec_start = simulation_.now();
                outcome.trace.execution_started = outcome.exec_start;
                simulation_.schedule_after(task->duration, [this, index,
                                                            session,
                                                            host_id] {
                    TaskOutcome& done = results_.tasks[index];
                    done.exec_end = simulation_.now();
                    done.trace.execution_finished = done.exec_end;
                    // Mandatory post-processing I/O before the reply.
                    writeback_model(*session, [this, index, session,
                                               host_id] {
                        TaskOutcome& finished = results_.tasks[index];
                        finished.reply = simulation_.now();
                        finished.trace.replica_replied = finished.reply;
                        finished.trace.client_replied = finished.reply;
                        record_release(session->resources.gpus);
                        if (cluster::GpuServer* server =
                                cluster_.find(host_id)) {
                            server->release(session->resources);
                        }
                        busy_servers_[host_id] -= 1;
                        last_activity_[host_id] = simulation_.now();
                        dispatch();
                    });
                });
            });
        });
    }

    void
    schedule_reaper()
    {
        simulation_.schedule_after(config_.batch_idle_release, [this] {
            // Release servers idle past the timeout (keep one).
            std::vector<cluster::ServerId> victims;
            for (const auto& [id, server] : cluster_.servers()) {
                if (cluster_.size() - victims.size() <= 1) {
                    break;
                }
                const bool busy = busy_servers_[id] > 0;
                const sim::Time last = last_activity_.count(id) > 0
                                           ? last_activity_[id]
                                           : 0;
                if (!busy && simulation_.now() - last >=
                                 config_.batch_idle_release) {
                    victims.push_back(id);
                }
            }
            for (const cluster::ServerId id : victims) {
                remove_server(id);
                busy_servers_.erase(id);
                last_activity_.erase(id);
            }
            schedule_reaper();
        });
    }

    std::deque<QueuedTask> queue_;
    std::map<cluster::ServerId, int> busy_servers_;
    std::map<cluster::ServerId, sim::Time> last_activity_;
};

/* ---------------------------------- LCP -------------------------------- */

class LcpEngine : public BaselineEngine
{
  public:
    LcpEngine(Policy policy, const workload::Trace& trace,
              const BaselineConfig& config, std::uint64_t seed)
        : BaselineEngine(policy, trace, config, seed)
    {
        warm_up_server(add_server().id());
        schedule_reaper();
    }

  private:
    struct QueuedTask
    {
        const workload::SessionSpec* session;
        const workload::CellTask* task;
        std::size_t outcome_index;
    };

    void on_session_start(const workload::SessionSpec&) override {}
    void on_session_end(const workload::SessionSpec&) override {}

    void
    on_task(const workload::SessionSpec& session,
            const workload::CellTask& task) override
    {
        new_outcome(session, task);
        queue_.push_back(QueuedTask{&session, &task,
                                    results_.tasks.size() - 1});
        dispatch();
    }

    void
    warm_up_server(cluster::ServerId id)
    {
        // Fill the server's share of the warm-container pool.
        for (std::int32_t i = 0; i < config_.lcp_warm_per_server; ++i) {
            const sim::Time cold = sample(config_.timings.cold_start_min,
                                          config_.timings.cold_start_max);
            simulation_.schedule_after(cold, [this, id] {
                if (cluster_.find(id) != nullptr) {
                    warm_[id] += 1;
                    dispatch();
                }
            });
        }
    }

    void
    dispatch()
    {
        while (!queue_.empty()) {
            const QueuedTask next = queue_.front();
            // Prefer a server with both a warm container and free GPUs.
            cluster::ServerId warm_host = cluster::kNoServer;
            cluster::ServerId any_host = cluster::kNoServer;
            for (const auto& [id, server] : cluster_.servers()) {
                if (!server->can_commit(next.session->resources)) {
                    continue;
                }
                if (warm_[id] > 0) {
                    warm_host = id;
                    break;
                }
                if (any_host == cluster::kNoServer) {
                    any_host = id;
                }
            }
            if (warm_host == cluster::kNoServer &&
                any_host == cluster::kNoServer) {
                if (provisioning_ == 0) {
                    provision_server([this](cluster::ServerId id) {
                        warm_up_server(id);
                        dispatch();
                    });
                }
                return;
            }
            queue_.pop_front();
            const bool from_pool = warm_host != cluster::kNoServer;
            const cluster::ServerId host =
                from_pool ? warm_host : any_host;
            if (from_pool) {
                warm_[host] -= 1;
            }
            run_task(next, host, from_pool);
        }
    }

    void
    run_task(const QueuedTask& queued, cluster::ServerId host_id,
             bool from_pool)
    {
        cluster_.find(host_id)->commit(queued.session->resources);
        record_commit(queued.session->resources.gpus);
        busy_servers_[host_id] += 1;
        const sim::Time setup =
            from_pool ? config_.timings.prewarm_assign
                      : sample(config_.timings.cold_start_min,
                               config_.timings.cold_start_max);
        const std::size_t index = queued.outcome_index;
        const workload::SessionSpec* session = queued.session;
        const workload::CellTask* task = queued.task;
        simulation_.schedule_after(setup, [this, index, session, task,
                                           host_id] {
            // The warming-up operation: download model + dataset (§5.3.3:
            // this is what stretches LCP's TCT).
            load_artifacts(*session, [this, index, session, task, host_id] {
                TaskOutcome& outcome = results_.tasks[index];
                outcome.exec_start = simulation_.now();
                outcome.trace.execution_started = outcome.exec_start;
                simulation_.schedule_after(
                    task->duration, [this, index, session, host_id] {
                        TaskOutcome& done = results_.tasks[index];
                        done.exec_end = simulation_.now();
                        done.trace.execution_finished = done.exec_end;
                        writeback_model(*session, [this, index, session,
                                                   host_id] {
                            TaskOutcome& finished = results_.tasks[index];
                            finished.reply = simulation_.now();
                            finished.trace.replica_replied = finished.reply;
                            finished.trace.client_replied = finished.reply;
                            record_release(session->resources.gpus);
                            if (cluster::GpuServer* server =
                                    cluster_.find(host_id)) {
                                server->release(session->resources);
                            }
                            busy_servers_[host_id] -= 1;
                            last_activity_[host_id] = simulation_.now();
                            // The container returns to the pool rather
                            // than terminating.
                            warm_[host_id] += 1;
                            dispatch();
                        });
                    });
            });
        });
    }

    void
    schedule_reaper()
    {
        simulation_.schedule_after(config_.lcp_idle_release, [this] {
            std::vector<cluster::ServerId> victims;
            for (const auto& [id, server] : cluster_.servers()) {
                if (cluster_.size() - victims.size() <= 1) {
                    break;
                }
                const bool busy = busy_servers_[id] > 0;
                const sim::Time last = last_activity_.count(id) > 0
                                           ? last_activity_[id]
                                           : 0;
                if (!busy && simulation_.now() - last >=
                                 config_.lcp_idle_release) {
                    victims.push_back(id);
                }
            }
            for (const cluster::ServerId id : victims) {
                remove_server(id);
                warm_.erase(id);
                busy_servers_.erase(id);
                last_activity_.erase(id);
            }
            schedule_reaper();
        });
    }

    std::deque<QueuedTask> queue_;
    std::map<cluster::ServerId, std::int32_t> warm_;
    std::map<cluster::ServerId, int> busy_servers_;
    std::map<cluster::ServerId, sim::Time> last_activity_;
};

}  // namespace

ExperimentResults
run_reservation(const workload::Trace& trace, const BaselineConfig& config,
                std::uint64_t seed)
{
    ReservationEngine engine(Policy::kReservation, trace, config, seed);
    return engine.run();
}

ExperimentResults
run_batch(const workload::Trace& trace, const BaselineConfig& config,
          std::uint64_t seed)
{
    BatchEngine engine(Policy::kBatch, trace, config, seed);
    return engine.run();
}

ExperimentResults
run_lcp(const workload::Trace& trace, const BaselineConfig& config,
        std::uint64_t seed)
{
    LcpEngine engine(Policy::kNotebookOSLCP, trace, config, seed);
    return engine.run();
}

}  // namespace nbos::core
