#include "core/engine.hpp"

#include <utility>

#include "core/baselines.hpp"
#include "core/fastsim.hpp"
#include "core/platform.hpp"
#include "core/protosim.hpp"

namespace nbos::core {
namespace {

/** Adapter registering a plain run function as a PolicyEngine. */
class FunctionEngine : public PolicyEngine
{
  public:
    using RunFn = std::function<ExperimentResults(
        const workload::Trace&, const PlatformConfig&)>;

    FunctionEngine(std::string name, Policy policy, RunFn fn)
        : name_(std::move(name)), policy_(policy), fn_(std::move(fn))
    {
    }

    std::string name() const override { return name_; }
    Policy policy() const override { return policy_; }

    ExperimentResults
    run(const workload::Trace& trace,
        const PlatformConfig& config) const override
    {
        return fn_(trace, config);
    }

  private:
    std::string name_;
    Policy policy_;
    RunFn fn_;
};

EngineRegistry::Factory
function_factory(const char* name, Policy policy, FunctionEngine::RunFn fn)
{
    return [name, policy, fn = std::move(fn)] {
        return std::make_unique<FunctionEngine>(name, policy, fn);
    };
}

/** Register the five built-in engines of §5.1.1. */
void
register_builtins(EngineRegistry& registry)
{
    registry.register_engine(
        kEngineReservation,
        function_factory(kEngineReservation, Policy::kReservation,
                         [](const workload::Trace& trace,
                            const PlatformConfig& config) {
                             return run_reservation(trace, config.baseline,
                                                    config.seed);
                         }));
    registry.register_engine(
        kEngineBatch,
        function_factory(kEngineBatch, Policy::kBatch,
                         [](const workload::Trace& trace,
                            const PlatformConfig& config) {
                             return run_batch(trace, config.baseline,
                                              config.seed);
                         }));
    registry.register_engine(
        kEngineLcp,
        function_factory(kEngineLcp, Policy::kNotebookOSLCP,
                         [](const workload::Trace& trace,
                            const PlatformConfig& config) {
                             return run_lcp(trace, config.baseline,
                                            config.seed);
                         }));
    registry.register_engine(
        kEnginePrototype,
        function_factory(kEnginePrototype, Policy::kNotebookOS,
                         run_prototype_notebookos));
    registry.register_engine(
        kEngineFast,
        function_factory(kEngineFast, Policy::kNotebookOS,
                         run_fast_notebookos));
}

}  // namespace

EngineRegistry&
EngineRegistry::instance()
{
    static EngineRegistry* registry = [] {
        auto* r = new EngineRegistry();
        register_builtins(*r);
        return r;
    }();
    return *registry;
}

bool
EngineRegistry::register_engine(const std::string& name, Factory factory)
{
    if (name.empty() || !factory) {
        return false;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<PolicyEngine>
EngineRegistry::create(const std::string& name) const
{
    Factory factory;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = factories_.find(name);
        if (it == factories_.end()) {
            return nullptr;
        }
        factory = it->second;
    }
    return factory();
}

bool
EngineRegistry::contains(const std::string& name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) > 0;
}

std::vector<std::string>
EngineRegistry::names() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) {
        out.push_back(name);
    }
    return out;
}

const char*
engine_name(Policy policy, bool fast_mode)
{
    switch (policy) {
      case Policy::kReservation:
        return kEngineReservation;
      case Policy::kBatch:
        return kEngineBatch;
      case Policy::kNotebookOSLCP:
        return kEngineLcp;
      case Policy::kNotebookOS:
        return fast_mode ? kEngineFast : kEnginePrototype;
    }
    return kEnginePrototype;
}

std::string
validate_config(const PlatformConfig& config)
{
    if (config.fast_mode && config.policy != Policy::kNotebookOS) {
        return std::string("fast_mode is only supported by the ") +
               to_string(Policy::kNotebookOS) + " policy; '" +
               to_string(config.policy) + "' has no fast engine";
    }
    if (config.sample_interval <= 0) {
        return "sample_interval must be positive";
    }
    if (config.scheduler.shards < 1) {
        return "scheduler.shards must be >= 1";
    }
    if (config.scheduler.chaos.enabled && config.fast_mode) {
        return "chaos requires the discrete-event prototype engine; the "
               "fast analytic engine has no network or replicas to break";
    }
    return {};
}

}  // namespace nbos::core
