/**
 * @file
 * The pluggable policy-engine API. Every experiment engine — the three
 * §5.1.1 baselines and both NotebookOS engines — implements PolicyEngine
 * and is resolved by name through the process-wide EngineRegistry, so new
 * engines can be added (and swept by the ExperimentRunner) without
 * touching core::Platform or the bench binaries.
 */
#ifndef NBOS_CORE_ENGINE_HPP
#define NBOS_CORE_ENGINE_HPP

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/results.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

/** Abstract experiment engine: executes one trace under one policy. */
class PolicyEngine
{
  public:
    virtual ~PolicyEngine() = default;

    /** Registry name of this engine (e.g. "notebookos-fast"). */
    virtual std::string name() const = 0;

    /** The §5 policy whose results this engine produces. */
    virtual Policy policy() const = 0;

    /**
     * Execute @p trace under @p config and return the full metric set.
     *
     * Implementations must be deterministic for a fixed (trace, config)
     * pair and must not touch shared mutable state: the ExperimentRunner
     * executes engine runs concurrently, one engine instance per spec.
     */
    virtual ExperimentResults run(const workload::Trace& trace,
                                  const PlatformConfig& config) const = 0;
};

/**
 * Thread-safe name -> factory registry of policy engines.
 *
 * The process-wide instance() comes pre-populated with the built-in
 * engines; callers register additional engines at startup and resolve
 * them by name (see examples/policy_sweep.cpp for a custom engine).
 */
class EngineRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PolicyEngine>()>;

    /** The process-wide registry, pre-populated with the built-ins. */
    static EngineRegistry& instance();

    /** Register @p factory under @p name.
     *  @return false (and leave the registry unchanged) when @p name is
     *          already taken or @p factory is empty. */
    bool register_engine(const std::string& name, Factory factory);

    /** Instantiate engine @p name, or nullptr when unknown. */
    std::unique_ptr<PolicyEngine> create(const std::string& name) const;

    bool contains(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/** Names of the five built-in engines (always registered). */
inline constexpr const char* kEngineReservation = "reservation";
inline constexpr const char* kEngineBatch = "batch";
inline constexpr const char* kEngineLcp = "notebookos-lcp";
inline constexpr const char* kEnginePrototype = "notebookos";
inline constexpr const char* kEngineFast = "notebookos-fast";

/** Registry name of the built-in engine for (policy, fast_mode). */
const char* engine_name(Policy policy, bool fast_mode = false);

/** Validate @p config for Platform::run.
 *  @return an empty string when valid, else a human-readable error
 *          (e.g. fast_mode combined with a baseline policy). */
std::string validate_config(const PlatformConfig& config);

}  // namespace nbos::core

#endif  // NBOS_CORE_ENGINE_HPP
