/**
 * @file
 * The unified engine-run API: one request struct and one function in
 * front of every way this codebase can execute a workload.
 *
 * Four entry points grew up side by side — core::Platform (policy facade),
 * the ExperimentRunner's per-spec path (registry engines by name),
 * run_prototype_streamed, and run_fast_streamed — each with its own
 * argument conventions for seeds, routing, sharding, and chaos. RunRequest
 * subsumes all four: name an engine (or let the config's policy pick one),
 * hand it a materialized trace or a streamed SessionSource, and core::run
 * dispatches to the right driver. The legacy entry points remain as thin
 * adapters over this function (byte-identical results, pinned by
 * determinism_test), so existing call sites keep working unchanged.
 *
 * Example — the four legacy shapes, unified:
 *
 *   core::RunRequest request;
 *   request.config = config;
 *   request.trace = &trace;                 // Platform(config).run(trace)
 *
 *   request.engine = core::kEngineFast;     // ExperimentSpec{engine, ...}
 *   request.seed = 42;
 *
 *   request.trace = nullptr;                // run_fast_streamed(src, cfg)
 *   request.source = &source;
 *
 *   request.engine.clear();                 // run_prototype_streamed(...)
 *   request.config.fast_mode = false;
 *
 *   core::RunResponse response = core::run(request);
 */
#ifndef NBOS_CORE_ENGINE_API_HPP
#define NBOS_CORE_ENGINE_API_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/config.hpp"
#include "core/engine.hpp"
#include "core/platform.hpp"
#include "core/results.hpp"
#include "sched/routing.hpp"
#include "workload/session_source.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** How core::run drives the engine. */
enum class RunMode
{
    /** Streamed when a SessionSource is given, else materialized. */
    kAuto,
    /** Materialize the whole trace up front (registry engine path). */
    kMaterialized,
    /** Windowed streamed injection; requires @ref RunRequest::source and
     *  a NotebookOS engine (prototype or fast). */
    kStreamed,
};

/**
 * Everything one engine run needs. Exactly one of @ref trace / @ref source
 * must be set; neither is owned and both must outlive the run() call.
 *
 * The optional override fields exist so sweep drivers can vary one knob
 * per run without copying and editing nested config structs — when set,
 * they are applied onto a copy of @ref config before anything else.
 */
struct RunRequest
{
    /** EngineRegistry name ("reservation", "notebookos-fast", ...).
     *  Empty derives the built-in engine from the config's
     *  (policy, fast_mode) pair, exactly like core::Platform. */
    std::string engine;

    /** Engine knobs. When @ref engine is named, its policy/fast_mode are
     *  overridden from the engine, exactly like the ExperimentRunner. */
    PlatformConfig config{};

    /** Materialized input (RunMode::kMaterialized / kAuto). */
    const workload::Trace* trace = nullptr;

    /** Streamed input (RunMode::kStreamed / kAuto). */
    workload::SessionSource* source = nullptr;

    RunMode mode = RunMode::kAuto;

    /** @name Per-run config overrides (applied first when set) */
    ///@{
    std::optional<std::uint64_t> seed;                  ///< config.seed
    std::optional<std::int32_t> shards;                 ///< scheduler.shards
    std::optional<sched::RoutingPolicyKind> routing;    ///< scheduler.routing
    std::optional<chaos::ChaosConfig> chaos;            ///< scheduler.chaos
    ///@}
};

/**
 * Results of one core::run. The telemetry block mirrors StreamedFastRun
 * and is populated only by the streamed fast engine; other drivers leave
 * it zero/empty.
 */
struct RunResponse
{
    ExperimentResults results;
    /** Simulation events executed across every shard (streamed fast). */
    std::uint64_t events_executed = 0;
    /** Per-shard simulation events, in shard order (streamed fast). */
    std::vector<std::uint64_t> shard_events;
    /** Wall seconds advancing each shard's loop (streamed fast). */
    std::vector<double> shard_busy_seconds;
    /** Whole sessions moved across shards (`rebalance` only). */
    std::uint64_t sessions_rebalanced = 0;
};

/**
 * Execute @p request and return the full metric set.
 *
 * Deterministic for a fixed request (same bits as the legacy entry point
 * it dispatches to). Thread-safe in the ExperimentRunner sense: every run
 * builds its own engine world.
 *
 * @throws std::invalid_argument when the request is inconsistent: both or
 *         neither of trace/source set, a mode without its input kind, an
 *         unknown engine name, a non-NotebookOS engine in streamed mode,
 *         or a config rejected by validate_config ("PlatformConfig: ..."),
 *         matching Platform::run's message byte for byte.
 */
RunResponse run(const RunRequest& request);

}  // namespace nbos::core

#endif  // NBOS_CORE_ENGINE_API_HPP
