/**
 * @file
 * The NotebookOS platform facade: run a workload trace under any of the
 * §5.1.1 policies and collect the paper's metrics.
 *
 * Two NotebookOS engines are provided, mirroring the paper's methodology:
 *  - the *prototype* engine drives the full stack (Raft-replicated
 *    kernels, executor elections, Global/Local schedulers) and is used
 *    for the 17.5-hour excerpt experiments (§5.2);
 *  - the *fast* engine is the detailed analytic simulator used for the
 *    90-day studies (§5.5), modelling the same scheduling decisions
 *    without per-message consensus traffic.
 */
#ifndef NBOS_CORE_PLATFORM_HPP
#define NBOS_CORE_PLATFORM_HPP

#include "core/baselines.hpp"
#include "core/results.hpp"
#include "sched/global_scheduler.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** Platform-level configuration. */
struct PlatformConfig
{
    Policy policy = Policy::kNotebookOS;
    /** Use the fast analytic engine for NotebookOS (90-day studies). */
    bool fast_mode = false;
    /** Scheduler configuration (NotebookOS policies). */
    sched::SchedulerConfig scheduler{};
    /** Baseline engine configuration. */
    BaselineConfig baseline{};
    /** Sampling period for timeline series. */
    sim::Time sample_interval = 60 * sim::kSecond;
    std::uint64_t seed = 1;

    /** Defaults tuned for long prototype runs (Raft heartbeats at 1 s so
     *  a 17.5-hour cluster-scale run stays tractable; commit latency is
     *  unaffected because replication is proposal-driven). */
    static PlatformConfig prototype_defaults();
};

/**
 * Backward-compatible facade over the EngineRegistry: maps the
 * configured (policy, fast_mode) pair to a registered PolicyEngine and
 * runs it. New code — and anything sweeping several engines, traces, or
 * seeds — should prefer the ExperimentRunner (core/runner.hpp), which
 * executes registry engines concurrently.
 */
class Platform
{
  public:
    explicit Platform(PlatformConfig config);

    /** Execute @p trace under the configured policy.
     *  @throws std::invalid_argument when the config is inconsistent
     *          (see validate_config in core/engine.hpp), e.g. fast_mode
     *          requested for a baseline policy that has no fast engine. */
    ExperimentResults run(const workload::Trace& trace);

    const PlatformConfig& config() const { return config_; }

  private:
    PlatformConfig config_;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_PLATFORM_HPP
