#include "core/platform.hpp"

#include <stdexcept>

#include "core/engine.hpp"

namespace nbos::core {

PlatformConfig
PlatformConfig::prototype_defaults()
{
    PlatformConfig config;
    config.scheduler.kernel.raft.heartbeat_interval = 1 * sim::kSecond;
    config.scheduler.kernel.raft.election_timeout_min = 2 * sim::kSecond;
    config.scheduler.kernel.raft.election_timeout_max = 4 * sim::kSecond;
    config.scheduler.kernel.raft.snapshot_threshold = 16;
    config.scheduler.kernel.proposal_retry = 200 * sim::kMillisecond;
    config.scheduler.initial_servers = 4;
    return config;
}

Platform::Platform(PlatformConfig config) : config_(std::move(config))
{
}

ExperimentResults
Platform::run(const workload::Trace& trace)
{
    const std::string error = validate_config(config_);
    if (!error.empty()) {
        throw std::invalid_argument("PlatformConfig: " + error);
    }
    const auto engine = EngineRegistry::instance().create(
        engine_name(config_.policy, config_.fast_mode));
    return engine->run(trace, config_);
}

}  // namespace nbos::core
