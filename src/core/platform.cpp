#include "core/platform.hpp"

#include "core/engine_api.hpp"

namespace nbos::core {

PlatformConfig
PlatformConfig::prototype_defaults()
{
    PlatformConfig config;
    config.scheduler.kernel.raft.heartbeat_interval = 1 * sim::kSecond;
    config.scheduler.kernel.raft.election_timeout_min = 2 * sim::kSecond;
    config.scheduler.kernel.raft.election_timeout_max = 4 * sim::kSecond;
    config.scheduler.kernel.raft.snapshot_threshold = 16;
    config.scheduler.kernel.proposal_retry = 200 * sim::kMillisecond;
    config.scheduler.initial_servers = 4;
    return config;
}

Platform::Platform(PlatformConfig config) : config_(std::move(config))
{
}

ExperimentResults
Platform::run(const workload::Trace& trace)
{
    // Thin adapter over the unified run API: an empty engine name makes
    // core::run derive the built-in engine from (policy, fast_mode) and
    // validate first, which is this facade's historical contract.
    RunRequest request;
    request.config = config_;
    request.trace = &trace;
    request.mode = RunMode::kMaterialized;
    return core::run(request).results;
}

}  // namespace nbos::core
