/**
 * @file
 * SeedSweep: fan an ExperimentSpec out over N seeds on the
 * ExperimentRunner thread pool and fold the per-seed results into
 * mean ± ci95 summaries of the canonical scalar metrics.
 *
 * Each seed is one independent engine run, so an N-seed sweep finishes in
 * the wall-clock time of its slowest seed. The fold always walks results
 * in seed order (the runner returns outcomes in spec order regardless of
 * completion order), so a sweep aggregate is bit-identical between serial
 * and thread-pool execution — `determinism_test` pins this.
 */
#ifndef NBOS_CORE_SEED_SWEEP_HPP
#define NBOS_CORE_SEED_SWEEP_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "metrics/stats.hpp"

namespace nbos::core {

/** One named scalar metric extracted from an ExperimentResults. */
struct MetricValue
{
    const char* name = "";
    double value = 0.0;
};

/**
 * The canonical per-run scalars a sweep folds, in a fixed order (GPU
 * hours, latency percentiles, task/scheduler counters, store traffic).
 * Metrics an engine does not produce (e.g. sync latency on baselines)
 * come back as 0 — constant across seeds, so their CI is 0 too.
 */
std::vector<MetricValue> sweep_metrics(const ExperimentResults& results);

/** Consecutive seeds {first, first+1, ..., first+count-1}. */
std::vector<std::uint64_t> seed_range(std::uint64_t first,
                                      std::size_t count);

/** One sweep: a base spec fanned out over @ref seeds. base.seed is
 *  ignored — every run's seed comes from the seeds list. */
struct SweepSpec
{
    ExperimentSpec base;
    std::vector<std::uint64_t> seeds;
};

/** Summary of one metric across the sweep's seeds. */
struct MetricSummary
{
    std::string name;
    metrics::Summary summary;
};

/** Per-metric statistics of one sweep, folded in seed order. */
struct SweepAggregate
{
    std::string engine;
    std::string label;
    std::vector<std::uint64_t> seeds;
    /** One entry per sweep_metrics() metric, in that fixed order. */
    std::vector<MetricSummary> metrics;
};

/** Outcome of one SweepSpec: aggregate + per-seed results on success. */
struct SweepOutcome
{
    std::size_t index = 0;  ///< Position in the submitted batch.
    bool ok = false;
    /** First failing seed's error when !ok. */
    std::string error;
    SweepAggregate aggregate;
    /** Full per-seed results, in seeds order. */
    std::vector<ExperimentResults> per_seed;
};

/**
 * Fold per-seed results (already in seeds order) into a SweepAggregate.
 * Exposed separately so tests can pin fold behaviour without running
 * engines.
 */
SweepAggregate
fold_sweep(std::string engine, std::string label,
           std::vector<std::uint64_t> seeds,
           const std::vector<ExperimentResults>& per_seed);

/** Executes seed sweeps concurrently on an ExperimentRunner. */
class SeedSweep
{
  public:
    /** @param threads runner worker count; 0 picks hardware concurrency. */
    explicit SeedSweep(std::size_t threads = 0) : runner_(threads) {}

    /**
     * Execute every (sweep, seed) pair in one runner batch and block
     * until all are done.
     * @return one outcome per sweep, in sweep order. A sweep with no
     *         seeds, or any failing seed run, reports ok=false.
     */
    std::vector<SweepOutcome>
    run(const std::vector<SweepSpec>& sweeps) const;

    const ExperimentRunner& runner() const { return runner_; }

  private:
    ExperimentRunner runner_;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_SEED_SWEEP_HPP
