#include "core/seed_sweep.hpp"

#include <utility>

namespace nbos::core {

std::vector<MetricValue>
sweep_metrics(const ExperimentResults& results)
{
    const auto delays = results.interactivity_delays_seconds();
    const auto tct = results.tct_ms();
    const std::size_t aborted = results.aborted_count();
    return {
        {"gpu_hours_provisioned", results.gpu_hours_provisioned()},
        {"gpu_hours_committed", results.gpu_hours_committed()},
        {"interactivity_p50_s", delays.percentile(50.0)},
        {"interactivity_p99_s", delays.percentile(99.0)},
        {"tct_p50_ms", tct.percentile(50.0)},
        {"tct_p99_ms", tct.percentile(99.0)},
        {"sync_p50_ms", results.sync_ms.percentile(50.0)},
        {"tasks_completed",
         static_cast<double>(results.tasks.size() - aborted)},
        {"tasks_aborted", static_cast<double>(aborted)},
        {"migrations",
         static_cast<double>(results.sched_stats.migrations)},
        {"scale_outs",
         static_cast<double>(results.sched_stats.scale_outs)},
        {"store_mb_written",
         static_cast<double>(results.store_bytes_written) /
             (1024.0 * 1024.0)},
    };
}

std::vector<std::uint64_t>
seed_range(std::uint64_t first, std::size_t count)
{
    std::vector<std::uint64_t> seeds;
    seeds.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        seeds.push_back(first + i);
    }
    return seeds;
}

SweepAggregate
fold_sweep(std::string engine, std::string label,
           std::vector<std::uint64_t> seeds,
           const std::vector<ExperimentResults>& per_seed)
{
    SweepAggregate aggregate;
    aggregate.engine = std::move(engine);
    aggregate.label = std::move(label);
    aggregate.seeds = std::move(seeds);
    std::vector<metrics::RunStats> stats;
    // Deterministic fold: walk results in seed order, so the aggregate is
    // bit-identical no matter how the runner interleaved the runs.
    for (const ExperimentResults& results : per_seed) {
        const std::vector<MetricValue> values = sweep_metrics(results);
        if (stats.empty()) {
            stats.resize(values.size());
            aggregate.metrics.resize(values.size());
            for (std::size_t m = 0; m < values.size(); ++m) {
                aggregate.metrics[m].name = values[m].name;
            }
        }
        for (std::size_t m = 0; m < values.size(); ++m) {
            stats[m].add(values[m].value);
        }
    }
    for (std::size_t m = 0; m < stats.size(); ++m) {
        aggregate.metrics[m].summary = stats[m].summary();
    }
    return aggregate;
}

std::vector<SweepOutcome>
SeedSweep::run(const std::vector<SweepSpec>& sweeps) const
{
    // Flatten every (sweep, seed) pair into one runner batch so seeds of
    // different sweeps share the thread pool.
    std::vector<ExperimentSpec> specs;
    for (const SweepSpec& sweep : sweeps) {
        for (const std::uint64_t seed : sweep.seeds) {
            ExperimentSpec spec = sweep.base;
            spec.seed = seed;
            specs.push_back(std::move(spec));
        }
    }
    std::vector<ExperimentOutcome> outcomes = runner_.run(specs);

    std::vector<SweepOutcome> results(sweeps.size());
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        const SweepSpec& sweep = sweeps[i];
        SweepOutcome& result = results[i];
        result.index = i;
        if (sweep.seeds.empty()) {
            result.error = "sweep has no seeds";
            continue;
        }
        result.ok = true;
        result.per_seed.reserve(sweep.seeds.size());
        for (const std::uint64_t seed : sweep.seeds) {
            ExperimentOutcome& outcome = outcomes[cursor++];
            if (!outcome.ok && result.ok) {
                result.ok = false;
                result.error = "seed " + std::to_string(seed) + ": " +
                               outcome.error;
            }
            result.per_seed.push_back(std::move(outcome.results));
        }
        if (!result.ok) {
            result.per_seed.clear();
            continue;
        }
        const std::string& label = sweep.base.label.empty()
                                       ? sweep.base.engine
                                       : sweep.base.label;
        result.aggregate = fold_sweep(sweep.base.engine, label,
                                      sweep.seeds, result.per_seed);
    }
    return results;
}

}  // namespace nbos::core
