/**
 * @file
 * Public entry point of the fast analytic NotebookOS engine
 * (fastsim.cpp): the detailed simulator used for the 90-day studies
 * (§5.5). It models the same scheduling decisions as the prototype
 * engine but samples consensus latency instead of exchanging
 * per-message Raft traffic, so a 90-day trace runs in seconds.
 */
#ifndef NBOS_CORE_FASTSIM_HPP
#define NBOS_CORE_FASTSIM_HPP

#include "core/results.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

/** Run @p trace through the fast analytic engine under @p config.
 *  Same-seed runs are bit-identical (see tests/determinism_test.cpp). */
ExperimentResults run_fast_notebookos(const workload::Trace& trace,
                                      const PlatformConfig& config);

}  // namespace nbos::core

#endif  // NBOS_CORE_FASTSIM_HPP
