#include "core/engine_api.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/engine.hpp"
#include "core/protosim.hpp"
#include "core/sharded_fastsim.hpp"

namespace nbos::core {
namespace {

/** Throw the exact message Platform::run has always thrown. */
void
validate_or_throw(const PlatformConfig& config)
{
    const std::string error = validate_config(config);
    if (!error.empty()) {
        throw std::invalid_argument("PlatformConfig: " + error);
    }
}

}  // namespace

RunResponse
run(const RunRequest& request)
{
    if ((request.trace != nullptr) == (request.source != nullptr)) {
        throw std::invalid_argument(
            "RunRequest: set exactly one of trace and source");
    }

    PlatformConfig config = request.config;
    if (request.seed) {
        config.seed = *request.seed;
    }
    if (request.shards) {
        config.scheduler.shards = *request.shards;
    }
    if (request.routing) {
        config.scheduler.routing = *request.routing;
    }
    if (request.chaos) {
        config.scheduler.chaos = *request.chaos;
    }

    RunMode mode = request.mode;
    if (mode == RunMode::kAuto) {
        mode = request.source != nullptr ? RunMode::kStreamed
                                         : RunMode::kMaterialized;
    }
    if (mode == RunMode::kStreamed && request.source == nullptr) {
        throw std::invalid_argument(
            "RunRequest: streamed mode requires a SessionSource");
    }
    if (mode == RunMode::kMaterialized && request.trace == nullptr) {
        throw std::invalid_argument(
            "RunRequest: materialized mode requires a trace");
    }

    // Resolve the engine. An empty name reproduces Platform::run exactly:
    // validate the caller's (policy, fast_mode) pair as-is — so an
    // inconsistent pair still surfaces as "PlatformConfig: fast_mode is
    // only supported..." — then derive the built-in name from it. A named
    // engine reproduces the ExperimentRunner: resolve first (unknown name
    // beats config problems), then force policy/fast_mode from the engine
    // before validating.
    std::string name = request.engine;
    std::unique_ptr<PolicyEngine> engine;
    if (name.empty()) {
        validate_or_throw(config);
        name = engine_name(config.policy, config.fast_mode);
        engine = EngineRegistry::instance().create(name);
    } else {
        engine = EngineRegistry::instance().create(name);
        if (engine == nullptr) {
            throw std::invalid_argument("unknown engine '" + name + "'");
        }
        config.policy = engine->policy();
        config.fast_mode = name == kEngineFast;
        validate_or_throw(config);
    }

    RunResponse response;
    if (mode == RunMode::kStreamed) {
        // Only the two NotebookOS engines have windowed streamed drivers.
        if (name == kEngineFast) {
            StreamedFastRun streamed =
                run_fast_streamed(*request.source, config);
            response.results = std::move(streamed.results);
            response.events_executed = streamed.events_executed;
            response.shard_events = std::move(streamed.shard_events);
            response.shard_busy_seconds =
                std::move(streamed.shard_busy_seconds);
            response.sessions_rebalanced = streamed.sessions_rebalanced;
        } else if (name == kEnginePrototype) {
            response.results =
                run_prototype_streamed(*request.source, config);
        } else {
            throw std::invalid_argument("engine '" + name +
                                        "' has no streamed driver");
        }
        return response;
    }

    response.results = engine->run(*request.trace, config);
    return response;
}

}  // namespace nbos::core
