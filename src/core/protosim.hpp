/**
 * @file
 * Public entry point of the discrete-event prototype NotebookOS engine
 * (protosim.cpp): drives the full stack — Raft-replicated kernels,
 * executor elections, Global/Local schedulers — and is used for the
 * 17.5-hour excerpt experiments (§5.2). The analytic counterpart for
 * 90-day studies lives in fastsim.hpp.
 */
#ifndef NBOS_CORE_PROTOSIM_HPP
#define NBOS_CORE_PROTOSIM_HPP

#include "core/results.hpp"
#include "workload/session_source.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

/** Run @p trace through the prototype engine under @p config.
 *  Same-seed runs are bit-identical (see tests/determinism_test.cpp). */
ExperimentResults run_prototype_notebookos(const workload::Trace& trace,
                                           const PlatformConfig& config);

/**
 * Run a streamed injection @p source through the prototype engine's
 * windowed sharded driver without ever materializing the trace: sessions
 * are pulled as the lockstep clock reaches their start window, their
 * events enter a globally ordered injection heap, and each session's
 * specs are freed once its last trace event has executed — so memory
 * tracks the *live* session population, not the trace length.
 *
 * Sessions are admitted through the configured routing policy on the
 * same window grid as the routed driver; with a
 * workload::TraceSessionSource over a materialized trace, results are
 * bit-identical to run_prototype_notebookos for the `least_loaded` and
 * `rebalance` policies (pinned by determinism_test). `static_hash` also
 * runs (admission degenerates to the stable hash), but through this
 * windowed driver rather than the pre-scheduled static one.
 *
 * @throws std::invalid_argument when @p source violates its nondecreasing
 *         (start_time, id) contract or repeats a session id.
 */
ExperimentResults run_prototype_streamed(workload::SessionSource& source,
                                         const PlatformConfig& config);

}  // namespace nbos::core

#endif  // NBOS_CORE_PROTOSIM_HPP
