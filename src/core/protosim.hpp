/**
 * @file
 * Public entry point of the discrete-event prototype NotebookOS engine
 * (protosim.cpp): drives the full stack — Raft-replicated kernels,
 * executor elections, Global/Local schedulers — and is used for the
 * 17.5-hour excerpt experiments (§5.2). The analytic counterpart for
 * 90-day studies lives in fastsim.hpp.
 */
#ifndef NBOS_CORE_PROTOSIM_HPP
#define NBOS_CORE_PROTOSIM_HPP

#include "core/results.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

/** Run @p trace through the prototype engine under @p config.
 *  Same-seed runs are bit-identical (see tests/determinism_test.cpp). */
ExperimentResults run_prototype_notebookos(const workload::Trace& trace,
                                           const PlatformConfig& config);

}  // namespace nbos::core

#endif  // NBOS_CORE_PROTOSIM_HPP
