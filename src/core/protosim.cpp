#include "core/protosim.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "core/platform.hpp"
#include "sched/global_scheduler.hpp"
#include "sched/sharded_scheduler.hpp"
#include "sim/simulation.hpp"

namespace nbos::core {

namespace {

/** Shared tail of both engine variants: tasks that never saw a reply are
 *  aborted, and the committed-GPU step series is rebuilt from the
 *  completed GPU tasks' execution intervals. */
void
finalize_committed_series(ExperimentResults& results)
{
    std::vector<std::pair<sim::Time, double>> committed;
    for (TaskOutcome& task : results.tasks) {
        if (task.reply == 0) {
            task.aborted = true;
        }
        if (task.is_gpu && !task.aborted) {
            committed.emplace_back(task.exec_start,
                                   static_cast<double>(task.gpus));
            committed.emplace_back(task.exec_end,
                                   -static_cast<double>(task.gpus));
        }
    }
    results.committed_gpus = series_from_deltas(std::move(committed));
}

/** The pre-sharding single-event-loop engine: one GlobalScheduler on one
 *  simulation. Kept verbatim so SchedulerConfig::shards == 1 stays
 *  byte-identical to the historical prototype results. */
ExperimentResults
run_prototype_monolithic(const workload::Trace& trace,
                         const PlatformConfig& config)
{
    sim::Simulation simulation;
    sched::GlobalScheduler scheduler(simulation, config.scheduler,
                                     config.seed);
    scheduler.start();

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace.name;
    results.makespan = trace.makespan;
    // One outcome per cell task; reserving up front keeps the submit path
    // free of reallocation (closures hold indices, not pointers, so growth
    // is safe either way — this is purely an allocation-churn trim).
    std::size_t total_tasks = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        total_tasks += session.tasks.size();
    }
    results.tasks.reserve(total_tasks);

    struct SessionState
    {
        cluster::KernelId kernel = cluster::kNoKernel;
        bool ready = false;
        bool ended = false;
        std::deque<const workload::CellTask*> buffered;
    };
    std::map<workload::SessionId, SessionState> sessions;

    auto submit_task = [&](const workload::SessionSpec& session,
                           const workload::CellTask& task) {
        results.tasks.push_back(TaskOutcome{});
        const std::size_t index = results.tasks.size() - 1;
        TaskOutcome& outcome = results.tasks[index];
        outcome.session = session.id;
        outcome.seq = task.seq;
        outcome.is_gpu = task.is_gpu;
        outcome.gpus = session.resources.gpus;
        outcome.submit = simulation.now();
        scheduler.submit_execute(
            sessions[session.id].kernel, task.code, task.is_gpu,
            simulation.now(),
            [&results, index](const kernel::ExecutionResult& result,
                              const sched::RequestTrace& request_trace) {
                TaskOutcome& done = results.tasks[index];
                done.trace = request_trace;
                done.exec_start = request_trace.execution_started;
                done.exec_end = request_trace.execution_finished;
                done.reply = request_trace.client_replied;
                done.migrated = request_trace.migrated;
                done.aborted =
                    request_trace.aborted ||
                    result.status == kernel::ExecutionStatus::kError;
                if (done.aborted) {
                    done.error = result.error;
                }
            });
    };

    for (const workload::SessionSpec& session : trace.sessions) {
        // Capture stable pointers into the trace (loop variables die at
        // iteration end; the closures outlive them).
        const workload::SessionSpec* sp = &session;
        simulation.schedule_at(session.start_time, [&sessions, &scheduler,
                                                    &submit_task, sp] {
            scheduler.start_kernel(
                sp->resources,
                [&sessions, &scheduler, &submit_task,
                 sp](cluster::KernelId kernel_id, bool ok) {
                    SessionState& st = sessions[sp->id];
                    st.kernel = kernel_id;
                    st.ready = ok;
                    if (st.ended) {
                        scheduler.stop_kernel(kernel_id);
                        return;
                    }
                    while (ok && !st.buffered.empty()) {
                        const workload::CellTask* task =
                            st.buffered.front();
                        st.buffered.pop_front();
                        submit_task(*sp, *task);
                    }
                });
        });
        if (session.end_time < trace.makespan) {
            simulation.schedule_at(session.end_time,
                                   [&sessions, &scheduler, sp] {
                                       SessionState& state = sessions[sp->id];
                                       state.ended = true;
                                       if (state.ready) {
                                           scheduler.stop_kernel(
                                               state.kernel);
                                       }
                                   });
        }
        for (const workload::CellTask& task : session.tasks) {
            const workload::CellTask* tp = &task;
            simulation.schedule_at(task.submit_time,
                                   [&sessions, &submit_task, sp, tp] {
                                       SessionState& state = sessions[sp->id];
                                       if (state.ended) {
                                           return;
                                       }
                                       if (state.ready) {
                                           submit_task(*sp, *tp);
                                       } else {
                                           state.buffered.push_back(tp);
                                       }
                                   });
        }
    }

    // Timeline sampler for provisioned GPUs and the subscription ratio.
    // Weak self-capture: the pending sample event owns the function, so
    // the sampler frees itself once the makespan is reached.
    auto sampler = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_sampler = sampler;
    *sampler = [&results, &scheduler, &simulation, &config, weak_sampler,
                &trace] {
        results.provisioned_gpus.record(
            simulation.now(),
            static_cast<double>(scheduler.cluster().total_gpus()));
        results.subscription_ratio.record(simulation.now(),
                                          scheduler.cluster_sr());
        if (simulation.now() < trace.makespan) {
            if (auto self = weak_sampler.lock()) {
                simulation.schedule_after(config.sample_interval,
                                          [self] { (*self)(); });
            }
        }
    };
    simulation.schedule_at(0, [sampler] { (*sampler)(); });

    // Run the trace plus a drain window for in-flight cells.
    simulation.run_until(trace.makespan + 12 * sim::kHour);

    // Collect platform-side metrics.
    results.events = scheduler.events();
    results.sched_stats = scheduler.stats();
    results.net_stats = scheduler.network_stats();
    results.sync_ms = scheduler.sync_latencies_ms();
    results.read_ms = scheduler.store().read_latencies();
    results.write_ms = scheduler.store().write_latencies();
    results.store_bytes_written = scheduler.store().bytes_written();
    finalize_committed_series(results);
    return results;
}

/**
 * The sharded engine: sessions are partitioned across
 * SchedulerConfig::shards independent scheduler shards by the stable
 * ShardRouter hash, each shard advances on its own event loop, and the
 * driver steps all shards in lockstep sample_interval windows so the
 * merged autoscaler signals (provisioned GPUs, subscription ratio) are
 * sampled fleet-wide at the same grid a monolithic run uses.
 *
 * All cross-shard merges are deterministic (shard-index order; tasks are
 * canonically ordered by (submit, session, seq)), and the lockstep
 * windows may run shard threads in parallel with bit-identical results —
 * see DeterminismTest.ShardedPrototypeParallelBitIdenticalToSerial.
 */
ExperimentResults
run_prototype_sharded(const workload::Trace& trace,
                      const PlatformConfig& config)
{
    sched::ShardedGlobalScheduler scheduler(config.scheduler, config.seed);
    scheduler.start();

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace.name;
    results.makespan = trace.makespan;

    struct SessionState
    {
        cluster::KernelId kernel = cluster::kNoKernel;
        bool ready = false;
        bool ended = false;
        std::deque<const workload::CellTask*> buffered;
    };

    /** Everything one shard's closures touch: its own outcome vector and
     *  session table. Shard event loops run on parallel threads, so a
     *  driver must only ever be used from its shard's simulation. */
    struct ShardDriver
    {
        std::vector<TaskOutcome> tasks;
        std::map<workload::SessionId, SessionState> sessions;
    };
    std::vector<ShardDriver> drivers(
        static_cast<std::size_t>(scheduler.shard_count()));

    // Stateless helper shared by the per-shard closures: every call
    // touches only the passed driver and that driver's shard.
    auto submit_task = [&scheduler](ShardDriver& driver,
                                    sim::Simulation& simulation,
                                    const workload::SessionSpec& session,
                                    const workload::CellTask& task) {
        driver.tasks.push_back(TaskOutcome{});
        const std::size_t index = driver.tasks.size() - 1;
        TaskOutcome& outcome = driver.tasks[index];
        outcome.session = session.id;
        outcome.seq = task.seq;
        outcome.is_gpu = task.is_gpu;
        outcome.gpus = session.resources.gpus;
        outcome.submit = simulation.now();
        scheduler.submit_execute(
            driver.sessions[session.id].kernel, task.code, task.is_gpu,
            simulation.now(),
            [&driver, index](const kernel::ExecutionResult& result,
                             const sched::RequestTrace& request_trace) {
                TaskOutcome& done = driver.tasks[index];
                done.trace = request_trace;
                done.exec_start = request_trace.execution_started;
                done.exec_end = request_trace.execution_finished;
                done.reply = request_trace.client_replied;
                done.migrated = request_trace.migrated;
                done.aborted =
                    request_trace.aborted ||
                    result.status == kernel::ExecutionStatus::kError;
                if (done.aborted) {
                    done.error = result.error;
                }
            });
    };

    std::size_t total_tasks = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        total_tasks += session.tasks.size();
        const std::size_t shard = scheduler.shard_of(session.id);
        ShardDriver& driver = drivers[shard];
        sim::Simulation& simulation = scheduler.simulation(shard);
        const workload::SessionSpec* sp = &session;
        simulation.schedule_at(
            session.start_time,
            [&scheduler, &driver, &submit_task, sp] {
                scheduler.start_kernel(
                    sp->id, sp->resources,
                    [&scheduler, &driver, &submit_task,
                     sp](cluster::KernelId kernel_id, bool ok) {
                        SessionState& st = driver.sessions[sp->id];
                        st.kernel = kernel_id;
                        st.ready = ok;
                        if (st.ended) {
                            scheduler.stop_kernel(kernel_id);
                            return;
                        }
                        while (ok && !st.buffered.empty()) {
                            const workload::CellTask* task =
                                st.buffered.front();
                            st.buffered.pop_front();
                            submit_task(driver,
                                        scheduler.simulation(
                                            scheduler.shard_of(sp->id)),
                                        *sp, *task);
                        }
                    });
            });
        if (session.end_time < trace.makespan) {
            simulation.schedule_at(session.end_time,
                                   [&scheduler, &driver, sp] {
                                       SessionState& state =
                                           driver.sessions[sp->id];
                                       state.ended = true;
                                       if (state.ready) {
                                           scheduler.stop_kernel(
                                               state.kernel);
                                       }
                                   });
        }
        for (const workload::CellTask& task : session.tasks) {
            const workload::CellTask* tp = &task;
            simulation.schedule_at(
                task.submit_time,
                [&scheduler, &driver, &submit_task, sp, tp] {
                    SessionState& state = driver.sessions[sp->id];
                    if (state.ended) {
                        return;
                    }
                    if (state.ready) {
                        submit_task(driver,
                                    scheduler.simulation(
                                        scheduler.shard_of(sp->id)),
                                    *sp, *tp);
                    } else {
                        state.buffered.push_back(tp);
                    }
                });
        }
    }

    // Lockstep windows on the sampling grid: advance every shard to t
    // (in parallel when configured), then sample the merged fleet-wide
    // autoscaler signals — the same 0, i, 2i, ... grid the monolithic
    // engine's sampler event produces.
    for (sim::Time t = 0;; t += config.sample_interval) {
        scheduler.run_until(t);
        results.provisioned_gpus.record(
            t, static_cast<double>(scheduler.total_gpus()));
        results.subscription_ratio.record(t, scheduler.cluster_sr());
        if (t >= trace.makespan) {
            break;
        }
    }
    // Drain window for in-flight cells.
    scheduler.run_until(trace.makespan + 12 * sim::kHour);

    // Deterministic cross-shard merge: concatenate in shard order, then
    // canonicalize to (submit, session, seq) — a total order because a
    // session's (session, seq) pairs are unique.
    results.tasks.reserve(total_tasks);
    for (ShardDriver& driver : drivers) {
        std::move(driver.tasks.begin(), driver.tasks.end(),
                  std::back_inserter(results.tasks));
    }
    std::stable_sort(results.tasks.begin(), results.tasks.end(),
                     [](const TaskOutcome& a, const TaskOutcome& b) {
                         if (a.submit != b.submit) {
                             return a.submit < b.submit;
                         }
                         if (a.session != b.session) {
                             return a.session < b.session;
                         }
                         return a.seq < b.seq;
                     });

    results.events = scheduler.events();
    results.sched_stats = scheduler.stats();
    results.net_stats = scheduler.network_stats();
    results.sync_ms = scheduler.sync_latencies_ms();
    results.read_ms = scheduler.store_read_ms();
    results.write_ms = scheduler.store_write_ms();
    results.store_bytes_written = scheduler.store_bytes_written();
    finalize_committed_series(results);
    return results;
}

/**
 * The routed sharded engine (`least_loaded` / `rebalance` policies):
 * sessions are admitted through the routing policy instead of the static
 * hash, shards own the session -> kernel bindings, and — under
 * `rebalance` — whole sessions migrate between shards at window
 * boundaries.
 *
 * Because a session's owner can change between windows, trace events are
 * not pre-scheduled into shard simulations up front. Instead the driver
 * keeps one globally sorted injection list and, at each window boundary,
 * injects the next window's events into the *current* owner's simulation
 * before advancing the lockstep clock. Migrations only happen on the
 * driving thread between windows, so every injected closure addresses a
 * shard that owns the session for that whole window.
 *
 * Determinism matches the static driver's: admission and the rebalance
 * plan are pure functions of shard-order-merged loads, injections are
 * processed in (time, session, kind) order, and the final task merge is
 * canonical — so parallel windows stay bit-identical to serial ones.
 */
ExperimentResults
run_prototype_routed(const workload::Trace& trace,
                     const PlatformConfig& config)
{
    sched::ShardedGlobalScheduler scheduler(config.scheduler, config.seed);
    scheduler.start();

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace.name;
    results.makespan = trace.makespan;

    // Pre-allocate one outcome slot per trace cell. Slots are written by
    // whichever shard owns the session at completion time (carried work
    // keeps its callback across migrations), so the vector must never
    // reallocate while windows run; cells the shards drop (submitted
    // after session end) leave their slot unsubmitted and are compacted
    // away below, mirroring the legacy drivers where such cells never
    // produce an outcome.
    std::size_t total_tasks = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        total_tasks += session.tasks.size();
    }
    results.tasks.resize(total_tasks);
    std::vector<char> submitted(total_tasks, 0);

    // One globally sorted injection list. Kind order at equal times
    // mirrors the static driver's per-session scheduling order (start,
    // end, then tasks), so a cell submitted exactly at its session's end
    // time is dropped in both engines.
    enum Kind : std::int32_t
    {
        kStart = 0,
        kEnd = 1,
        kTask = 2,
    };
    struct Injection
    {
        sim::Time time;
        const workload::SessionSpec* sp;
        std::int32_t kind;
        const workload::CellTask* task;
        std::size_t outcome;
    };
    std::vector<Injection> injections;
    injections.reserve(trace.sessions.size() * 2 + total_tasks);
    std::size_t outcome_index = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        const workload::SessionSpec* sp = &session;
        injections.push_back(
            Injection{session.start_time, sp, kStart, nullptr, 0});
        if (session.end_time < trace.makespan) {
            injections.push_back(
                Injection{session.end_time, sp, kEnd, nullptr, 0});
        }
        for (const workload::CellTask& task : session.tasks) {
            TaskOutcome& outcome = results.tasks[outcome_index];
            outcome.session = session.id;
            outcome.seq = task.seq;
            outcome.is_gpu = task.is_gpu;
            outcome.gpus = session.resources.gpus;
            injections.push_back(Injection{task.submit_time, sp, kTask,
                                           &task, outcome_index});
            ++outcome_index;
        }
    }
    std::stable_sort(injections.begin(), injections.end(),
                     [](const Injection& a, const Injection& b) {
                         if (a.time != b.time) {
                             return a.time < b.time;
                         }
                         if (a.sp->id != b.sp->id) {
                             return a.sp->id < b.sp->id;
                         }
                         return a.kind < b.kind;
                     });

    // Lockstep windows on the sampling grid: inject the window's events
    // into their owners, advance every shard to t (in parallel when
    // configured), sample the merged autoscaler signals, then let the
    // policy rebalance before the next window's events are routed.
    std::size_t cursor = 0;
    for (sim::Time t = 0;; t += config.sample_interval) {
        while (cursor < injections.size() &&
               injections[cursor].time <= t) {
            const Injection& inj = injections[cursor++];
            const std::size_t owner =
                inj.kind == kStart
                    ? scheduler.admit_session(inj.sp->id)
                    : scheduler.shard_of(inj.sp->id);
            sched::SchedulerShard* shard = &scheduler.shard(owner);
            sim::Simulation& simulation = scheduler.simulation(owner);
            const workload::SessionSpec* sp = inj.sp;
            switch (inj.kind) {
                case kStart:
                    simulation.schedule_at(inj.time, [shard, sp] {
                        shard->begin_session(sp->id, sp->resources);
                    });
                    break;
                case kEnd:
                    simulation.schedule_at(inj.time, [shard, sp] {
                        shard->end_session(sp->id);
                    });
                    break;
                case kTask: {
                    const workload::CellTask* tp = inj.task;
                    const std::size_t index = inj.outcome;
                    sim::Simulation* sim_ptr = &simulation;
                    simulation.schedule_at(
                        inj.time, [shard, sim_ptr, sp, tp, index,
                                   &results, &submitted] {
                            TaskOutcome& outcome = results.tasks[index];
                            outcome.submit = sim_ptr->now();
                            const bool accepted = shard->submit_session(
                                sp->id, tp->code, tp->is_gpu,
                                sim_ptr->now(),
                                [&results, index](
                                    const kernel::ExecutionResult& result,
                                    const sched::RequestTrace&
                                        request_trace) {
                                    TaskOutcome& done =
                                        results.tasks[index];
                                    done.trace = request_trace;
                                    done.exec_start =
                                        request_trace.execution_started;
                                    done.exec_end =
                                        request_trace.execution_finished;
                                    done.reply =
                                        request_trace.client_replied;
                                    done.migrated =
                                        request_trace.migrated;
                                    done.aborted =
                                        request_trace.aborted ||
                                        result.status ==
                                            kernel::ExecutionStatus::
                                                kError;
                                    if (done.aborted) {
                                        done.error = result.error;
                                    }
                                });
                            if (accepted) {
                                submitted[index] = 1;
                            }
                        });
                    break;
                }
                default:
                    break;
            }
        }
        scheduler.run_until(t);
        results.provisioned_gpus.record(
            t, static_cast<double>(scheduler.total_gpus()));
        results.subscription_ratio.record(t, scheduler.cluster_sr());
        if (t >= trace.makespan) {
            break;
        }
        scheduler.rebalance_window();
    }
    // Drain window for in-flight cells.
    scheduler.run_until(trace.makespan + 12 * sim::kHour);

    // Compact dropped cells, then canonicalize to (submit, session, seq)
    // exactly as the static sharded driver does.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < results.tasks.size(); ++i) {
        if (!submitted[i]) {
            continue;
        }
        if (kept != i) {
            results.tasks[kept] = std::move(results.tasks[i]);
        }
        ++kept;
    }
    results.tasks.resize(kept);
    std::stable_sort(results.tasks.begin(), results.tasks.end(),
                     [](const TaskOutcome& a, const TaskOutcome& b) {
                         if (a.submit != b.submit) {
                             return a.submit < b.submit;
                         }
                         if (a.session != b.session) {
                             return a.session < b.session;
                         }
                         return a.seq < b.seq;
                     });

    results.events = scheduler.events();
    results.sched_stats = scheduler.stats();
    results.net_stats = scheduler.network_stats();
    results.sync_ms = scheduler.sync_latencies_ms();
    results.read_ms = scheduler.store_read_ms();
    results.write_ms = scheduler.store_write_ms();
    results.store_bytes_written = scheduler.store_bytes_written();
    finalize_committed_series(results);
    return results;
}

}  // namespace

ExperimentResults
run_prototype_streamed(workload::SessionSource& source,
                       const PlatformConfig& config)
{
    if (config.scheduler.shards < 1) {
        throw std::invalid_argument("scheduler.shards must be >= 1");
    }
    sched::ShardedGlobalScheduler scheduler(config.scheduler, config.seed);
    scheduler.start();

    const sim::Time makespan = source.makespan();
    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = source.trace_name();
    results.makespan = makespan;

    // Outcome slots are appended as sessions stream in (always on the
    // driving thread, between windows). Closures hold &results plus an
    // index and dereference at run time, so growth-triggered reallocation
    // between windows is safe.
    std::vector<char> submitted;

    enum Kind : std::int32_t
    {
        kStart = 0,
        kEnd = 1,
        kTask = 2,
    };
    struct Injection
    {
        sim::Time time;
        const workload::SessionSpec* sp;
        std::int32_t kind;
        const workload::CellTask* task;
        std::size_t outcome;
        std::uint64_t seq;
    };
    // Min-heap in exactly the routed driver's injection order: (time, id,
    // kind), with the insertion sequence breaking the only possible
    // remaining tie (two tasks of one session submitted the same tick,
    // which the materialized driver keeps in insertion order via
    // stable_sort).
    struct InjectionAfter
    {
        bool operator()(const Injection& a, const Injection& b) const
        {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            if (a.sp->id != b.sp->id) {
                return a.sp->id > b.sp->id;
            }
            if (a.kind != b.kind) {
                return a.kind > b.kind;
            }
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Injection, std::vector<Injection>, InjectionAfter>
        injections;
    std::uint64_t next_seq = 0;

    // Live session store: specs stay pinned (map nodes are stable) until
    // their last trace event has executed, then retire. Memory therefore
    // tracks the concurrent-session population, not the trace length.
    struct LiveSession
    {
        workload::SessionSpec spec;
        sim::Time last_event = 0;
    };
    std::map<workload::SessionId, LiveSession> live;
    using Retire = std::pair<sim::Time, workload::SessionId>;
    std::priority_queue<Retire, std::vector<Retire>, std::greater<Retire>>
        retire;

    sim::Time last_start = std::numeric_limits<sim::Time>::min();
    auto admit_one = [&](workload::SessionSpec&& incoming) {
        if (incoming.start_time < last_start) {
            throw std::invalid_argument(
                "streamed session source is not sorted by start time");
        }
        last_start = incoming.start_time;
        const auto [it, inserted] =
            live.emplace(incoming.id, LiveSession{std::move(incoming), 0});
        if (!inserted) {
            throw std::invalid_argument(
                "streamed session source repeated session id " +
                std::to_string(it->first));
        }
        const workload::SessionSpec* sp = &it->second.spec;
        sim::Time last_event = sp->start_time;
        injections.push(Injection{sp->start_time, sp, kStart, nullptr, 0,
                                  next_seq++});
        if (sp->end_time < makespan) {
            injections.push(Injection{sp->end_time, sp, kEnd, nullptr, 0,
                                      next_seq++});
            last_event = std::max(last_event, sp->end_time);
        }
        for (const workload::CellTask& task : sp->tasks) {
            results.tasks.push_back(TaskOutcome{});
            TaskOutcome& outcome = results.tasks.back();
            outcome.session = sp->id;
            outcome.seq = task.seq;
            outcome.is_gpu = task.is_gpu;
            outcome.gpus = sp->resources.gpus;
            submitted.push_back(0);
            injections.push(Injection{task.submit_time, sp, kTask, &task,
                                      results.tasks.size() - 1,
                                      next_seq++});
            last_event = std::max(last_event, task.submit_time);
        }
        it->second.last_event = last_event;
        retire.push(Retire{last_event, sp->id});
    };

    // Lockstep windows on the sampling grid, exactly as the routed
    // driver: pull the window's sessions, inject their due events into
    // the current owners, advance, sample, retire drained specs, then
    // let the policy rebalance.
    workload::SessionSpec pending;
    bool has_pending = source.next(pending);
    for (sim::Time t = 0;; t += config.sample_interval) {
        while (has_pending && pending.start_time <= t) {
            workload::SessionSpec spec = std::move(pending);
            has_pending = source.next(pending);
            admit_one(std::move(spec));
        }
        while (!injections.empty() && injections.top().time <= t) {
            const Injection inj = injections.top();
            injections.pop();
            const std::size_t owner =
                inj.kind == kStart
                    ? scheduler.admit_session(inj.sp->id)
                    : scheduler.shard_of(inj.sp->id);
            sched::SchedulerShard* shard = &scheduler.shard(owner);
            sim::Simulation& simulation = scheduler.simulation(owner);
            const workload::SessionSpec* sp = inj.sp;
            switch (inj.kind) {
                case kStart:
                    simulation.schedule_at(inj.time, [shard, sp] {
                        shard->begin_session(sp->id, sp->resources);
                    });
                    break;
                case kEnd:
                    simulation.schedule_at(inj.time, [shard, sp] {
                        shard->end_session(sp->id);
                    });
                    break;
                case kTask: {
                    const workload::CellTask* tp = inj.task;
                    const std::size_t index = inj.outcome;
                    sim::Simulation* sim_ptr = &simulation;
                    simulation.schedule_at(
                        inj.time, [shard, sim_ptr, sp, tp, index,
                                   &results, &submitted] {
                            TaskOutcome& outcome = results.tasks[index];
                            outcome.submit = sim_ptr->now();
                            const bool accepted = shard->submit_session(
                                sp->id, tp->code, tp->is_gpu,
                                sim_ptr->now(),
                                [&results, index](
                                    const kernel::ExecutionResult& result,
                                    const sched::RequestTrace&
                                        request_trace) {
                                    TaskOutcome& done =
                                        results.tasks[index];
                                    done.trace = request_trace;
                                    done.exec_start =
                                        request_trace.execution_started;
                                    done.exec_end =
                                        request_trace.execution_finished;
                                    done.reply =
                                        request_trace.client_replied;
                                    done.migrated =
                                        request_trace.migrated;
                                    done.aborted =
                                        request_trace.aborted ||
                                        result.status ==
                                            kernel::ExecutionStatus::
                                                kError;
                                    if (done.aborted) {
                                        done.error = result.error;
                                    }
                                });
                            if (accepted) {
                                submitted[index] = 1;
                            }
                        });
                    break;
                }
                default:
                    break;
            }
        }
        scheduler.run_until(t);
        results.provisioned_gpus.record(
            t, static_cast<double>(scheduler.total_gpus()));
        results.subscription_ratio.record(t, scheduler.cluster_sr());
        // Every event of a session with last_event <= t has been popped
        // and executed inside run_until, so its spec is unreferenced.
        while (!retire.empty() && retire.top().first <= t) {
            live.erase(retire.top().second);
            retire.pop();
        }
        if (t >= makespan) {
            break;
        }
        scheduler.rebalance_window();
    }
    // Drain window for in-flight cells.
    scheduler.run_until(makespan + 12 * sim::kHour);

    // Compact dropped cells, then canonicalize to (submit, session, seq)
    // exactly as the materialized drivers do.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < results.tasks.size(); ++i) {
        if (!submitted[i]) {
            continue;
        }
        if (kept != i) {
            results.tasks[kept] = std::move(results.tasks[i]);
        }
        ++kept;
    }
    results.tasks.resize(kept);
    std::stable_sort(results.tasks.begin(), results.tasks.end(),
                     [](const TaskOutcome& a, const TaskOutcome& b) {
                         if (a.submit != b.submit) {
                             return a.submit < b.submit;
                         }
                         if (a.session != b.session) {
                             return a.session < b.session;
                         }
                         return a.seq < b.seq;
                     });

    results.events = scheduler.events();
    results.sched_stats = scheduler.stats();
    results.net_stats = scheduler.network_stats();
    results.sync_ms = scheduler.sync_latencies_ms();
    results.read_ms = scheduler.store_read_ms();
    results.write_ms = scheduler.store_write_ms();
    results.store_bytes_written = scheduler.store_bytes_written();
    finalize_committed_series(results);
    return results;
}

ExperimentResults
run_prototype_notebookos(const workload::Trace& trace,
                         const PlatformConfig& config)
{
    if (config.scheduler.shards < 1) {
        throw std::invalid_argument("scheduler.shards must be >= 1");
    }
    if (config.scheduler.shards == 1) {
        return run_prototype_monolithic(trace, config);
    }
    if (config.scheduler.routing == sched::RoutingPolicyKind::kStaticHash) {
        return run_prototype_sharded(trace, config);
    }
    return run_prototype_routed(trace, config);
}

}  // namespace nbos::core
