#include "core/protosim.hpp"

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "core/platform.hpp"
#include "sched/global_scheduler.hpp"
#include "sim/simulation.hpp"

namespace nbos::core {

ExperimentResults
run_prototype_notebookos(const workload::Trace& trace,
                         const PlatformConfig& config)
{
    sim::Simulation simulation;
    sched::GlobalScheduler scheduler(simulation, config.scheduler,
                                     config.seed);
    scheduler.start();

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace.name;
    results.makespan = trace.makespan;
    // One outcome per cell task; reserving up front keeps the submit path
    // free of reallocation (closures hold indices, not pointers, so growth
    // is safe either way — this is purely an allocation-churn trim).
    std::size_t total_tasks = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        total_tasks += session.tasks.size();
    }
    results.tasks.reserve(total_tasks);

    struct SessionState
    {
        cluster::KernelId kernel = cluster::kNoKernel;
        bool ready = false;
        bool ended = false;
        std::deque<const workload::CellTask*> buffered;
    };
    std::map<workload::SessionId, SessionState> sessions;

    auto submit_task = [&](const workload::SessionSpec& session,
                           const workload::CellTask& task) {
        results.tasks.push_back(TaskOutcome{});
        const std::size_t index = results.tasks.size() - 1;
        TaskOutcome& outcome = results.tasks[index];
        outcome.session = session.id;
        outcome.seq = task.seq;
        outcome.is_gpu = task.is_gpu;
        outcome.gpus = session.resources.gpus;
        outcome.submit = simulation.now();
        scheduler.submit_execute(
            sessions[session.id].kernel, task.code, task.is_gpu,
            simulation.now(),
            [&results, index](const kernel::ExecutionResult& result,
                              const sched::RequestTrace& request_trace) {
                TaskOutcome& done = results.tasks[index];
                done.trace = request_trace;
                done.exec_start = request_trace.execution_started;
                done.exec_end = request_trace.execution_finished;
                done.reply = request_trace.client_replied;
                done.migrated = request_trace.migrated;
                done.aborted =
                    request_trace.aborted ||
                    result.status == kernel::ExecutionStatus::kError;
                if (done.aborted) {
                    done.error = result.error;
                }
            });
    };

    for (const workload::SessionSpec& session : trace.sessions) {
        // Capture stable pointers into the trace (loop variables die at
        // iteration end; the closures outlive them).
        const workload::SessionSpec* sp = &session;
        simulation.schedule_at(session.start_time, [&sessions, &scheduler,
                                                    &submit_task, sp] {
            scheduler.start_kernel(
                sp->resources,
                [&sessions, &scheduler, &submit_task,
                 sp](cluster::KernelId kernel_id, bool ok) {
                    SessionState& st = sessions[sp->id];
                    st.kernel = kernel_id;
                    st.ready = ok;
                    if (st.ended) {
                        scheduler.stop_kernel(kernel_id);
                        return;
                    }
                    while (ok && !st.buffered.empty()) {
                        const workload::CellTask* task =
                            st.buffered.front();
                        st.buffered.pop_front();
                        submit_task(*sp, *task);
                    }
                });
        });
        if (session.end_time < trace.makespan) {
            simulation.schedule_at(session.end_time,
                                   [&sessions, &scheduler, sp] {
                                       SessionState& state = sessions[sp->id];
                                       state.ended = true;
                                       if (state.ready) {
                                           scheduler.stop_kernel(
                                               state.kernel);
                                       }
                                   });
        }
        for (const workload::CellTask& task : session.tasks) {
            const workload::CellTask* tp = &task;
            simulation.schedule_at(task.submit_time,
                                   [&sessions, &submit_task, sp, tp] {
                                       SessionState& state = sessions[sp->id];
                                       if (state.ended) {
                                           return;
                                       }
                                       if (state.ready) {
                                           submit_task(*sp, *tp);
                                       } else {
                                           state.buffered.push_back(tp);
                                       }
                                   });
        }
    }

    // Timeline sampler for provisioned GPUs and the subscription ratio.
    auto sampler = std::make_shared<std::function<void()>>();
    *sampler = [&results, &scheduler, &simulation, &config, sampler,
                &trace] {
        results.provisioned_gpus.record(
            simulation.now(),
            static_cast<double>(scheduler.cluster().total_gpus()));
        results.subscription_ratio.record(simulation.now(),
                                          scheduler.cluster_sr());
        if (simulation.now() < trace.makespan) {
            simulation.schedule_after(config.sample_interval, *sampler);
        }
    };
    simulation.schedule_at(0, [sampler] { (*sampler)(); });

    // Run the trace plus a drain window for in-flight cells.
    simulation.run_until(trace.makespan + 12 * sim::kHour);

    // Collect platform-side metrics.
    results.events = scheduler.events();
    results.sched_stats = scheduler.stats();
    results.sync_ms = scheduler.sync_latencies_ms();
    results.read_ms = scheduler.store().read_latencies();
    results.write_ms = scheduler.store().write_latencies();
    results.store_bytes_written = scheduler.store().bytes_written();
    std::vector<std::pair<sim::Time, double>> committed;
    for (TaskOutcome& task : results.tasks) {
        if (task.reply == 0) {
            task.aborted = true;
        }
        if (task.is_gpu && !task.aborted) {
            committed.emplace_back(task.exec_start,
                                   static_cast<double>(task.gpus));
            committed.emplace_back(task.exec_end,
                                   -static_cast<double>(task.gpus));
        }
    }
    results.committed_gpus = series_from_deltas(std::move(committed));
    return results;
}

}  // namespace nbos::core
