#include "core/sharded_fastsim.hpp"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fastsim_engine.hpp"
#include "core/platform.hpp"
#include "sched/routing.hpp"
#include "sched/shard_router.hpp"

namespace nbos::core {

namespace {

/** Rebuild the committed-GPU step series from the merged task outcomes —
 *  the same tail FastEngineShard::finalize applies per shard, re-run over
 *  the canonical cross-shard task order. */
metrics::TimeSeries
committed_series(const std::vector<TaskOutcome>& tasks)
{
    std::vector<std::pair<sim::Time, double>> committed;
    for (const TaskOutcome& task : tasks) {
        if (task.is_gpu && !task.aborted) {
            committed.emplace_back(task.exec_start,
                                   static_cast<double>(task.gpus));
            committed.emplace_back(task.exec_end,
                                   -static_cast<double>(task.gpus));
        }
    }
    return series_from_deltas(std::move(committed));
}

/** Shard-order base plans: the trace metadata, the round-robin split of
 *  the initial fleet (shares differ by at most one server), and the
 *  per-shard seeds (sched::shard_seed; shard 0 keeps the caller's). */
std::vector<FastShardPlan>
base_plans(const std::string& trace_name, sim::Time makespan,
           const PlatformConfig& config, std::int32_t count)
{
    std::vector<FastShardPlan> plans(static_cast<std::size_t>(count));
    const std::int32_t base_servers =
        config.scheduler.initial_servers / count;
    const std::int32_t extra_servers =
        config.scheduler.initial_servers % count;
    for (std::int32_t i = 0; i < count; ++i) {
        FastShardPlan& plan = plans[static_cast<std::size_t>(i)];
        plan.trace_name = trace_name;
        plan.makespan = makespan;
        plan.initial_servers = base_servers + (i < extra_servers ? 1 : 0);
        plan.seed = sched::shard_seed(config.seed, i);
        plan.record_timeline = false;
    }
    return plans;
}

double
elapsed_seconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Deterministic cross-shard merge, always in shard order — shared by
 *  every multi-shard policy path. Consumes the shards (finish()). */
ExperimentResults
merge_shards(std::vector<std::unique_ptr<FastEngineShard>>& shards,
             const std::string& trace_name, sim::Time makespan,
             const PlatformConfig& config)
{
    std::vector<ExperimentResults> per_shard;
    per_shard.reserve(shards.size());
    std::size_t total_tasks = 0;
    for (const auto& shard : shards) {
        per_shard.push_back(shard->finish());
        total_tasks += per_shard.back().tasks.size();
    }

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace_name;
    results.makespan = makespan;

    // Tasks: concatenate in shard order, then canonicalize to
    // (submit, session, seq) — a total order because a session's
    // (session, seq) pairs are unique.
    results.tasks.reserve(total_tasks);
    for (ExperimentResults& shard_results : per_shard) {
        std::move(shard_results.tasks.begin(), shard_results.tasks.end(),
                  std::back_inserter(results.tasks));
    }
    std::stable_sort(results.tasks.begin(), results.tasks.end(),
                     [](const TaskOutcome& a, const TaskOutcome& b) {
                         if (a.submit != b.submit) {
                             return a.submit < b.submit;
                         }
                         if (a.session != b.session) {
                             return a.session < b.session;
                         }
                         return a.seq < b.seq;
                     });

    std::vector<std::vector<sched::SchedulerEvent>> shard_events;
    shard_events.reserve(per_shard.size());
    for (ExperimentResults& shard_results : per_shard) {
        shard_events.push_back(std::move(shard_results.events));
        results.sched_stats += shard_results.sched_stats;
        results.read_ms.add_all(shard_results.read_ms.sorted());
        results.write_ms.add_all(shard_results.write_ms.sorted());
        results.store_bytes_written += shard_results.store_bytes_written;
    }
    results.events = sched::merge_events(shard_events);

    // Per-shard load telemetry (shard order): how the run's events spread
    // over the shards, surfaced on the benches' # TIMING lines.
    std::uint64_t total_events = 0;
    for (const auto& shard : shards) {
        total_events += shard->events_executed();
    }
    results.sched_stats.shard_loads.reserve(shards.size());
    for (const auto& shard : shards) {
        sched::ShardLoadSample sample;
        sample.sessions = shard->live_sessions();
        sample.events = shard->events_executed();
        sample.busy_fraction =
            total_events == 0
                ? 0.0
                : static_cast<double>(sample.events) /
                      static_cast<double>(total_events);
        results.sched_stats.shard_loads.push_back(sample);
    }

    // Fleet timeline: sum the per-shard (time, ±gpus) deltas into one
    // step series. Equal-time deltas collapse into a single sample whose
    // value is order-independent, so the merge is deterministic.
    std::vector<std::pair<sim::Time, double>> gpu_deltas;
    for (const auto& shard : shards) {
        gpu_deltas.insert(gpu_deltas.end(), shard->gpu_deltas().begin(),
                          shard->gpu_deltas().end());
    }
    results.provisioned_gpus = series_from_deltas(std::move(gpu_deltas));

    // Subscription ratio: every shard ticks on the same grid, so samples
    // merge positionally into sum(S) / (sum(G) * R) — the same formula
    // Cluster::cluster_subscription_ratio applies to one fleet.
    const std::size_t tick_count = shards.front()->tick_samples().size();
    for (const auto& shard : shards) {
        if (shard->tick_samples().size() != tick_count) {
            throw std::logic_error(
                "sharded fast engine: tick sample counts diverged");
        }
    }
    const std::int32_t replicas =
        std::max<std::int32_t>(1, config.scheduler.kernel.replica_count);
    for (std::size_t k = 0; k < tick_count; ++k) {
        std::int64_t subscribed = 0;
        std::int64_t gpus = 0;
        for (const auto& shard : shards) {
            const FastTickSample& sample = shard->tick_samples()[k];
            subscribed += sample.subscribed_gpus;
            gpus += sample.total_gpus;
        }
        const double ratio =
            gpus <= 0 ? 0.0
                      : static_cast<double>(subscribed) /
                            (static_cast<double>(gpus) *
                             static_cast<double>(replicas));
        results.subscription_ratio.record(
            shards.front()->tick_samples()[k].time, ratio);
    }

    results.committed_gpus = committed_series(results.tasks);
    return results;
}

}  // namespace

ShardedFastSim::ShardedFastSim(const workload::Trace& trace,
                               const PlatformConfig& config)
    : trace_(trace), config_(config)
{
}

ExperimentResults
ShardedFastSim::run()
{
    const std::int32_t count = config_.scheduler.shards;
    if (count < 1) {
        throw std::invalid_argument("scheduler.shards must be >= 1");
    }

    if (count == 1) {
        // The monolithic fast path, kept verbatim: one shard over the
        // full trace with the caller's seed and in-engine timeline
        // recording is byte-identical to the pre-sharding engine.
        FastShardPlan plan;
        plan.sessions.reserve(trace_.sessions.size());
        for (const workload::SessionSpec& session : trace_.sessions) {
            plan.sessions.push_back(&session);
        }
        plan.trace_name = trace_.name;
        plan.makespan = trace_.makespan;
        plan.initial_servers = config_.scheduler.initial_servers;
        plan.seed = config_.seed;
        plan.record_timeline = true;
        FastEngineShard engine(std::move(plan), config_);
        ExperimentResults results = engine.run();
        events_executed_ = engine.events_executed();
        return results;
    }

    std::vector<FastShardPlan> plans =
        base_plans(trace_.name, trace_.makespan, config_, count);
    const sim::Time horizon = trace_.makespan + 12 * sim::kHour;
    shard_busy_seconds_.assign(static_cast<std::size_t>(count), 0.0);

    if (config_.scheduler.routing == sched::RoutingPolicyKind::kRebalance) {
        // ---- Windowed rebalance path -------------------------------
        //
        // Sessions are admitted by the stable hash, but trace events are
        // injected one lockstep window at a time into the session's
        // *current* owner, and sched::plan_rebalance moves whole
        // sessions between shards at the autoscale-grid boundaries. The
        // plan is a pure function of the shard-order-merged window
        // loads, so parallel windows stay bit-identical to serial ones.
        for (FastShardPlan& plan : plans) {
            plan.windowed = true;
        }
        std::vector<std::unique_ptr<FastEngineShard>> shards;
        shards.reserve(plans.size());
        for (FastShardPlan& plan : plans) {
            shards.push_back(
                std::make_unique<FastEngineShard>(std::move(plan),
                                                  config_));
        }
        for (const auto& shard : shards) {
            shard->start();
        }

        // One globally sorted injection list; kind order at equal times
        // mirrors schedule_workload's per-session order (start, end,
        // tasks).
        enum Kind : std::int32_t
        {
            kStart = 0,
            kEnd = 1,
            kTask = 2,
        };
        struct Injection
        {
            sim::Time time;
            const workload::SessionSpec* sp;
            std::int32_t kind;
            const workload::CellTask* task;
        };
        std::vector<Injection> injections;
        std::size_t total_tasks = 0;
        for (const workload::SessionSpec& session : trace_.sessions) {
            total_tasks += session.tasks.size();
        }
        injections.reserve(trace_.sessions.size() * 2 + total_tasks);
        for (const workload::SessionSpec& session : trace_.sessions) {
            const workload::SessionSpec* sp = &session;
            injections.push_back(
                Injection{session.start_time, sp, kStart, nullptr});
            if (session.end_time < trace_.makespan) {
                injections.push_back(
                    Injection{session.end_time, sp, kEnd, nullptr});
            }
            for (const workload::CellTask& task : session.tasks) {
                injections.push_back(
                    Injection{task.submit_time, sp, kTask, &task});
            }
        }
        std::stable_sort(injections.begin(), injections.end(),
                         [](const Injection& a, const Injection& b) {
                             if (a.time != b.time) {
                                 return a.time < b.time;
                             }
                             if (a.sp->id != b.sp->id) {
                                 return a.sp->id < b.sp->id;
                             }
                             return a.kind < b.kind;
                         });

        const auto advance = [&](sim::Time t) {
            if (config_.scheduler.shard_parallel && shards.size() > 1) {
                std::vector<std::thread> threads;
                threads.reserve(shards.size() - 1);
                for (std::size_t i = 1; i < shards.size(); ++i) {
                    FastEngineShard* shard = shards[i].get();
                    double* busy = &shard_busy_seconds_[i];
                    threads.emplace_back([shard, busy, t] {
                        const auto begin =
                            std::chrono::steady_clock::now();
                        shard->run_until(t);
                        *busy += elapsed_seconds(begin);
                    });
                }
                const auto begin = std::chrono::steady_clock::now();
                shards.front()->run_until(t);
                shard_busy_seconds_[0] += elapsed_seconds(begin);
                for (std::thread& thread : threads) {
                    thread.join();
                }
            } else {
                for (std::size_t i = 0; i < shards.size(); ++i) {
                    const auto begin = std::chrono::steady_clock::now();
                    shards[i]->run_until(t);
                    shard_busy_seconds_[i] += elapsed_seconds(begin);
                }
            }
        };

        sched::RoutingTable table(count);
        std::vector<std::uint64_t> window_events(shards.size(), 0);
        std::size_t cursor = 0;
        for (sim::Time t = 0;; t += config_.scheduler.autoscale_interval) {
            while (cursor < injections.size() &&
                   injections[cursor].time <= t) {
                const Injection& inj = injections[cursor++];
                FastEngineShard& owner =
                    *shards[table.shard_of(inj.sp->id)];
                switch (inj.kind) {
                    case kStart:
                        owner.inject_session_start(inj.sp);
                        break;
                    case kEnd:
                        owner.inject_session_end(inj.sp);
                        break;
                    case kTask:
                        owner.inject_task(inj.sp, inj.task);
                        break;
                    default:
                        break;
                }
            }
            advance(t);
            if (t >= trace_.makespan) {
                break;
            }
            // Window boundary: merge loads in shard order, plan, apply.
            std::vector<sched::ShardLoad> loads(shards.size());
            std::vector<std::vector<sched::SessionLoad>> sessions(
                shards.size());
            for (std::size_t i = 0; i < shards.size(); ++i) {
                shards[i]->harvest_window_load(loads[i], sessions[i]);
                const std::uint64_t executed =
                    shards[i]->events_executed();
                loads[i].events = executed - window_events[i];
                window_events[i] = executed;
            }
            const std::vector<sched::MigrationDecision> plan =
                sched::plan_rebalance(loads, sessions);
            for (const sched::MigrationDecision& move : plan) {
                FastEngineShard::FastSessionExtract extract;
                if (!shards[static_cast<std::size_t>(move.from)]
                         ->extract_session(move.session, extract)) {
                    continue;
                }
                shards[static_cast<std::size_t>(move.to)]->adopt_session(
                    extract);
                table.assign(move.session, move.to);
                ++sessions_rebalanced_;
            }
        }
        // Drain window for in-flight cells.
        advance(horizon);

        events_executed_ = 0;
        shard_events_.clear();
        for (const auto& shard : shards) {
            shard_events_.push_back(shard->events_executed());
            events_executed_ += shard->events_executed();
        }
        return merge_shards(shards, trace_.name, trace_.makespan, config_);
    }

    if (config_.scheduler.routing ==
        sched::RoutingPolicyKind::kLeastLoaded) {
        // Admission-time partition: visit sessions in (start_time, id)
        // order — the order a live admission controller would see them —
        // and assign each to the shard with the least accumulated task
        // weight (ties: fewest sessions, then lowest index). The rest of
        // the run uses the same static machinery as the hash path.
        std::vector<const workload::SessionSpec*> order;
        order.reserve(trace_.sessions.size());
        for (const workload::SessionSpec& session : trace_.sessions) {
            order.push_back(&session);
        }
        std::stable_sort(order.begin(), order.end(),
                         [](const workload::SessionSpec* a,
                            const workload::SessionSpec* b) {
                             if (a->start_time != b->start_time) {
                                 return a->start_time < b->start_time;
                             }
                             return a->id < b->id;
                         });
        std::vector<std::uint64_t> weight(plans.size(), 0);
        std::vector<std::int64_t> assigned(plans.size(), 0);
        for (const workload::SessionSpec* sp : order) {
            std::size_t pick = 0;
            for (std::size_t i = 1; i < plans.size(); ++i) {
                if (weight[i] < weight[pick] ||
                    (weight[i] == weight[pick] &&
                     assigned[i] < assigned[pick])) {
                    pick = i;
                }
            }
            plans[pick].sessions.push_back(sp);
            weight[pick] += sp->tasks.size() + 1;
            assigned[pick] += 1;
        }
    } else {
        // Static-hash partition, kept verbatim: the stable session-id
        // hash assigns every session to one shard (seed-independent, so
        // seed sweeps compare like against like); within a shard,
        // sessions keep their trace order.
        const sched::ShardRouter router(count);
        for (const workload::SessionSpec& session : trace_.sessions) {
            plans[router.shard_of(session.id)].sessions.push_back(
                &session);
        }
    }

    std::vector<std::unique_ptr<FastEngineShard>> shards;
    shards.reserve(plans.size());
    for (FastShardPlan& plan : plans) {
        shards.push_back(std::make_unique<FastEngineShard>(std::move(plan),
                                                           config_));
    }

    // Shards never interact, so each one runs start-to-drain in a single
    // pass — one analytic shard per thread, shard 0 on the calling
    // thread. thread::join is the happens-before edge for the merges
    // below; with shard_parallel off the same passes run serially,
    // bit-identically.
    const auto run_shard = [horizon](FastEngineShard* shard,
                                     double* busy) {
        const auto begin = std::chrono::steady_clock::now();
        shard->start();
        shard->run_until(horizon);
        *busy += elapsed_seconds(begin);
    };
    if (config_.scheduler.shard_parallel) {
        std::vector<std::thread> threads;
        threads.reserve(shards.size() - 1);
        for (std::size_t i = 1; i < shards.size(); ++i) {
            threads.emplace_back(run_shard, shards[i].get(),
                                 &shard_busy_seconds_[i]);
        }
        run_shard(shards.front().get(), &shard_busy_seconds_[0]);
        for (std::thread& thread : threads) {
            thread.join();
        }
    } else {
        for (std::size_t i = 0; i < shards.size(); ++i) {
            run_shard(shards[i].get(), &shard_busy_seconds_[i]);
        }
    }

    events_executed_ = 0;
    shard_events_.clear();
    for (const auto& shard : shards) {
        shard_events_.push_back(shard->events_executed());
        events_executed_ += shard->events_executed();
    }
    return merge_shards(shards, trace_.name, trace_.makespan, config_);
}

StreamedFastRun
run_fast_streamed(workload::SessionSource& source,
                  const PlatformConfig& config)
{
    const std::int32_t count = config.scheduler.shards;
    if (count < 1) {
        throw std::invalid_argument("scheduler.shards must be >= 1");
    }

    const std::string trace_name = source.trace_name();
    const sim::Time makespan = source.makespan();
    const sim::Time horizon = makespan + 12 * sim::kHour;
    const bool rebalancing =
        config.scheduler.routing == sched::RoutingPolicyKind::kRebalance;
    const bool least_loaded =
        config.scheduler.routing == sched::RoutingPolicyKind::kLeastLoaded;

    StreamedFastRun out;
    out.shard_busy_seconds.assign(static_cast<std::size_t>(count), 0.0);

    // Every policy streams through the windowed engine: events are
    // injected window by window into the session's current owner, exactly
    // as ShardedFastSim's rebalance path does for materialized traces.
    std::vector<FastShardPlan> plans =
        base_plans(trace_name, makespan, config, count);
    for (FastShardPlan& plan : plans) {
        plan.windowed = true;
    }
    std::vector<std::unique_ptr<FastEngineShard>> shards;
    shards.reserve(plans.size());
    for (FastShardPlan& plan : plans) {
        shards.push_back(
            std::make_unique<FastEngineShard>(std::move(plan), config));
    }
    for (const auto& shard : shards) {
        shard->start();
    }

    const auto advance = [&](sim::Time t) {
        if (config.scheduler.shard_parallel && shards.size() > 1) {
            std::vector<std::thread> threads;
            threads.reserve(shards.size() - 1);
            for (std::size_t i = 1; i < shards.size(); ++i) {
                FastEngineShard* shard = shards[i].get();
                double* busy = &out.shard_busy_seconds[i];
                threads.emplace_back([shard, busy, t] {
                    const auto begin = std::chrono::steady_clock::now();
                    shard->run_until(t);
                    *busy += elapsed_seconds(begin);
                });
            }
            const auto begin = std::chrono::steady_clock::now();
            shards.front()->run_until(t);
            out.shard_busy_seconds[0] += elapsed_seconds(begin);
            for (std::thread& thread : threads) {
                thread.join();
            }
        } else {
            for (std::size_t i = 0; i < shards.size(); ++i) {
                const auto begin = std::chrono::steady_clock::now();
                shards[i]->run_until(t);
                out.shard_busy_seconds[i] += elapsed_seconds(begin);
            }
        }
    };

    enum Kind : std::int32_t
    {
        kStart = 0,
        kEnd = 1,
        kTask = 2,
    };
    struct Injection
    {
        sim::Time time;
        const workload::SessionSpec* sp;
        std::int32_t kind;
        const workload::CellTask* task;
        std::uint64_t seq;
    };
    // Min-heap in the materialized driver's injection order (time, id,
    // kind); the insertion sequence breaks the one remaining tie
    // (same-session same-tick tasks) the way stable_sort does.
    struct InjectionAfter
    {
        bool operator()(const Injection& a, const Injection& b) const
        {
            if (a.time != b.time) {
                return a.time > b.time;
            }
            if (a.sp->id != b.sp->id) {
                return a.sp->id > b.sp->id;
            }
            if (a.kind != b.kind) {
                return a.kind > b.kind;
            }
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Injection, std::vector<Injection>, InjectionAfter>
        injections;
    std::uint64_t next_seq = 0;

    // Live specs stay pinned (map nodes are stable) until their last
    // trace event has executed; memory tracks the concurrent-session
    // population, not the trace length.
    struct LiveSession
    {
        workload::SessionSpec spec;
        sim::Time last_event = 0;
    };
    std::map<workload::SessionId, LiveSession> live;
    using Retire = std::pair<sim::Time, workload::SessionId>;
    std::priority_queue<Retire, std::vector<Retire>, std::greater<Retire>>
        retire;

    sched::RoutingTable table(count);
    std::vector<std::uint64_t> weight(static_cast<std::size_t>(count), 0);
    std::vector<std::int64_t> assigned(static_cast<std::size_t>(count), 0);

    sim::Time last_start = std::numeric_limits<sim::Time>::min();
    const auto admit_one = [&](workload::SessionSpec&& incoming) {
        if (incoming.start_time < last_start) {
            throw std::invalid_argument(
                "streamed session source is not sorted by start time");
        }
        last_start = incoming.start_time;
        const auto [it, inserted] =
            live.emplace(incoming.id, LiveSession{std::move(incoming), 0});
        if (!inserted) {
            throw std::invalid_argument(
                "streamed session source repeated session id " +
                std::to_string(it->first));
        }
        const workload::SessionSpec* sp = &it->second.spec;
        if (least_loaded) {
            // The same running-weight pick ShardedFastSim applies to the
            // (start_time, id)-sorted materialized trace — which is
            // exactly the order a conforming source streams in.
            std::size_t pick = 0;
            for (std::size_t i = 1; i < weight.size(); ++i) {
                if (weight[i] < weight[pick] ||
                    (weight[i] == weight[pick] &&
                     assigned[i] < assigned[pick])) {
                    pick = i;
                }
            }
            table.assign(sp->id, static_cast<std::int32_t>(pick));
            weight[pick] += sp->tasks.size() + 1;
            assigned[pick] += 1;
        }
        sim::Time last_event = sp->start_time;
        injections.push(Injection{sp->start_time, sp, kStart, nullptr,
                                  next_seq++});
        if (sp->end_time < makespan) {
            injections.push(
                Injection{sp->end_time, sp, kEnd, nullptr, next_seq++});
            last_event = std::max(last_event, sp->end_time);
        }
        for (const workload::CellTask& task : sp->tasks) {
            injections.push(Injection{task.submit_time, sp, kTask, &task,
                                      next_seq++});
            last_event = std::max(last_event, task.submit_time);
        }
        it->second.last_event = last_event;
        retire.push(Retire{last_event, sp->id});
    };

    std::vector<std::uint64_t> window_events(shards.size(), 0);
    workload::SessionSpec pending;
    bool has_pending = source.next(pending);
    for (sim::Time t = 0;; t += config.scheduler.autoscale_interval) {
        while (has_pending && pending.start_time <= t) {
            workload::SessionSpec spec = std::move(pending);
            has_pending = source.next(pending);
            admit_one(std::move(spec));
        }
        while (!injections.empty() && injections.top().time <= t) {
            const Injection inj = injections.top();
            injections.pop();
            FastEngineShard& owner = *shards[table.shard_of(inj.sp->id)];
            switch (inj.kind) {
                case kStart:
                    owner.inject_session_start(inj.sp);
                    break;
                case kEnd:
                    owner.inject_session_end(inj.sp);
                    break;
                case kTask:
                    owner.inject_task(inj.sp, inj.task);
                    break;
                default:
                    break;
            }
        }
        advance(t);
        // Every event of a session with last_event <= t has been injected
        // and executed inside advance, so its spec is unreferenced
        // (in-flight engine work holds copies, not trace pointers).
        while (!retire.empty() && retire.top().first <= t) {
            live.erase(retire.top().second);
            retire.pop();
        }
        if (t >= makespan) {
            break;
        }
        if (rebalancing) {
            std::vector<sched::ShardLoad> loads(shards.size());
            std::vector<std::vector<sched::SessionLoad>> sessions(
                shards.size());
            for (std::size_t i = 0; i < shards.size(); ++i) {
                shards[i]->harvest_window_load(loads[i], sessions[i]);
                const std::uint64_t executed =
                    shards[i]->events_executed();
                loads[i].events = executed - window_events[i];
                window_events[i] = executed;
            }
            const std::vector<sched::MigrationDecision> plan =
                sched::plan_rebalance(loads, sessions);
            for (const sched::MigrationDecision& move : plan) {
                FastEngineShard::FastSessionExtract extract;
                if (!shards[static_cast<std::size_t>(move.from)]
                         ->extract_session(move.session, extract)) {
                    continue;
                }
                shards[static_cast<std::size_t>(move.to)]->adopt_session(
                    extract);
                table.assign(move.session, move.to);
                ++out.sessions_rebalanced;
            }
        }
    }
    // Drain window for in-flight cells.
    advance(horizon);

    out.events_executed = 0;
    for (const auto& shard : shards) {
        out.shard_events.push_back(shard->events_executed());
        out.events_executed += shard->events_executed();
    }
    out.results = merge_shards(shards, trace_name, makespan, config);
    return out;
}

}  // namespace nbos::core
