#include "core/sharded_fastsim.hpp"

#include <algorithm>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/fastsim_engine.hpp"
#include "core/platform.hpp"
#include "sched/shard_router.hpp"

namespace nbos::core {

namespace {

/** Rebuild the committed-GPU step series from the merged task outcomes —
 *  the same tail FastEngineShard::finalize applies per shard, re-run over
 *  the canonical cross-shard task order. */
metrics::TimeSeries
committed_series(const std::vector<TaskOutcome>& tasks)
{
    std::vector<std::pair<sim::Time, double>> committed;
    for (const TaskOutcome& task : tasks) {
        if (task.is_gpu && !task.aborted) {
            committed.emplace_back(task.exec_start,
                                   static_cast<double>(task.gpus));
            committed.emplace_back(task.exec_end,
                                   -static_cast<double>(task.gpus));
        }
    }
    return series_from_deltas(std::move(committed));
}

}  // namespace

ShardedFastSim::ShardedFastSim(const workload::Trace& trace,
                               const PlatformConfig& config)
    : trace_(trace), config_(config)
{
}

ExperimentResults
ShardedFastSim::run()
{
    const std::int32_t count = config_.scheduler.shards;
    if (count < 1) {
        throw std::invalid_argument("scheduler.shards must be >= 1");
    }

    if (count == 1) {
        // The monolithic fast path, kept verbatim: one shard over the
        // full trace with the caller's seed and in-engine timeline
        // recording is byte-identical to the pre-sharding engine.
        FastShardPlan plan;
        plan.sessions.reserve(trace_.sessions.size());
        for (const workload::SessionSpec& session : trace_.sessions) {
            plan.sessions.push_back(&session);
        }
        plan.trace_name = trace_.name;
        plan.makespan = trace_.makespan;
        plan.initial_servers = config_.scheduler.initial_servers;
        plan.seed = config_.seed;
        plan.record_timeline = true;
        FastEngineShard engine(std::move(plan), config_);
        ExperimentResults results = engine.run();
        events_executed_ = engine.events_executed();
        return results;
    }

    // Partition: the stable session-id hash assigns every session to one
    // shard (seed-independent, so seed sweeps compare like against like);
    // within a shard, sessions keep their trace order. The initial fleet
    // is divided round-robin so shares differ by at most one server.
    const sched::ShardRouter router(count);
    std::vector<FastShardPlan> plans(static_cast<std::size_t>(count));
    const std::int32_t base_servers =
        config_.scheduler.initial_servers / count;
    const std::int32_t extra_servers =
        config_.scheduler.initial_servers % count;
    for (std::int32_t i = 0; i < count; ++i) {
        FastShardPlan& plan = plans[static_cast<std::size_t>(i)];
        plan.trace_name = trace_.name;
        plan.makespan = trace_.makespan;
        plan.initial_servers = base_servers + (i < extra_servers ? 1 : 0);
        plan.seed = sched::shard_seed(config_.seed, i);
        plan.record_timeline = false;
    }
    for (const workload::SessionSpec& session : trace_.sessions) {
        plans[router.shard_of(session.id)].sessions.push_back(&session);
    }

    std::vector<std::unique_ptr<FastEngineShard>> shards;
    shards.reserve(plans.size());
    for (FastShardPlan& plan : plans) {
        shards.push_back(std::make_unique<FastEngineShard>(std::move(plan),
                                                           config_));
    }

    // Shards never interact, so each one runs start-to-drain in a single
    // pass — one analytic shard per thread, shard 0 on the calling
    // thread. thread::join is the happens-before edge for the merges
    // below; with shard_parallel off the same passes run serially,
    // bit-identically.
    const sim::Time horizon = trace_.makespan + 12 * sim::kHour;
    const auto run_shard = [horizon](FastEngineShard* shard) {
        shard->start();
        shard->run_until(horizon);
    };
    if (config_.scheduler.shard_parallel) {
        std::vector<std::thread> threads;
        threads.reserve(shards.size() - 1);
        for (std::size_t i = 1; i < shards.size(); ++i) {
            threads.emplace_back(run_shard, shards[i].get());
        }
        run_shard(shards.front().get());
        for (std::thread& thread : threads) {
            thread.join();
        }
    } else {
        for (const auto& shard : shards) {
            run_shard(shard.get());
        }
    }

    // Deterministic merge, always in shard order.
    std::vector<ExperimentResults> per_shard;
    per_shard.reserve(shards.size());
    std::size_t total_tasks = 0;
    events_executed_ = 0;
    for (const auto& shard : shards) {
        events_executed_ += shard->events_executed();
        per_shard.push_back(shard->finish());
        total_tasks += per_shard.back().tasks.size();
    }

    ExperimentResults results;
    results.policy = Policy::kNotebookOS;
    results.trace_name = trace_.name;
    results.makespan = trace_.makespan;

    // Tasks: concatenate in shard order, then canonicalize to
    // (submit, session, seq) — a total order because a session's
    // (session, seq) pairs are unique.
    results.tasks.reserve(total_tasks);
    for (ExperimentResults& shard_results : per_shard) {
        std::move(shard_results.tasks.begin(), shard_results.tasks.end(),
                  std::back_inserter(results.tasks));
    }
    std::stable_sort(results.tasks.begin(), results.tasks.end(),
                     [](const TaskOutcome& a, const TaskOutcome& b) {
                         if (a.submit != b.submit) {
                             return a.submit < b.submit;
                         }
                         if (a.session != b.session) {
                             return a.session < b.session;
                         }
                         return a.seq < b.seq;
                     });

    std::vector<std::vector<sched::SchedulerEvent>> shard_events;
    shard_events.reserve(per_shard.size());
    for (ExperimentResults& shard_results : per_shard) {
        shard_events.push_back(std::move(shard_results.events));
        results.sched_stats += shard_results.sched_stats;
        results.read_ms.add_all(shard_results.read_ms.sorted());
        results.write_ms.add_all(shard_results.write_ms.sorted());
        results.store_bytes_written += shard_results.store_bytes_written;
    }
    results.events = sched::merge_events(shard_events);

    // Fleet timeline: sum the per-shard (time, ±gpus) deltas into one
    // step series. Equal-time deltas collapse into a single sample whose
    // value is order-independent, so the merge is deterministic.
    std::vector<std::pair<sim::Time, double>> gpu_deltas;
    for (const auto& shard : shards) {
        gpu_deltas.insert(gpu_deltas.end(), shard->gpu_deltas().begin(),
                          shard->gpu_deltas().end());
    }
    results.provisioned_gpus = series_from_deltas(std::move(gpu_deltas));

    // Subscription ratio: every shard ticks on the same grid, so samples
    // merge positionally into sum(S) / (sum(G) * R) — the same formula
    // Cluster::cluster_subscription_ratio applies to one fleet.
    const std::size_t tick_count = shards.front()->tick_samples().size();
    for (const auto& shard : shards) {
        if (shard->tick_samples().size() != tick_count) {
            throw std::logic_error(
                "sharded fast engine: tick sample counts diverged");
        }
    }
    const std::int32_t replicas =
        std::max<std::int32_t>(1, config_.scheduler.kernel.replica_count);
    for (std::size_t k = 0; k < tick_count; ++k) {
        std::int64_t subscribed = 0;
        std::int64_t gpus = 0;
        for (const auto& shard : shards) {
            const FastTickSample& sample = shard->tick_samples()[k];
            subscribed += sample.subscribed_gpus;
            gpus += sample.total_gpus;
        }
        const double ratio =
            gpus <= 0 ? 0.0
                      : static_cast<double>(subscribed) /
                            (static_cast<double>(gpus) *
                             static_cast<double>(replicas));
        results.subscription_ratio.record(
            shards.front()->tick_samples()[k].time, ratio);
    }

    results.committed_gpus = committed_series(results.tasks);
    return results;
}

}  // namespace nbos::core
