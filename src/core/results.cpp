#include "core/results.hpp"

#include <algorithm>
#include <map>

namespace nbos::core {

const char*
to_string(Policy policy)
{
    switch (policy) {
      case Policy::kReservation:
        return "reservation";
      case Policy::kBatch:
        return "batch";
      case Policy::kNotebookOS:
        return "notebookos";
      case Policy::kNotebookOSLCP:
        return "notebookos-lcp";
    }
    return "unknown";
}

std::optional<Policy>
policy_from_string(std::string_view name)
{
    for (const Policy policy :
         {Policy::kReservation, Policy::kBatch, Policy::kNotebookOS,
          Policy::kNotebookOSLCP}) {
        if (name == to_string(policy)) {
            return policy;
        }
    }
    return std::nullopt;
}

metrics::Percentiles
ExperimentResults::interactivity_delays_seconds() const
{
    metrics::Percentiles p;
    for (const TaskOutcome& task : tasks) {
        if (task.is_gpu && !task.aborted) {
            p.add(sim::to_seconds(task.interactivity_delay()));
        }
    }
    return p;
}

metrics::Percentiles
ExperimentResults::tct_ms() const
{
    metrics::Percentiles p;
    for (const TaskOutcome& task : tasks) {
        if (task.is_gpu && !task.aborted) {
            p.add(sim::to_millis(task.tct()));
        }
    }
    return p;
}

double
ExperimentResults::gpu_hours_provisioned() const
{
    return provisioned_gpus.integrate_hours(0, makespan);
}

double
ExperimentResults::gpu_hours_committed() const
{
    return committed_gpus.integrate_hours(0, makespan);
}

metrics::TimeSeries
ExperimentResults::active_trainings_series() const
{
    std::vector<std::pair<sim::Time, double>> deltas;
    for (const TaskOutcome& task : tasks) {
        if (!task.is_gpu || task.aborted) {
            continue;
        }
        deltas.emplace_back(task.exec_start, 1.0);
        deltas.emplace_back(task.exec_end, -1.0);
    }
    return series_from_deltas(std::move(deltas));
}

std::size_t
ExperimentResults::aborted_count() const
{
    return static_cast<std::size_t>(
        std::count_if(tasks.begin(), tasks.end(),
                      [](const TaskOutcome& t) { return t.aborted; }));
}

metrics::TimeSeries
series_from_deltas(std::vector<std::pair<sim::Time, double>> deltas)
{
    std::sort(deltas.begin(), deltas.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    metrics::TimeSeries series;
    double value = 0.0;
    std::size_t i = 0;
    while (i < deltas.size()) {
        const sim::Time t = deltas[i].first;
        while (i < deltas.size() && deltas[i].first == t) {
            value += deltas[i].second;
            ++i;
        }
        series.record(t, value);
    }
    return series;
}

metrics::TimeSeries
oracle_gpu_series(const workload::Trace& trace)
{
    std::vector<std::pair<sim::Time, double>> deltas;
    for (const workload::SessionSpec& session : trace.sessions) {
        for (const workload::CellTask& task : session.tasks) {
            if (!task.is_gpu) {
                continue;
            }
            deltas.emplace_back(task.submit_time,
                                static_cast<double>(session.resources.gpus));
            deltas.emplace_back(task.submit_time + task.duration,
                                -static_cast<double>(
                                    session.resources.gpus));
        }
    }
    return series_from_deltas(std::move(deltas));
}

metrics::TimeSeries
reserved_gpu_series(const workload::Trace& trace)
{
    std::vector<std::pair<sim::Time, double>> deltas;
    for (const workload::SessionSpec& session : trace.sessions) {
        deltas.emplace_back(session.start_time,
                            static_cast<double>(session.resources.gpus));
        deltas.emplace_back(session.end_time,
                            -static_cast<double>(session.resources.gpus));
    }
    return series_from_deltas(std::move(deltas));
}

metrics::TimeSeries
active_sessions_series(const workload::Trace& trace)
{
    std::vector<std::pair<sim::Time, double>> deltas;
    for (const workload::SessionSpec& session : trace.sessions) {
        deltas.emplace_back(session.start_time, 1.0);
        deltas.emplace_back(session.end_time, -1.0);
    }
    return series_from_deltas(std::move(deltas));
}

metrics::TimeSeries
reexecution_saved_series(const workload::Trace& trace, sim::Time reclaim,
                         sim::Time step)
{
    // Collect (time, gpu-hours saved) impulses: one per idle reclamation.
    std::vector<std::pair<sim::Time, double>> impulses;
    for (const workload::SessionSpec& session : trace.sessions) {
        double executed_gpu_hours = 0.0;
        for (std::size_t i = 0; i < session.tasks.size(); ++i) {
            const workload::CellTask& task = session.tasks[i];
            if (i > 0) {
                const sim::Time prev_end =
                    session.tasks[i - 1].submit_time +
                    session.tasks[i - 1].duration;
                if (task.submit_time - prev_end > reclaim &&
                    executed_gpu_hours > 0.0) {
                    // The kernel was reclaimed during the gap; without
                    // NotebookOS's persisted state the user re-runs the
                    // notebook, repeating all GPU work done so far.
                    impulses.emplace_back(task.submit_time,
                                          executed_gpu_hours);
                }
            }
            if (task.is_gpu) {
                executed_gpu_hours +=
                    sim::to_hours(task.duration) *
                    static_cast<double>(session.resources.gpus);
            }
        }
    }
    std::sort(impulses.begin(), impulses.end());
    metrics::TimeSeries cumulative;
    double total = 0.0;
    std::size_t i = 0;
    for (sim::Time t = 0; t <= trace.makespan; t += step) {
        while (i < impulses.size() && impulses[i].first <= t) {
            total += impulses[i].second;
            ++i;
        }
        cumulative.record(t, total);
    }
    return cumulative;
}

}  // namespace nbos::core
