/**
 * @file
 * ShardedFastSim: the fast analytic engine partitioned across N
 * independent shards (SchedulerConfig::shards), one per thread.
 *
 * Sessions are routed to shards by the seed-independent
 * sched::ShardRouter hash, each shard runs the full analytic model over
 * its slice on its own event loop (FastEngineShard), and the driver
 * merges the per-shard aggregates in shard order, so
 *
 *  - parallel ≡ serial (shards share nothing; the fork/join is the only
 *    synchronization, toggled by SchedulerConfig::shard_parallel), and
 *  - shards == 1 is byte-identical to the pre-sharding monolithic fast
 *    path (single shard, full trace, caller's seed, timeline recording).
 *
 * This is the scale path of ROADMAP open item 1: bench/scale_sessions.cpp
 * drives it to >= 1M sessions at shards {1, 2, 4, 8}.
 */
#ifndef NBOS_CORE_SHARDED_FASTSIM_HPP
#define NBOS_CORE_SHARDED_FASTSIM_HPP

#include <cstdint>

#include "core/results.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

class ShardedFastSim
{
  public:
    /** @p trace and @p config must outlive the call to run(). */
    ShardedFastSim(const workload::Trace& trace,
                   const PlatformConfig& config);

    /** Run the trace to completion and return the merged results.
     *  Call at most once. */
    ExperimentResults run();

    /** Simulation events executed across every shard (valid after
     *  run(); throughput accounting for the scale bench). */
    std::uint64_t events_executed() const { return events_executed_; }

  private:
    const workload::Trace& trace_;
    const PlatformConfig& config_;
    std::uint64_t events_executed_ = 0;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_SHARDED_FASTSIM_HPP
