/**
 * @file
 * ShardedFastSim: the fast analytic engine partitioned across N
 * independent shards (SchedulerConfig::shards), one per thread.
 *
 * Sessions are routed to shards through the routing layer
 * (SchedulerConfig::routing, sched/routing.hpp):
 *
 *  - `static_hash` (default): the seed-independent sched::ShardRouter
 *    hash, byte-identical to the pre-routing implementation.
 *  - `least_loaded`: admission-time partition — sessions are assigned in
 *    (start_time, id) order to the shard with the least accumulated task
 *    weight, then run on the same static machinery.
 *  - `rebalance`: hash admission plus deterministic window-boundary
 *    whole-session migration. Shards advance in lockstep windows on the
 *    autoscale_interval grid; at each boundary the driver merges
 *    per-shard loads in shard order, plans migrations with
 *    sched::plan_rebalance (a pure function of the merged stats), and
 *    moves the chosen sessions before injecting the next window's trace
 *    events into their current owners.
 *
 * Each shard runs the full analytic model over its slice on its own
 * event loop (FastEngineShard), and the driver merges the per-shard
 * aggregates in shard order, so
 *
 *  - parallel ≡ serial (shards share nothing; the fork/join is the only
 *    synchronization, toggled by SchedulerConfig::shard_parallel), and
 *  - shards == 1 is byte-identical to the pre-sharding monolithic fast
 *    path (single shard, full trace, caller's seed, timeline recording).
 *
 * This is the scale path of ROADMAP open items 1 and 2:
 * bench/scale_sessions.cpp drives it to >= 1M sessions at shards
 * {1, 2, 4, 8}, and bench/scale_skewed.cpp compares the routing policies
 * on skewed traces.
 */
#ifndef NBOS_CORE_SHARDED_FASTSIM_HPP
#define NBOS_CORE_SHARDED_FASTSIM_HPP

#include <cstdint>
#include <vector>

#include "core/results.hpp"
#include "workload/session_source.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

struct PlatformConfig;

/** Results plus the scale telemetry of one streamed fast-engine run
 *  (run_fast_streamed) — the same figures ShardedFastSim exposes through
 *  accessors after run(). */
struct StreamedFastRun
{
    ExperimentResults results;
    /** Simulation events executed across every shard. */
    std::uint64_t events_executed = 0;
    /** Per-shard simulation events, in shard order. */
    std::vector<std::uint64_t> shard_events;
    /** Wall seconds advancing each shard's event loop, in shard order. */
    std::vector<double> shard_busy_seconds;
    /** Whole sessions moved across shards (`rebalance` only). */
    std::uint64_t sessions_rebalanced = 0;
};

/**
 * Drive the sharded fast engine from a streamed injection @p source
 * without materializing the trace: sessions are pulled as the lockstep
 * window grid reaches their start time, admitted through the configured
 * routing policy (`static_hash` / `rebalance`: the stable hash;
 * `least_loaded`: running-weight admission in arrival order), their
 * events injected into the current owner window by window, and their
 * specs freed once the last trace event has executed — memory tracks the
 * live session population, not the trace length (pinned by the
 * scale_profiles bench).
 *
 * Every policy runs the windowed engine (FastShardPlan::windowed). Under
 * `rebalance` this is the exact materialized windowed path, so a
 * workload::TraceSessionSource over a materialized trace is bit-identical
 * to ShardedFastSim::run (pinned by determinism_test); the other policies
 * are deterministic but windowed, unlike their pre-scheduled
 * ShardedFastSim counterparts.
 *
 * @throws std::invalid_argument when @p source violates its nondecreasing
 *         (start_time, id) contract or repeats a session id.
 */
StreamedFastRun run_fast_streamed(workload::SessionSource& source,
                                  const PlatformConfig& config);

class ShardedFastSim
{
  public:
    /** @p trace and @p config must outlive the call to run(). */
    ShardedFastSim(const workload::Trace& trace,
                   const PlatformConfig& config);

    /** Run the trace to completion and return the merged results.
     *  Call at most once. */
    ExperimentResults run();

    /** Simulation events executed across every shard (valid after
     *  run(); throughput accounting for the scale bench). */
    std::uint64_t events_executed() const { return events_executed_; }

    /** Per-shard simulation events, in shard order (valid after run();
     *  empty for monolithic runs). Feeds the imbalance telemetry. */
    const std::vector<std::uint64_t>& shard_events() const
    {
        return shard_events_;
    }

    /** Wall seconds spent advancing each shard's event loop, in shard
     *  order (valid after run(); empty for monolithic runs). With
     *  shard_parallel off every loop is timed alone on the calling
     *  thread, so max(shard_busy_seconds) is the run's critical path —
     *  the scale benches use that for core-count-independent
     *  events/sec comparisons. */
    const std::vector<double>& shard_busy_seconds() const
    {
        return shard_busy_seconds_;
    }

    /** Whole sessions moved across shards (`rebalance` policy only;
     *  valid after run()). */
    std::uint64_t sessions_rebalanced() const
    {
        return sessions_rebalanced_;
    }

  private:
    const workload::Trace& trace_;
    const PlatformConfig& config_;
    std::uint64_t events_executed_ = 0;
    std::vector<std::uint64_t> shard_events_;
    std::vector<double> shard_busy_seconds_;
    std::uint64_t sessions_rebalanced_ = 0;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_SHARDED_FASTSIM_HPP
