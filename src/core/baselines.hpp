/**
 * @file
 * The three baseline policies of §5.1.1, implemented as trace-driven
 * engines over the simulation substrate.
 *
 *  - Reservation: one long-running kernel container per session with GPUs
 *    exclusively bound for the whole session lifetime (Colab-style).
 *  - Batch: an FCFS batch GPU scheduler; each submission provisions a
 *    container on demand, loads model+dataset from remote storage,
 *    executes, writes back, and terminates.
 *  - NotebookOS (LCP): a large pool of pre-warmed containers shared across
 *    sessions; each task grabs a warm container, warms it up (data
 *    download), executes, and returns it to the pool.
 */
#ifndef NBOS_CORE_BASELINES_HPP
#define NBOS_CORE_BASELINES_HPP

#include "core/results.hpp"
#include "sched/global_scheduler.hpp"
#include "storage/datastore.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** Knobs shared by the baseline engines. */
struct BaselineConfig
{
    cluster::ContainerTimings timings{};
    sim::Time server_provision_min = 30 * sim::kSecond;
    sim::Time server_provision_max = 90 * sim::kSecond;
    sched::HopLatencies hops{};
    /** Batch releases empty servers after this idle period. */
    sim::Time batch_idle_release = 2 * sim::kMinute;
    /** LCP keeps warm servers longer before releasing them. */
    sim::Time lcp_idle_release = 10 * sim::kMinute;
    /** Warm containers maintained per server in the LCP pool. */
    std::int32_t lcp_warm_per_server = 4;
    storage::Backend backend = storage::Backend::kS3;
    cluster::ResourceSpec server_shape = cluster::ResourceSpec::server_8gpu();
};

/** Run the Reservation baseline over @p trace. */
ExperimentResults run_reservation(const workload::Trace& trace,
                                  const BaselineConfig& config,
                                  std::uint64_t seed);

/** Run the Batch (FCFS) baseline over @p trace. */
ExperimentResults run_batch(const workload::Trace& trace,
                            const BaselineConfig& config,
                            std::uint64_t seed);

/** Run the NotebookOS (LCP) baseline over @p trace. */
ExperimentResults run_lcp(const workload::Trace& trace,
                          const BaselineConfig& config, std::uint64_t seed);

}  // namespace nbos::core

#endif  // NBOS_CORE_BASELINES_HPP
