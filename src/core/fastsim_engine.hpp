/**
 * @file
 * Internal shard unit of the fast analytic NotebookOS engine.
 *
 * FastEngineShard is the former monolithic fast engine generalized over a
 * session subset: a ShardedFastSim driver (sharded_fastsim.cpp) hands each
 * shard its slice of the trace, its share of the initial fleet, and a
 * per-shard seed, then merges the per-shard aggregates deterministically.
 * With the whole trace, the full fleet, the caller's seed, and timeline
 * recording on, one shard IS the pre-sharding monolithic engine — shards=1
 * results stay byte-identical by construction.
 *
 * This header is internal to nbos_core (fastsim.cpp / sharded_fastsim.cpp
 * and the scale bench); the public entry point is run_fast_notebookos().
 */
#ifndef NBOS_CORE_FASTSIM_ENGINE_HPP
#define NBOS_CORE_FASTSIM_ENGINE_HPP

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/platform.hpp"
#include "core/results.hpp"
#include "sched/placement.hpp"
#include "sched/routing.hpp"
#include "sched/session_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/datastore.hpp"
#include "workload/trace.hpp"

namespace nbos::core {

/** Everything one fast shard needs to know about its slice of the run. */
struct FastShardPlan
{
    /** This shard's sessions, in trace order (monolithic: all of them). */
    std::vector<const workload::SessionSpec*> sessions;
    std::string trace_name;
    sim::Time makespan = 0;
    /** This shard's share of SchedulerConfig::initial_servers. */
    std::int32_t initial_servers = 0;
    /** Per-shard seed (sched::shard_seed; shard 0 = the caller's seed). */
    std::uint64_t seed = 1;
    /**
     * Monolithic mode: record provisioned_gpus / subscription_ratio
     * straight into the results, exactly as the pre-sharding engine did.
     * Sharded mode turns this off and the driver instead merges the
     * gpu_deltas() / tick_samples() feeds across shards.
     */
    bool record_timeline = true;
    /**
     * Windowed (rebalance) mode: the driver injects trace events window
     * by window (inject_session_start / inject_task / ...) instead of
     * start() pre-scheduling the whole slice, because a session's owner
     * can change at any window boundary. `sessions` is unused; the tick
     * grid is unchanged.
     */
    bool windowed = false;
};

/** One fleet-wide autoscaler-signal sample taken at a tick. Tick times are
 *  a pure function of (autoscale_interval, makespan), so every shard
 *  produces the same sample grid and the driver can merge positionally. */
struct FastTickSample
{
    sim::Time time = 0;
    std::int32_t subscribed_gpus = 0;
    std::int32_t total_gpus = 0;
};

/**
 * One shard of the fast analytic engine: the §5.5 companion-simulator
 * model (replicated kernels under the SR cap, dynamic GPU binding,
 * migration on placement failure, pre-warmed containers, §3.4.2
 * auto-scaler) over the plan's session subset, with consensus latency
 * sampled instead of simulated per-message.
 *
 * Lifecycle: start(), then run_until() to any horizon(s), then finish()
 * exactly once. run() bundles the three for the monolithic path. Shards
 * share nothing, so a driver may run siblings on concurrent threads.
 */
class FastEngineShard
{
  public:
    FastEngineShard(FastShardPlan plan, const PlatformConfig& config);

    FastEngineShard(const FastEngineShard&) = delete;
    FastEngineShard& operator=(const FastEngineShard&) = delete;

    /** Provision the initial fleet and schedule the workload + ticks. */
    void start();

    /** Advance this shard's event loop to @p t. */
    void run_until(sim::Time t);

    /** Finalize and move out this shard's results (call once, last). */
    ExperimentResults finish();

    /** start() + run to the drain horizon + finish(): the monolithic
     *  fast path, byte-identical to the pre-sharding engine. */
    ExperimentResults run();

    /** Simulation events executed so far (throughput accounting). */
    std::uint64_t events_executed() const;

    /** Fleet-size changes as (time, ±gpus) deltas, for the driver-side
     *  merged provisioned_gpus series (sharded mode). */
    const std::vector<std::pair<sim::Time, double>>& gpu_deltas() const
    {
        return gpu_deltas_;
    }

    /** Per-tick autoscaler-signal samples, for the driver-side merged
     *  subscription_ratio series (sharded mode). */
    const std::vector<FastTickSample>& tick_samples() const
    {
        return tick_samples_;
    }

    /** @name Windowed mode (routing layer)
     *
     * Used only by the ShardedFastSim rebalance driver: trace events are
     * injected into the *current* owner shard one lockstep window at a
     * time, and whole sessions move between shards at window boundaries.
     * All calls happen on the driving thread between windows.
     */
    ///@{
    /** A whole analytic session packed for a cross-shard move. The
     *  executor binding stays behind (server ids are shard-local); the
     *  session's kernels_created contribution moves with it so merged
     *  totals stay policy-invariant. */
    struct FastSessionExtract
    {
        workload::SessionId session = -1;
        cluster::ResourceSpec spec{};
        std::uint64_t executions = 0;
    };

    /** Schedule @p sp's start on this shard's event loop. */
    void inject_session_start(const workload::SessionSpec* sp);
    /** Schedule @p sp's end (caller gates on end_time < makespan,
     *  exactly like schedule_workload). */
    void inject_session_end(const workload::SessionSpec* sp);
    /** Schedule one cell of @p sp on this shard's event loop. */
    void inject_task(const workload::SessionSpec* sp,
                     const workload::CellTask* tp);

    /** True when @p id can migrate right now: placed, alive, and no
     *  analytic execution (or migration chain) in flight. */
    bool session_movable(workload::SessionId id) const;

    /** Pack @p id for a cross-shard move: unsubscribe its replicas and
     *  drop the binding. @return false (no change) if not movable. */
    bool extract_session(workload::SessionId id, FastSessionExtract& out);

    /** Adopt an extracted session: rebind and re-place it here (pending
     *  placement aborts its tasks until placed — the analytic model's
     *  migration cost). Its kernels_created count does not repeat. */
    void adopt_session(const FastSessionExtract& extract);

    /** Report the closing window's load — live sessions and per-session
     *  analytic task counts (id order) — and reset the window counters.
     *  ShardLoad::events is the caller's delta. */
    void harvest_window_load(sched::ShardLoad& load,
                             std::vector<sched::SessionLoad>& sessions);

    /** Sessions started and not yet ended or extracted here. */
    std::int64_t live_sessions() const { return live_sessions_; }
    ///@}

  private:
    struct FastKernel
    {
        workload::SessionId session = -1;
        cluster::ResourceSpec spec{};
        std::vector<cluster::ServerId> servers;
        cluster::ServerId last_executor = cluster::kNoServer;
        bool alive = false;
        std::uint64_t executions = 0;
        /** Outstanding GPU executions / migration chains; a session is
         *  only movable at 0 (its completion closures index kernels_). */
        std::uint64_t inflight = 0;
        /** Analytic tasks submitted in the open window (windowed mode;
         *  harvested and reset at each boundary). */
        std::uint64_t window_tasks = 0;
        /** kernels_created already counted for this session (set at the
         *  first successful placement; carried across adoptions so the
         *  merged total is policy-invariant). */
        bool counted = false;
    };

    void add_server();
    void provision_server();
    sim::Time sample(sim::Time lo, sim::Time hi);
    void record_event(sched::SchedulerEvent::Kind kind);
    void record_fleet_size();
    void schedule_workload();
    void start_session(const workload::SessionSpec& session);
    void place_kernel(workload::SessionId id);
    void place_pending_kernels();
    void end_session(const workload::SessionSpec& session);
    TaskOutcome& new_outcome(const workload::SessionSpec& session,
                             const workload::CellTask& task);
    void run_task(const workload::SessionSpec& session,
                  const workload::CellTask& task);
    void begin_execution(std::size_t index, workload::SessionId session_id,
                         cluster::ServerId server_id, sim::Time start,
                         sim::Time duration);
    void migrate_and_run(std::size_t index, workload::SessionId session_id,
                         const workload::CellTask& task, int retries,
                         sim::Time duration_override = -1);
    void complete(std::size_t index, sim::Time start, sim::Time end,
                  sim::Time extra_reply, workload::SessionId session_id);
    void schedule_tick();
    void tick();
    void finalize();

    FastShardPlan plan_;
    PlatformConfig config_;
    sim::Simulation simulation_;
    sim::Rng rng_;
    storage::DataStore store_;
    cluster::Cluster cluster_;
    sched::LeastLoadedPolicy placement_;
    cluster::PrewarmPool prewarm_;
    /** Find-or-create @p id's row (the old map operator[] semantics). */
    FastKernel& kernel_at(workload::SessionId id)
    {
        return kernels_.cold_at(kernels_.insert(id));
    }

    /** Dense table replacing the old id -> FastKernel std::map: the
     *  per-task lookups are O(1) hashes into contiguous rows instead of
     *  tree-node pointer chases. Rows are not reference-stable across
     *  insert/erase — look up again after any call that may mutate. */
    sched::SessionTable<FastKernel> kernels_;
    std::set<workload::SessionId> pending_kernels_;
    /** Sessions with window_tasks > 0 (windowed mode; pushed on the
     *  0 -> 1 transition, sorted + cleared by harvest_window_load). */
    std::vector<workload::SessionId> window_active_;
    std::int64_t live_sessions_ = 0;
    std::int32_t provisioning_ = 0;
    /** Previous cluster_.total_gpus(), for delta-form fleet recording. */
    double last_total_gpus_ = 0.0;
    std::vector<std::pair<sim::Time, double>> gpu_deltas_;
    std::vector<FastTickSample> tick_samples_;
    ExperimentResults results_;
};

}  // namespace nbos::core

#endif  // NBOS_CORE_FASTSIM_ENGINE_HPP
