/**
 * @file
 * Load-aware session -> shard routing (ROADMAP item 2).
 *
 * The routing layer generalizes the static splitmix64 ShardRouter into
 * three cooperating pieces:
 *
 *  - RoutingTable: an explicit session -> shard map with the stable hash
 *    as the default/fallback route. With no overrides it is byte-for-byte
 *    the ShardRouter, which is how `static_hash` keeps every pre-routing
 *    golden and bench hash bit-identical.
 *  - RoutingPolicy: the decision procedure. `admit` places a new session
 *    given the merged per-shard loads; `plan` emits window-boundary
 *    migration decisions. Both are pure functions of their inputs, and
 *    the inputs are always merged in shard order, so a plan is
 *    reproducible across runs, thread interleavings, and platforms.
 *  - plan_rebalance: the deterministic greedy planner shared by the
 *    `rebalance` policy and its unit tests.
 *
 * Determinism contract: nothing in this header reads clocks, RNGs, or
 * addresses. Ties break on the lowest shard index / lowest session id.
 */
#ifndef NBOS_SCHED_ROUTING_HPP
#define NBOS_SCHED_ROUTING_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/shard_router.hpp"

namespace nbos::sched {

/** The routing policies understood by every sharded engine. */
enum class RoutingPolicyKind
{
    /** Pure splitmix64 hash (the default; pre-routing behavior). */
    kStaticHash,
    /** New sessions go to the least-loaded shard at admission. */
    kLeastLoaded,
    /** Hash admission + deterministic window-boundary migration. */
    kRebalance,
};

const char* to_string(RoutingPolicyKind kind);

/** Parse a policy name ("static_hash", "least_loaded", "rebalance").
 *  @throws std::invalid_argument on anything else. */
RoutingPolicyKind routing_policy_from_string(const std::string& name);

/** One shard's load as seen at a window boundary (merged in shard
 *  order before any policy decision). */
struct ShardLoad
{
    /** Sessions currently resident on the shard. */
    std::int64_t sessions = 0;
    /** Activity weight accumulated over the closing window (submitted
     *  cells for the schedulers; analytic tasks for the fast engine). */
    std::uint64_t weight = 0;
    /** Simulation events the shard executed in the closing window. */
    std::uint64_t events = 0;
};

/** One session's share of its shard's window weight. Shards report only
 *  sessions with non-zero window weight (idle sessions are never worth
 *  moving), each tagged with whether it can migrate right now. */
struct SessionLoad
{
    std::int64_t session = -1;
    std::uint64_t weight = 0;
    /** False while the session is mid-operation (kernel still being
     *  created, an intra-shard migration or an analytic task in
     *  flight); the planner must skip it this window. */
    bool movable = true;
};

/** One planned whole-session move. */
struct MigrationDecision
{
    std::int64_t session = -1;
    std::int32_t from = -1;
    std::int32_t to = -1;
};

/**
 * Explicit session -> shard map over the stable hash fallback.
 *
 * Reads are cheap and const; writes happen only from the driving thread
 * at admission or window boundaries, never inside a shard window, so the
 * table needs no synchronization.
 */
class RoutingTable
{
  public:
    /** @throws std::invalid_argument on shards < 1 (no silent clamp in
     *  the routing layer; validate_config rejects it upstream too). */
    explicit RoutingTable(std::int32_t shards) : router_(shards) {}

    std::int32_t shards() const { return router_.shards(); }

    /** The hash fallback (static-hash equivalence tests). */
    const ShardRouter& router() const { return router_; }

    /** Current owner of @p session: the explicit assignment if present,
     *  else the hash route. @throws std::invalid_argument on negative
     *  ids (via ShardRouter::shard_of). */
    std::size_t shard_of(std::int64_t session) const
    {
        const auto it = overrides_.find(session);
        if (it != overrides_.end()) {
            return static_cast<std::size_t>(it->second);
        }
        return router_.shard_of(session);
    }

    /** Pin @p session to @p shard. An assignment equal to the hash route
     *  is dropped so the override map only holds real deviations.
     *  @throws std::out_of_range on a shard outside [0, shards). */
    void assign(std::int64_t session, std::int32_t shard)
    {
        if (shard < 0 || shard >= router_.shards()) {
            throw std::out_of_range(
                "RoutingTable::assign: shard " + std::to_string(shard) +
                " outside [0, " + std::to_string(router_.shards()) + ")");
        }
        if (router_.shard_of(session) ==
            static_cast<std::size_t>(shard)) {
            overrides_.erase(session);
        } else {
            overrides_[session] = shard;
        }
    }

    /** Drop @p session's override (session ended; bounds the map). */
    void forget(std::int64_t session) { overrides_.erase(session); }

    /** Number of sessions currently routed away from their hash shard. */
    std::size_t overrides() const { return overrides_.size(); }

  private:
    ShardRouter router_;
    std::unordered_map<std::int64_t, std::int32_t> overrides_;
};

/**
 * A routing decision procedure. Implementations must be pure: equal
 * inputs (table contents, shard-order-merged loads) produce equal
 * outputs, with no hidden state besides the table itself.
 */
class RoutingPolicy
{
  public:
    virtual ~RoutingPolicy() = default;

    virtual RoutingPolicyKind kind() const = 0;

    /**
     * Route a newly admitted @p session. @p loads holds one entry per
     * shard, merged in shard order at the most recent boundary (empty on
     * the very first window). @return the target shard in [0, shards).
     */
    virtual std::int32_t admit(std::int64_t session,
                               const RoutingTable& table,
                               const std::vector<ShardLoad>& loads) = 0;

    /**
     * Plan window-boundary migrations. @p loads has one entry per shard
     * and @p sessions one vector per shard (both in shard order); the
     * per-shard session lists are sorted by descending weight then
     * ascending id before planning. @return whole-session moves to apply
     * before the next window (empty for non-rebalancing policies).
     */
    virtual std::vector<MigrationDecision> plan(
        const std::vector<ShardLoad>& loads,
        const std::vector<std::vector<SessionLoad>>& sessions) = 0;
};

/** Build the policy implementing @p kind. */
std::unique_ptr<RoutingPolicy> make_routing_policy(RoutingPolicyKind kind);

/**
 * The deterministic greedy rebalance planner.
 *
 * Repeatedly takes the heaviest and lightest shards (ties: lowest
 * index) and moves the heaviest movable session that strictly narrows
 * the gap — preferring the largest session not exceeding half the gap,
 * falling back to the lightest improving one — until no improving move
 * exists or the gap falls under `slack` (a "close enough" band that
 * prevents ping-ponging sessions over rounding-level imbalance).
 *
 * Pure function: equal inputs give equal plans. Weights are the window
 * weights from SessionLoad; shard weights start from ShardLoad::weight
 * and are updated as moves are planned.
 */
std::vector<MigrationDecision> plan_rebalance(
    const std::vector<ShardLoad>& loads,
    const std::vector<std::vector<SessionLoad>>& sessions);

}  // namespace nbos::sched

#endif  // NBOS_SCHED_ROUTING_HPP
