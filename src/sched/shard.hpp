/**
 * @file
 * One scheduler shard: the complete per-server/per-session scheduling
 * engine previously embedded in the monolithic GlobalScheduler — kernel
 * creation, execute routing through per-server Local Schedulers, yield
 * conversion, migration on failed elections (§3.2.3), the pre-warmed
 * container pool, replica failure detection (§3.2.5), and the §3.4.2
 * auto-scaler — owning a disjoint slice of the fleet and of the session
 * space.
 *
 * A shard shares no mutable state with its siblings: it has its own
 * network, cluster slice, pre-warm pool, data store, placement policy,
 * and RNG streams, and it advances exclusively on the sim::Simulation it
 * was constructed with. That isolation is what lets the
 * ShardedGlobalScheduler run shard event loops on parallel threads with
 * bit-identical results to a serial sweep.
 */
#ifndef NBOS_SCHED_SHARD_HPP
#define NBOS_SCHED_SHARD_HPP

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chaos/controller.hpp"
#include "cluster/cluster.hpp"
#include "kernel/replica.hpp"
#include "metrics/percentiles.hpp"
#include "net/network.hpp"
#include "sched/placement.hpp"
#include "sched/scheduler_types.hpp"
#include "sched/session_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/datastore.hpp"

namespace nbos::sched {

/**
 * A shard's position in the fleet: shard @p index of @p count.
 *
 * It fixes the shard's disjoint kernel-id arithmetic progression
 * (index + 1, index + 1 + count, ...) and its round-robin share of
 * SchedulerConfig::initial_servers. The default identity {0, 1} makes the
 * shard byte-identical to the pre-sharding monolithic scheduler.
 */
struct ShardIdentity
{
    std::int32_t index = 0;
    std::int32_t count = 1;

    /** Round-robin share of @p total servers owned by this shard. */
    std::int32_t share_of(std::int32_t total) const
    {
        if (total <= 0 || count <= 1) {
            return total;
        }
        return total / count + (index < total % count ? 1 : 0);
    }
};

/**
 * The per-shard Global Scheduler engine plus the per-server Local
 * Scheduler logic. (Local Schedulers are thin per-server agents; their
 * provisioning and forwarding behaviour is modelled here with explicit
 * hop/processing delays.)
 */
class SchedulerShard
{
  public:
    using ExecuteCallback = std::function<void(
        const kernel::ExecutionResult&, const RequestTrace&)>;
    using StartKernelCallback =
        std::function<void(cluster::KernelId, bool ok)>;

    SchedulerShard(sim::Simulation& simulation, SchedulerConfig config,
                   std::uint64_t seed, ShardIdentity identity = {});
    ~SchedulerShard();

    SchedulerShard(const SchedulerShard&) = delete;
    SchedulerShard& operator=(const SchedulerShard&) = delete;

    /** Provision the shard's initial fleet and start periodic services. */
    void start();

    /**
     * Create a distributed kernel with @p spec (§3.2.1). The callback
     * fires once all replicas run and their Raft group has a leader, or
     * with ok=false if placement ultimately failed.
     * @return the kernel id (allocated synchronously from this shard's
     * disjoint id stride; also passed to the callback).
     */
    cluster::KernelId start_kernel(const cluster::ResourceSpec& spec,
                                   StartKernelCallback callback);

    /** Terminate a kernel and release its subscriptions. */
    void stop_kernel(cluster::KernelId kernel_id);

    /**
     * Submit a cell for execution on @p kernel_id (the Fig. 5 flow).
     * @param submitted_at client-side submission timestamp.
     */
    void submit_execute(cluster::KernelId kernel_id, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback);

    /** @name Session-addressed API (routing layer)
     *
     * The routed sharded driver addresses work by session id and lets the
     * shard own the session -> kernel binding, so a whole session — its
     * kernel state, queued work, and bookkeeping — can migrate between
     * shards at a window boundary without the driver tracking kernel
     * ids. The static-hash path never calls these, keeping it
     * byte-identical to the pre-routing implementation.
     */
    ///@{
    /** One queued cell travelling with a migrating session. */
    struct CarriedExecution
    {
        std::string code;
        bool is_gpu = true;
        sim::Time submitted_at = 0;
        ExecuteCallback callback;
    };

    /** A whole session packed for a cross-shard move: resource spec,
     *  the kernel's checkpointed namespace, and every queued cell (in
     *  submission order) that had not completed when the window closed. */
    struct SessionExtract
    {
        std::int64_t session = -1;
        cluster::ResourceSpec spec{};
        std::string checkpoint;
        std::vector<CarriedExecution> work;
    };

    /** Admit @p session: create its kernel and bind it to the session id.
     *  Cells submitted before the kernel is ready are buffered in-shard
     *  and drained on creation. */
    void begin_session(std::int64_t session,
                       const cluster::ResourceSpec& spec);

    /** Submit a cell addressed by session id (buffered until the
     *  session's kernel is ready).
     *  @return false when the cell was dropped — session unknown, ended,
     *  or its kernel creation failed — mirroring the monolithic driver's
     *  client-side guards, where such cells never produce an outcome. */
    bool submit_session(std::int64_t session, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback);

    /** End @p session: stop its kernel (now or when creation finishes)
     *  and drop any still-buffered work. */
    void end_session(std::int64_t session);

    /** True when @p session can migrate right now: kernel fully created,
     *  alive, and not mid-(intra-shard)-migration — §3.2.3 migrations
     *  hold partially released victim resources that must not be
     *  double-released by an extract. */
    bool session_movable(std::int64_t session) const;

    /** Pack @p session for a cross-shard move: checkpoint its kernel
     *  from the first live replica, collect pending + buffered work in
     *  submission order, stop the kernel, and erase the binding.
     *  @return false (leaving the session untouched) if it is not
     *  movable. Call only between windows, from the driving thread. */
    bool extract_session(std::int64_t session, SessionExtract& out);

    /** Adopt an extracted session: rebind it, start a kernel here,
     *  restore the checkpointed namespace into every replica, and
     *  resubmit the carried work in order. Call only between windows. */
    void adopt_session(SessionExtract extract);

    /** Sessions currently bound here (live, not ended). */
    std::size_t session_count() const;

    /** Report this shard's closing-window load — resident sessions and
     *  summed per-session cell weight into @p load (events are the
     *  caller's delta), plus one SessionLoad per session that submitted
     *  work this window — and reset the window counters. Deterministic:
     *  sessions are visited in id order. */
    void harvest_window_load(ShardLoad& load,
                             std::vector<SessionLoad>& sessions);
    ///@}

    /** @name Introspection */
    ///@{
    sim::Simulation& simulation() { return simulation_; }
    const ShardIdentity& identity() const { return identity_; }
    cluster::Cluster& cluster() { return cluster_; }
    const cluster::Cluster& cluster() const { return cluster_; }
    const SchedulerStats& stats() const { return stats_; }
    const std::vector<SchedulerEvent>& events() const { return events_; }
    storage::DataStore& store() { return *store_; }
    const storage::DataStore& store() const { return *store_; }
    const metrics::Percentiles& sync_latencies_ms() const
    {
        return sync_latencies_ms_;
    }
    double cluster_sr() const;
    std::int32_t replicas_per_kernel() const
    {
        return config_.kernel.replica_count;
    }
    /** Access a replica (tests / fault injection). */
    kernel::KernelReplica* replica(cluster::KernelId kernel_id,
                                   std::int32_t index);
    /** Crash a replica (fail-stop); the health checker will replace it. */
    void inject_replica_failure(cluster::KernelId kernel_id,
                                std::int32_t index);
    /** The shard's chaos controller (null unless chaos is enabled). */
    chaos::ChaosController* chaos() { return chaos_.get(); }
    /** Network delivery stats (chaos observability). */
    const net::NetworkStats& network_stats() const
    {
        return network_.stats();
    }
    /** Number of kernels still alive. */
    std::size_t live_kernels() const;
    /** Device ids currently bound to a replica's execution (§3.3). */
    std::vector<std::int32_t> bound_devices(cluster::KernelId kernel_id,
                                            std::int32_t index);
    ///@}

  private:
    struct ReplicaSlot
    {
        std::unique_ptr<kernel::KernelReplica> replica;
        cluster::ServerId server = cluster::kNoServer;
        cluster::ContainerId container = -1;
        bool alive = false;
        /** GPU device ids bound to the replica's current execution
         *  (§3.3: embedded in the request metadata by the GS). */
        std::vector<std::int32_t> bound_devices;
    };

    struct PendingExecution
    {
        std::string code;
        bool is_gpu = true;
        RequestTrace trace;
        ExecuteCallback callback;
        std::int32_t migration_retries = 0;
    };

    struct KernelRecord
    {
        cluster::KernelId id = cluster::kNoKernel;
        cluster::ResourceSpec spec{};
        std::vector<ReplicaSlot> slots;
        kernel::ElectionId next_election = 1;
        std::map<kernel::ElectionId, PendingExecution> pending;
        std::set<kernel::ElectionId> failed_seen;
        bool migrating = false;
        bool alive = true;
        /** True once all replicas started and the group elected a leader
         *  (gates the health-checker's orphan repair). */
        bool created = false;
        /** See PendingKernel::count_created. */
        bool count_created = true;
    };

    struct PendingKernel
    {
        cluster::KernelId id;
        cluster::ResourceSpec spec;
        StartKernelCallback callback;
        bool scale_out_requested = false;
        /** False for kernels re-created by a cross-shard session
         *  adoption: the session's kernel was already counted (and its
         *  kKernelCreated event recorded) where it first placed, so
         *  merged totals stay independent of the routing policy. */
        bool count_created = true;
    };

    /** Session -> kernel binding plus pre-creation buffering (routed
     *  sharded driver only; empty on the static-hash path). This is the
     *  cold column of the SoA SessionTable; the hot per-window state
     *  (window weight, created/failed/ended flags) lives in the table's
     *  parallel arrays so the boundary scans never touch this record. */
    struct SessionRecord
    {
        cluster::KernelId kernel = cluster::kNoKernel;
        cluster::ResourceSpec spec{};
        /** Cells awaiting kernel creation. */
        std::deque<CarriedExecution> buffered;
    };

    /** SessionTable flag bits. */
    static constexpr std::uint8_t kSessionCreated = 1;
    static constexpr std::uint8_t kSessionFailed = 2;
    static constexpr std::uint8_t kSessionEnded = 4;

    cluster::KernelId start_kernel_internal(const cluster::ResourceSpec& spec,
                                            StartKernelCallback callback,
                                            bool count_created);
    /** Creation callback shared by begin_session and adopt_session:
     *  binds the kernel, restores @p checkpoint (adoptions), and drains
     *  the session's buffered work. */
    void on_session_kernel(std::int64_t session, cluster::KernelId kernel,
                           bool ok, const std::string& checkpoint);
    void provision_server(SchedulerEvent::Kind reason);
    void on_server_ready(cluster::ServerId id);
    void try_place_pending_kernels();
    void place_kernel(PendingKernel pending,
                      const std::vector<cluster::ServerId>& servers);
    void create_replica(KernelRecord& record, std::int32_t index,
                        cluster::ServerId server, bool passive);
    void install_hooks(KernelRecord& record, std::int32_t index);
    void dispatch_execution(KernelRecord& record, kernel::ElectionId id,
                            std::int32_t designated);
    void on_result(cluster::KernelId kernel_id,
                   const kernel::ExecutionResult& result);
    void on_election_failed(cluster::KernelId kernel_id,
                            kernel::ElectionId election);
    void begin_migration(cluster::KernelId kernel_id,
                         kernel::ElectionId election);
    void continue_migration(cluster::KernelId kernel_id,
                            kernel::ElectionId election,
                            std::int32_t victim_index,
                            const std::string& checkpoint);
    void finish_migration(cluster::KernelId kernel_id,
                          kernel::ElectionId election,
                          std::int32_t victim_index,
                          cluster::ServerId target,
                          const std::string& checkpoint, bool used_prewarm);
    void abort_execution(cluster::KernelId kernel_id,
                         kernel::ElectionId election,
                         const std::string& reason);
    void run_autoscaler();
    void run_prewarmer();
    void run_health_check();
    void replace_replica(cluster::KernelId kernel_id, std::int32_t index);
    void install_chaos();
    std::vector<std::pair<cluster::KernelId, std::int32_t>>
    chaos_live_replicas() const;
    net::NodeId chaos_resolve_endpoint(std::uint32_t slot);
    bool chaos_crash_replica(std::uint32_t slot);
    bool chaos_restart_replica(std::uint32_t slot);
    std::int32_t pick_designated(const KernelRecord& record) const;
    sim::Time sample(sim::Time lo, sim::Time hi);
    cluster::ServerId pick_migration_target(const KernelRecord& record);
    void record_event(SchedulerEvent::Kind kind);

    sim::Simulation& simulation_;
    SchedulerConfig config_;
    ShardIdentity identity_;
    std::uint64_t seed_;
    sim::Rng rng_;
    net::Network network_;
    cluster::Cluster cluster_;
    cluster::PrewarmPool prewarm_;
    std::unique_ptr<storage::DataStore> store_;
    std::unique_ptr<PlacementPolicy> placement_;

    std::map<cluster::KernelId, KernelRecord> kernels_;
    SessionTable<SessionRecord> sessions_;
    std::deque<PendingKernel> pending_kernels_;
    /** Migrations whose victim resources were already released (guards
     *  the retry path against double release). */
    std::set<std::pair<cluster::KernelId, kernel::ElectionId>>
        victim_released_;
    std::vector<std::unique_ptr<kernel::KernelReplica>> graveyard_;
    cluster::KernelId next_kernel_id_;
    cluster::ContainerId next_container_id_ = 1;
    net::NodeId next_raft_id_ = 1000;
    std::int32_t servers_provisioning_ = 0;

    SchedulerStats stats_;
    std::vector<SchedulerEvent> events_;
    metrics::Percentiles sync_latencies_ms_;
    bool started_ = false;

    /** Chaos tier (null unless SchedulerConfig::chaos.enabled). */
    std::unique_ptr<chaos::ChaosController> chaos_;
    /** Replicas downed by a chaos kCrash, keyed by the fault's replica
     *  slot, so the matching kRestart revives the same replica (unless the
     *  health checker already replaced it). */
    std::map<std::uint32_t, std::pair<cluster::KernelId, std::int32_t>>
        chaos_downed_;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SHARD_HPP
