#include "sched/shard.hpp"

#include <algorithm>
#include <cassert>

namespace nbos::sched {

namespace {

/** Checkpoint object key for a kernel (§3.2.3 migration persistence). */
std::string
checkpoint_key(cluster::KernelId kernel_id)
{
    return "kernel/" + std::to_string(kernel_id) + "/checkpoint";
}

/** Approximate checkpoint footprint: metadata plus large-object bytes. */
std::uint64_t
checkpoint_bytes(const nblang::Namespace& ns)
{
    std::uint64_t total = 1024;
    for (const auto& [name, value] : ns) {
        total += 128 + value.text.size();
        // Large objects referenced by the checkpoint are already in the
        // data store; the checkpoint itself carries small values inline.
        if (value.size_bytes < 1024ULL * 1024ULL) {
            total += value.size_bytes;
        }
    }
    return total;
}

}  // namespace

SchedulerShard::SchedulerShard(sim::Simulation& simulation,
                               SchedulerConfig config, std::uint64_t seed,
                               ShardIdentity identity)
    : simulation_(simulation),
      config_(config),
      identity_(identity),
      seed_(seed),
      rng_(seed),
      network_(simulation, sim::Rng(seed ^ 0x5bd1e995)),
      cluster_(config.server_shape),
      prewarm_(config.prewarm_per_server),
      store_(std::make_unique<storage::DataStore>(
          simulation, config.store_backend, sim::Rng(seed ^ 0x9e3779b9))),
      placement_(std::make_unique<LeastLoadedPolicy>(config.sr_watermark)),
      // Disjoint kernel-id progression per shard: index + 1, stepping by
      // the shard count, so ids are globally unique and (kernel_id - 1)
      // mod count recovers the owning shard. {0, 1} yields 1, 2, 3, ... —
      // the monolithic scheduler's sequence.
      next_kernel_id_(identity.index + 1)
{
    // Keep the kernel-level replica count and the scheduler's R in sync.
    assert(config_.kernel.replica_count >= 1);
    assert(identity_.count >= 1 && identity_.index >= 0 &&
           identity_.index < identity_.count);
}

SchedulerShard::~SchedulerShard()
{
    // RECORD mode: deposit the faults this shard actually injected so the
    // caller can serialize and later replay the full schedule file.
    if (chaos_ != nullptr && config_.chaos.record != nullptr) {
        config_.chaos.record->put(identity_.index, chaos_->record());
    }
}

sim::Time
SchedulerShard::sample(sim::Time lo, sim::Time hi)
{
    if (hi <= lo) {
        return lo;
    }
    return lo + rng_.uniform_int(0, hi - lo);
}

void
SchedulerShard::record_event(SchedulerEvent::Kind kind)
{
    events_.push_back(SchedulerEvent{kind, simulation_.now()});
}

void
SchedulerShard::start()
{
    if (started_) {
        return;
    }
    started_ = true;
    // The initial fleet exists from t=0 (experiments begin with a
    // cluster); a shard owns its round-robin share of the configured
    // servers (all of them for the monolithic identity {0, 1}).
    const std::int32_t initial =
        identity_.share_of(config_.initial_servers);
    for (std::int32_t i = 0; i < initial; ++i) {
        cluster::GpuServer& server = cluster_.add_server();
        prewarm_.register_server(server.id());
    }
    run_prewarmer();
    if (config_.enable_autoscaler) {
        simulation_.schedule_after(config_.autoscale_interval,
                                   [this] { run_autoscaler(); });
    }
    simulation_.schedule_after(config_.health_check_interval,
                               [this] { run_health_check(); });
    if (config_.chaos.enabled) {
        install_chaos();
    }
}

void
SchedulerShard::install_chaos()
{
    chaos_ = std::make_unique<chaos::ChaosController>(simulation_, network_);
    chaos::ChaosController::Hooks hooks;
    hooks.resolve_endpoint = [this](std::uint32_t slot) {
        return chaos_resolve_endpoint(slot);
    };
    hooks.crash_replica = [this](std::uint32_t slot) {
        return chaos_crash_replica(slot);
    };
    hooks.restart_replica = [this](std::uint32_t slot) {
        return chaos_restart_replica(slot);
    };
    chaos_->set_hooks(std::move(hooks));

    chaos::FaultPlan plan;
    if (config_.chaos.replay != nullptr) {
        // REPLAY: this shard's section of the schedule file, verbatim.
        const auto it = config_.chaos.replay->shards.find(identity_.index);
        if (it != config_.chaos.replay->shards.end()) {
            plan = it->second;
        }
    } else {
        // Generate from the chaos seed (or the shard seed), mixed with the
        // shard index so every shard draws an independent fault stream.
        const std::uint64_t base =
            config_.chaos.seed != 0 ? config_.chaos.seed : seed_;
        chaos::ChaosGenerator generator(
            base ^ (0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(identity_.index) + 1)));
        plan = generator.generate(config_.chaos.options);
    }
    chaos_->install(plan);
}

std::vector<std::pair<cluster::KernelId, std::int32_t>>
SchedulerShard::chaos_live_replicas() const
{
    // Deterministic enumeration: kernels in id order (std::map), slots in
    // index order — identical on record and on replay of the same run.
    std::vector<std::pair<cluster::KernelId, std::int32_t>> live;
    for (const auto& [kernel_id, record] : kernels_) {
        if (!record.alive || !record.created || record.migrating) {
            continue;
        }
        for (std::size_t i = 0; i < record.slots.size(); ++i) {
            const ReplicaSlot& slot = record.slots[i];
            if (slot.alive && slot.replica && slot.replica->running()) {
                live.push_back({kernel_id, static_cast<std::int32_t>(i)});
            }
        }
    }
    return live;
}

net::NodeId
SchedulerShard::chaos_resolve_endpoint(std::uint32_t slot)
{
    const auto live = chaos_live_replicas();
    if (live.empty()) {
        return net::kNoNode;
    }
    const auto [kernel_id, index] = live[slot % live.size()];
    const auto it = kernels_.find(kernel_id);
    return it->second.slots[index].replica->raft().id();
}

bool
SchedulerShard::chaos_crash_replica(std::uint32_t slot)
{
    const auto live = chaos_live_replicas();
    if (live.empty()) {
        return false;
    }
    const auto [kernel_id, index] = live[slot % live.size()];
    chaos_downed_[slot] = {kernel_id, index};
    inject_replica_failure(kernel_id, index);
    return true;
}

bool
SchedulerShard::chaos_restart_replica(std::uint32_t slot)
{
    const auto it = chaos_downed_.find(slot);
    if (it == chaos_downed_.end()) {
        return false;
    }
    const auto [kernel_id, index] = it->second;
    chaos_downed_.erase(it);
    const auto kit = kernels_.find(kernel_id);
    if (kit == kernels_.end() || !kit->second.alive) {
        return false;
    }
    ReplicaSlot& slot_ref = kit->second.slots[index];
    if (!slot_ref.alive || slot_ref.replica == nullptr ||
        slot_ref.replica->running()) {
        // The health checker already replaced (or a migration repaired)
        // this replica; both recovery paths are legitimate outcomes.
        return false;
    }
    slot_ref.replica->restart();
    return true;
}

double
SchedulerShard::cluster_sr() const
{
    return cluster_.cluster_subscription_ratio(
        config_.kernel.replica_count);
}

std::vector<std::int32_t>
SchedulerShard::bound_devices(cluster::KernelId kernel_id,
                               std::int32_t index)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || index < 0 ||
        static_cast<std::size_t>(index) >= it->second.slots.size()) {
        return {};
    }
    return it->second.slots[index].bound_devices;
}

std::size_t
SchedulerShard::live_kernels() const
{
    std::size_t count = 0;
    for (const auto& [id, record] : kernels_) {
        if (record.alive) {
            ++count;
        }
    }
    return count;
}

kernel::KernelReplica*
SchedulerShard::replica(cluster::KernelId kernel_id, std::int32_t index)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || index < 0 ||
        static_cast<std::size_t>(index) >= it->second.slots.size()) {
        return nullptr;
    }
    return it->second.slots[index].replica.get();
}

void
SchedulerShard::inject_replica_failure(cluster::KernelId kernel_id,
                                        std::int32_t index)
{
    kernel::KernelReplica* target = replica(kernel_id, index);
    if (target != nullptr) {
        target->stop();
    }
}

void
SchedulerShard::provision_server(SchedulerEvent::Kind reason)
{
    ++servers_provisioning_;
    record_event(reason);
    if (reason == SchedulerEvent::Kind::kScaleOut) {
        ++stats_.scale_outs;
    }
    const sim::Time delay =
        sample(config_.server_provision_min, config_.server_provision_max);
    simulation_.schedule_after(delay, [this] {
        --servers_provisioning_;
        cluster::GpuServer& server = cluster_.add_server();
        prewarm_.register_server(server.id());
        on_server_ready(server.id());
    });
}

void
SchedulerShard::on_server_ready(cluster::ServerId id)
{
    (void)id;
    try_place_pending_kernels();
}

cluster::KernelId
SchedulerShard::start_kernel(const cluster::ResourceSpec& spec,
                              StartKernelCallback callback)
{
    return start_kernel_internal(spec, std::move(callback),
                                 /*count_created=*/true);
}

cluster::KernelId
SchedulerShard::start_kernel_internal(const cluster::ResourceSpec& spec,
                                      StartKernelCallback callback,
                                      bool count_created)
{
    PendingKernel pending;
    pending.id = next_kernel_id_;
    next_kernel_id_ += identity_.count;
    pending.spec = spec;
    pending.callback = std::move(callback);
    pending.count_created = count_created;
    const cluster::KernelId id = pending.id;
    pending_kernels_.push_back(std::move(pending));
    simulation_.schedule_after(config_.gs_processing,
                               [this] { try_place_pending_kernels(); });
    return id;
}

void
SchedulerShard::try_place_pending_kernels()
{
    while (!pending_kernels_.empty()) {
        PendingKernel& front = pending_kernels_.front();
        const std::size_t replicas =
            static_cast<std::size_t>(config_.kernel.replica_count);
        const std::vector<cluster::ServerId> servers = placement_->pick(
            cluster_, front.spec, replicas, config_.kernel.replica_count);
        if (servers.size() < replicas) {
            // §3.4.2: failed placement triggers a scale-out; placement is
            // paused and resumes when the new servers register.
            if (!front.scale_out_requested || servers_provisioning_ == 0) {
                const std::size_t missing = replicas - servers.size();
                for (std::size_t i = 0; i < missing; ++i) {
                    provision_server(SchedulerEvent::Kind::kScaleOut);
                }
                front.scale_out_requested = true;
            }
            return;
        }
        PendingKernel pending = std::move(front);
        pending_kernels_.pop_front();
        place_kernel(std::move(pending), servers);
    }
}

void
SchedulerShard::place_kernel(PendingKernel pending,
                              const std::vector<cluster::ServerId>& servers)
{
    KernelRecord& record = kernels_[pending.id];
    record.id = pending.id;
    record.spec = pending.spec;
    record.count_created = pending.count_created;
    record.slots.resize(servers.size());

    auto remaining = std::make_shared<std::size_t>(servers.size());
    auto callback = std::make_shared<StartKernelCallback>(
        std::move(pending.callback));
    for (std::size_t i = 0; i < servers.size(); ++i) {
        cluster::GpuServer* server = cluster_.find(servers[i]);
        assert(server != nullptr);
        server->subscribe(record.spec);
        record.slots[i].server = servers[i];

        cluster::Container container;
        container.id = next_container_id_++;
        container.server = servers[i];
        container.kernel = record.id;
        container.replica_index = static_cast<std::int32_t>(i);
        container.subscribed = record.spec;
        container.state = cluster::ContainerState::kProvisioning;
        record.slots[i].container = container.id;
        server->add_container(container);

        ++stats_.cold_starts;
        const sim::Time cold = sample(config_.timings.cold_start_min,
                                      config_.timings.cold_start_max);
        const cluster::KernelId kernel_id = record.id;
        const auto index = static_cast<std::int32_t>(i);
        simulation_.schedule_after(
            cold, [this, kernel_id, index, remaining, callback] {
                const auto it = kernels_.find(kernel_id);
                if (it == kernels_.end() || !it->second.alive) {
                    return;
                }
                KernelRecord& rec = it->second;
                cluster::GpuServer* host =
                    cluster_.find(rec.slots[index].server);
                if (host != nullptr) {
                    if (cluster::Container* c = host->find_container(
                            rec.slots[index].container)) {
                        c->state = cluster::ContainerState::kIdle;
                        c->ready_at = simulation_.now();
                    }
                }
                if (--*remaining == 0) {
                    // All containers provisioned: start the replicas and
                    // wait for their Raft group to elect a leader.
                    for (std::size_t j = 0; j < rec.slots.size(); ++j) {
                        create_replica(rec, static_cast<std::int32_t>(j),
                                       rec.slots[j].server,
                                       /*passive=*/false);
                    }
                    const cluster::KernelId kid = rec.id;
                    auto tries = std::make_shared<int>(0);
                    // Poll every 200 ms until a Raft leader emerges. The
                    // poller function must not capture its own shared_ptr
                    // (a refcount cycle leaks it); each scheduled
                    // continuation holds the strong reference instead.
                    auto poller = std::make_shared<std::function<void()>>();
                    std::weak_ptr<std::function<void()>> weak_poller =
                        poller;
                    *poller = [this, kid, callback, tries, weak_poller] {
                        const auto kit = kernels_.find(kid);
                        if (kit == kernels_.end() || !kit->second.alive) {
                            (*callback)(kid, false);
                            return;
                        }
                        bool has_leader = false;
                        for (const auto& slot : kit->second.slots) {
                            if (slot.alive &&
                                slot.replica->raft().role() ==
                                    raft::Role::kLeader) {
                                has_leader = true;
                                break;
                            }
                        }
                        if (has_leader || ++*tries > 300) {
                            if (kit->second.count_created) {
                                ++stats_.kernels_created;
                                record_event(
                                    SchedulerEvent::Kind::kKernelCreated);
                            }
                            kit->second.created = true;
                            (*callback)(kid, true);
                            return;
                        }
                        if (auto self = weak_poller.lock()) {
                            simulation_.schedule_after(
                                200 * sim::kMillisecond,
                                [self] { (*self)(); });
                        }
                    };
                    (*poller)();
                }
            });
    }
}

void
SchedulerShard::create_replica(KernelRecord& record, std::int32_t index,
                                cluster::ServerId server, bool passive)
{
    // Allocate Raft endpoints lazily but deterministically: founding
    // replicas of a kernel share one member list.
    if (!passive) {
        // Founding path: allocate ids for the whole group on first call.
        bool any_started = false;
        for (const auto& slot : record.slots) {
            if (slot.replica) {
                any_started = true;
                break;
            }
        }
        if (!any_started) {
            std::vector<net::NodeId> members;
            for (std::size_t i = 0; i < record.slots.size(); ++i) {
                members.push_back(next_raft_id_++);
            }
            for (std::size_t i = 0; i < record.slots.size(); ++i) {
                record.slots[i].replica =
                    std::make_unique<kernel::KernelReplica>(
                        simulation_, network_, *store_, config_.kernel,
                        record.id, static_cast<std::int32_t>(i), members[i],
                        members, sim::Rng(rng_.next_u64()));
                install_hooks(record, static_cast<std::int32_t>(i));
            }
        }
        record.slots[index].alive = true;
        record.slots[index].server = server;
        record.slots[index].replica->start();
        return;
    }
    // Migration path: join an existing group passively. The member list is
    // taken from a surviving replica.
    std::vector<net::NodeId> members;
    for (const auto& slot : record.slots) {
        if (slot.alive && slot.replica) {
            members = slot.replica->raft().members();
            break;
        }
    }
    const net::NodeId new_id = next_raft_id_++;
    members.push_back(new_id);
    record.slots[index].replica = std::make_unique<kernel::KernelReplica>(
        simulation_, network_, *store_, config_.kernel, record.id, index,
        new_id, members, sim::Rng(rng_.next_u64()));
    install_hooks(record, index);
    record.slots[index].alive = true;
    record.slots[index].server = server;
    record.slots[index].replica->start_passive();
}

void
SchedulerShard::install_hooks(KernelRecord& record, std::int32_t index)
{
    const cluster::KernelId kernel_id = record.id;
    kernel::KernelReplica::Hooks hooks;
    hooks.try_commit = [this, kernel_id,
                        index](const cluster::ResourceSpec& spec) {
        const auto it = kernels_.find(kernel_id);
        if (it == kernels_.end()) {
            return false;
        }
        cluster::GpuServer* server =
            cluster_.find(it->second.slots[index].server);
        if (server == nullptr) {
            return false;
        }
        // §3.3: bind concrete GPU devices; their ids accompany the
        // execute_request metadata to the replica.
        auto devices = server->commit_devices(spec);
        if (!devices) {
            return false;
        }
        it->second.slots[index].bound_devices = std::move(*devices);
        return true;
    };
    hooks.release = [this, kernel_id,
                     index](const cluster::ResourceSpec& spec) {
        const auto it = kernels_.find(kernel_id);
        if (it == kernels_.end()) {
            return;
        }
        ReplicaSlot& slot = it->second.slots[index];
        cluster::GpuServer* server = cluster_.find(slot.server);
        if (server != nullptr) {
            server->release_devices(spec, slot.bound_devices);
        }
        slot.bound_devices.clear();
    };
    hooks.on_result = [this, kernel_id](const kernel::ExecutionResult& r) {
        on_result(kernel_id, r);
    };
    hooks.on_election_failed = [this,
                                kernel_id](kernel::ElectionId election) {
        on_election_failed(kernel_id, election);
    };
    hooks.on_sync_latency = [this](sim::Time latency) {
        sync_latencies_ms_.add(sim::to_millis(latency));
    };
    record.slots[index].replica->set_hooks(std::move(hooks));
}

void
SchedulerShard::stop_kernel(cluster::KernelId kernel_id)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    record.alive = false;
    for (ReplicaSlot& slot : record.slots) {
        if (slot.replica) {
            slot.replica->stop();
            graveyard_.push_back(std::move(slot.replica));
        }
        if (slot.alive) {
            if (cluster::GpuServer* server = cluster_.find(slot.server)) {
                server->unsubscribe(record.spec);
                server->remove_container(slot.container);
            }
            slot.alive = false;
        }
    }
    record.pending.clear();
}

void
SchedulerShard::begin_session(std::int64_t session,
                              const cluster::ResourceSpec& spec)
{
    sessions_.cold_at(sessions_.insert(session)).spec = spec;
    const cluster::KernelId kernel = start_kernel_internal(
        spec,
        [this, session](cluster::KernelId id, bool ok) {
            on_session_kernel(session, id, ok, std::string());
        },
        /*count_created=*/true);
    // Re-find: the creation callback may have fired synchronously (failed
    // placement) and table rows are not reference-stable across inserts.
    const std::int32_t row = sessions_.find(session);
    if (row >= 0) {
        sessions_.cold_at(row).kernel = kernel;
    }
}

void
SchedulerShard::on_session_kernel(std::int64_t session,
                                  cluster::KernelId kernel, bool ok,
                                  const std::string& checkpoint)
{
    const std::int32_t row = sessions_.find(session);
    if (row < 0) {
        // Session extracted away while its kernel was still being
        // created — cannot happen (creating sessions are not movable),
        // but fail safe: release the orphan kernel.
        if (ok) {
            stop_kernel(kernel);
        }
        return;
    }
    SessionRecord& record = sessions_.cold_at(row);
    std::uint8_t& flags = sessions_.flags_at(row);
    record.kernel = kernel;
    if (!ok) {
        // Placement ultimately failed: buffered cells stay unsubmitted,
        // mirroring the monolithic driver whose client never drains its
        // queue when start_kernel reports failure.
        flags |= kSessionFailed;
        return;
    }
    flags |= kSessionCreated;
    if (!checkpoint.empty()) {
        const auto kit = kernels_.find(kernel);
        if (kit != kernels_.end()) {
            for (ReplicaSlot& slot : kit->second.slots) {
                if (slot.alive && slot.replica) {
                    slot.replica->restore_state(checkpoint);
                }
            }
        }
    }
    if ((flags & kSessionEnded) != 0) {
        record.buffered.clear();
        stop_kernel(kernel);
        return;
    }
    while (!record.buffered.empty()) {
        CarriedExecution cell = std::move(record.buffered.front());
        record.buffered.pop_front();
        submit_execute(kernel, std::move(cell.code), cell.is_gpu,
                       cell.submitted_at, std::move(cell.callback));
    }
}

bool
SchedulerShard::submit_session(std::int64_t session, std::string code,
                               bool is_gpu, sim::Time submitted_at,
                               ExecuteCallback callback)
{
    const std::int32_t row = sessions_.find(session);
    if (row < 0) {
        return false;
    }
    const std::uint8_t flags = sessions_.flags_at(row);
    if ((flags & (kSessionEnded | kSessionFailed)) != 0) {
        return false;
    }
    ++sessions_.weight_at(row);
    SessionRecord& record = sessions_.cold_at(row);
    if ((flags & kSessionCreated) != 0) {
        submit_execute(record.kernel, std::move(code), is_gpu,
                       submitted_at, std::move(callback));
        return true;
    }
    record.buffered.push_back(CarriedExecution{
        std::move(code), is_gpu, submitted_at, std::move(callback)});
    return true;
}

void
SchedulerShard::end_session(std::int64_t session)
{
    const std::int32_t row = sessions_.find(session);
    if (row < 0 || (sessions_.flags_at(row) & kSessionEnded) != 0) {
        return;
    }
    std::uint8_t& flags = sessions_.flags_at(row);
    flags |= kSessionEnded;
    SessionRecord& record = sessions_.cold_at(row);
    record.buffered.clear();
    if ((flags & kSessionCreated) != 0) {
        stop_kernel(record.kernel);
    }
    // Still-creating kernels are stopped by on_session_kernel when the
    // creation callback observes the ended flag.
}

bool
SchedulerShard::session_movable(std::int64_t session) const
{
    const std::int32_t row = sessions_.find(session);
    if (row < 0) {
        return false;
    }
    const std::uint8_t flags = sessions_.flags_at(row);
    if ((flags & kSessionCreated) == 0 ||
        (flags & (kSessionEnded | kSessionFailed)) != 0) {
        return false;
    }
    const auto kit = kernels_.find(sessions_.cold_at(row).kernel);
    return kit != kernels_.end() && kit->second.alive &&
           kit->second.created && !kit->second.migrating;
}

bool
SchedulerShard::extract_session(std::int64_t session, SessionExtract& out)
{
    if (!session_movable(session)) {
        return false;
    }
    SessionRecord& record = sessions_.cold_at(sessions_.find(session));
    KernelRecord& kernel = kernels_[record.kernel];
    out.session = session;
    out.spec = record.spec;
    out.checkpoint.clear();
    for (const ReplicaSlot& slot : kernel.slots) {
        if (slot.alive && slot.replica) {
            out.checkpoint = slot.replica->checkpoint_state();
            break;
        }
    }
    // Queued work travels with the session: pending executions first (in
    // election — i.e. submission — order; their in-flight continuations
    // find the pending entry gone and bail), then the pre-creation
    // buffer. stop_kernel drops pending without firing callbacks, so
    // moving them out first is what keeps every cell exactly-once.
    out.work.clear();
    for (auto& [election, pending] : kernel.pending) {
        (void)election;
        out.work.push_back(CarriedExecution{
            std::move(pending.code), pending.is_gpu,
            pending.trace.submitted_at, std::move(pending.callback)});
    }
    kernel.pending.clear();
    stop_kernel(kernel.id);
    for (CarriedExecution& cell : record.buffered) {
        out.work.push_back(std::move(cell));
    }
    sessions_.erase(session);
    return true;
}

void
SchedulerShard::adopt_session(SessionExtract extract)
{
    const std::int64_t session = extract.session;
    {
        const std::int32_t row = sessions_.insert(session);
        SessionRecord& record = sessions_.cold_at(row);
        record.spec = extract.spec;
        sessions_.flags_at(row) = 0;
        record.buffered = std::deque<CarriedExecution>(
            std::make_move_iterator(extract.work.begin()),
            std::make_move_iterator(extract.work.end()));
    }
    const cluster::KernelId kernel = start_kernel_internal(
        extract.spec,
        [this, session, checkpoint = std::move(extract.checkpoint)](
            cluster::KernelId id, bool ok) {
            on_session_kernel(session, id, ok, checkpoint);
        },
        /*count_created=*/false);
    // Re-find (see begin_session): the callback may fire synchronously.
    const std::int32_t row = sessions_.find(session);
    if (row >= 0) {
        sessions_.cold_at(row).kernel = kernel;
    }
}

std::size_t
SchedulerShard::session_count() const
{
    std::size_t live = 0;
    for (const std::uint8_t flags : sessions_.flags()) {
        if ((flags & kSessionEnded) == 0) {
            ++live;
        }
    }
    return live;
}

void
SchedulerShard::harvest_window_load(ShardLoad& load,
                                    std::vector<SessionLoad>& sessions)
{
    load.sessions = 0;
    load.weight = 0;
    sessions.clear();
    // SoA streaming scan: the flags and weights columns are the only
    // bytes touched for the idle majority. The table iterates in
    // insertion/swap order, so sort the (small) weighted subset back into
    // the id order the routing planner's inputs are pinned to.
    const auto& ids = sessions_.ids();
    const auto& flags = sessions_.flags();
    const auto& weights = sessions_.weights();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if ((flags[i] & kSessionEnded) == 0) {
            ++load.sessions;
        }
        const std::uint64_t weight = weights[i];
        if (weight == 0) {
            continue;
        }
        load.weight += weight;
        sessions.push_back(SessionLoad{ids[i], weight, false});
        sessions_.weight_at(static_cast<std::int32_t>(i)) = 0;
    }
    std::sort(sessions.begin(), sessions.end(),
              [](const SessionLoad& a, const SessionLoad& b) {
                  return a.session < b.session;
              });
    for (SessionLoad& entry : sessions) {
        entry.movable = session_movable(entry.session);
    }
}

std::int32_t
SchedulerShard::pick_designated(const KernelRecord& record) const
{
    std::int32_t last_executor = -1;
    for (const auto& slot : record.slots) {
        if (slot.alive && slot.replica) {
            last_executor = slot.replica->last_executor();
            break;
        }
    }
    std::int32_t best = -1;
    std::int32_t best_idle = -1;
    for (std::size_t i = 0; i < record.slots.size(); ++i) {
        const ReplicaSlot& slot = record.slots[i];
        if (!slot.alive || slot.replica == nullptr ||
            slot.replica->busy()) {
            continue;
        }
        const cluster::GpuServer* server = cluster_.find(slot.server);
        if (server == nullptr || !server->can_commit(record.spec)) {
            continue;
        }
        // Prefer the previous executor (its state is resident), then the
        // server with the most idle GPUs.
        if (static_cast<std::int32_t>(i) == last_executor) {
            return static_cast<std::int32_t>(i);
        }
        if (server->idle_gpus() > best_idle) {
            best_idle = server->idle_gpus();
            best = static_cast<std::int32_t>(i);
        }
    }
    return best;
}

void
SchedulerShard::submit_execute(cluster::KernelId kernel_id,
                                std::string code, bool is_gpu,
                                sim::Time submitted_at,
                                ExecuteCallback callback)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        kernel::ExecutionResult result;
        result.status = kernel::ExecutionStatus::kError;
        result.error = "unknown kernel";
        RequestTrace trace;
        trace.submitted_at = submitted_at;
        trace.aborted = true;
        callback(result, trace);
        return;
    }
    KernelRecord& record = it->second;
    const kernel::ElectionId election = record.next_election++;
    PendingExecution pending;
    pending.code = std::move(code);
    pending.is_gpu = is_gpu;
    pending.callback = std::move(callback);
    pending.trace.submitted_at = submitted_at;
    record.pending.emplace(election, std::move(pending));

    const sim::Time to_gs = sample(config_.hops.client_to_gs_min,
                                   config_.hops.client_to_gs_max);
    simulation_.schedule_after(to_gs, [this, kernel_id, election] {
        const auto kit = kernels_.find(kernel_id);
        if (kit == kernels_.end() || !kit->second.alive) {
            return;
        }
        KernelRecord& rec = kit->second;
        const auto pit = rec.pending.find(election);
        if (pit == rec.pending.end()) {
            return;
        }
        pit->second.trace.gs_received = simulation_.now();
        simulation_.schedule_after(
            config_.gs_processing, [this, kernel_id, election] {
                const auto kit2 = kernels_.find(kernel_id);
                if (kit2 == kernels_.end() || !kit2->second.alive) {
                    return;
                }
                KernelRecord& rec2 = kit2->second;
                const auto pit2 = rec2.pending.find(election);
                if (pit2 == rec2.pending.end()) {
                    return;
                }
                pit2->second.trace.gs_dispatched = simulation_.now();
                std::int32_t designated = -1;
                if (config_.yield_conversion && pit2->second.is_gpu) {
                    designated = pick_designated(rec2);
                    if (designated >= 0) {
                        ++stats_.yield_conversions;
                    }
                }
                dispatch_execution(rec2, election, designated);
            });
    });
}

void
SchedulerShard::dispatch_execution(KernelRecord& record,
                                    kernel::ElectionId election,
                                    std::int32_t designated)
{
    const auto pit = record.pending.find(election);
    if (pit == record.pending.end()) {
        return;
    }
    PendingExecution& pending = pit->second;
    const sim::Time to_ls =
        sample(config_.hops.gs_to_ls_min, config_.hops.gs_to_ls_max);
    const sim::Time to_replica = sample(config_.hops.ls_to_replica_min,
                                        config_.hops.ls_to_replica_max);
    pending.trace.ls_received = simulation_.now() + to_ls;
    pending.trace.replica_received =
        pending.trace.ls_received + config_.ls_processing + to_replica;

    for (std::size_t i = 0; i < record.slots.size(); ++i) {
        ReplicaSlot& slot = record.slots[i];
        if (!slot.alive || slot.replica == nullptr) {
            continue;
        }
        kernel::ExecuteRequest request;
        request.election = election;
        request.code = pending.code;
        request.is_gpu = pending.is_gpu;
        request.resources = record.spec;
        request.submitted_at = pending.trace.submitted_at;
        request.yield_converted =
            designated >= 0 && static_cast<std::int32_t>(i) != designated;
        kernel::KernelReplica* replica_ptr = slot.replica.get();
        simulation_.schedule_after(
            to_ls + config_.ls_processing + to_replica,
            [replica_ptr, request] {
                replica_ptr->handle_execute_request(request);
            });
    }
}

void
SchedulerShard::on_result(cluster::KernelId kernel_id,
                           const kernel::ExecutionResult& result)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end()) {
        return;
    }
    KernelRecord& record = it->second;
    const auto pit = record.pending.find(result.election);
    if (pit == record.pending.end()) {
        return;
    }
    PendingExecution pending = std::move(pit->second);
    record.pending.erase(pit);

    pending.trace.execution_started = result.execution_started_at;
    pending.trace.execution_finished = result.execution_finished_at;
    pending.trace.replica_replied = result.replied_at;
    pending.trace.election_latency = result.election_latency;

    ++stats_.executions_completed;
    if (pending.is_gpu) {
        ++stats_.gpu_executions;
        if (result.gpus_committed_immediately) {
            ++stats_.immediate_commits;
        }
        if (result.executor_reused) {
            ++stats_.executor_reuses;
        }
    }

    // Reply path: replica -> LS -> GS -> client (§3.2.2 steps 9-10; the
    // replies of the standby replicas are aggregated away by the GS).
    const sim::Time back =
        sample(config_.hops.ls_to_replica_min,
               config_.hops.ls_to_replica_max) +
        config_.ls_processing +
        sample(config_.hops.gs_to_ls_min, config_.hops.gs_to_ls_max) +
        sample(config_.hops.client_to_gs_min, config_.hops.client_to_gs_max);
    simulation_.schedule_after(
        back, [this, result, pending = std::move(pending)]() mutable {
            pending.trace.client_replied = simulation_.now();
            if (pending.callback) {
                pending.callback(result, pending.trace);
            }
        });
}

void
SchedulerShard::on_election_failed(cluster::KernelId kernel_id,
                                    kernel::ElectionId election)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    if (!record.failed_seen.insert(election).second) {
        return;  // Each replica reports the failure; act once.
    }
    if (record.pending.find(election) == record.pending.end()) {
        return;
    }
    ++stats_.elections_failed;
    begin_migration(kernel_id, election);
}

void
SchedulerShard::begin_migration(cluster::KernelId kernel_id,
                                 kernel::ElectionId election)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    if (record.migrating) {
        simulation_.schedule_after(config_.migration_retry,
                                   [this, kernel_id, election] {
                                       begin_migration(kernel_id, election);
                                   });
        return;
    }
    record.migrating = true;
    ++stats_.migrations;
    record_event(SchedulerEvent::Kind::kMigration);

    // Victim: the replica on the most GPU-saturated server.
    std::int32_t victim = -1;
    std::int32_t worst_idle = 1 << 30;
    for (std::size_t i = 0; i < record.slots.size(); ++i) {
        const ReplicaSlot& slot = record.slots[i];
        if (!slot.alive || slot.replica == nullptr) {
            continue;
        }
        const cluster::GpuServer* server = cluster_.find(slot.server);
        const std::int32_t idle =
            server != nullptr ? server->idle_gpus() : 0;
        if (idle < worst_idle) {
            worst_idle = idle;
            victim = static_cast<std::int32_t>(i);
        }
    }
    if (victim < 0) {
        record.migrating = false;
        abort_execution(kernel_id, election, "no replica to migrate");
        return;
    }
    // §3.2.3: the selected replica persists its state to the data store
    // before migrating.
    const std::string checkpoint =
        record.slots[victim].replica->checkpoint_state();
    store_->write(checkpoint_key(kernel_id),
                  checkpoint_bytes(record.slots[victim].replica->ns()),
                  [this, kernel_id, election, victim,
                   checkpoint](sim::Time) {
                      continue_migration(kernel_id, election, victim,
                                         checkpoint);
                  });
}

cluster::ServerId
SchedulerShard::pick_migration_target(const KernelRecord& record)
{
    std::set<cluster::ServerId> occupied;
    for (const ReplicaSlot& slot : record.slots) {
        if (slot.alive) {
            occupied.insert(slot.server);
        }
    }
    cluster::ServerId best = cluster::kNoServer;
    std::int32_t best_idle = -1;
    for (const auto& [id, server] : cluster_.servers()) {
        if (server->draining() || occupied.count(id) > 0 ||
            !server->can_commit(record.spec)) {
            continue;
        }
        if (server->idle_gpus() > best_idle) {
            best_idle = server->idle_gpus();
            best = id;
        }
    }
    return best;
}

void
SchedulerShard::continue_migration(cluster::KernelId kernel_id,
                                    kernel::ElectionId election,
                                    std::int32_t victim_index,
                                    const std::string& checkpoint)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    const cluster::ServerId target = pick_migration_target(record);
    if (target == cluster::kNoServer) {
        const auto pit = record.pending.find(election);
        // While a scale-out is in flight the retry clock pauses: the
        // migration is enqueued until the new server registers (§3.4.2
        // reserves resources for paused replicas on incoming servers).
        const bool provisioning = servers_provisioning_ > 0;
        if (pit != record.pending.end() &&
            (provisioning || pit->second.migration_retries++ <
                                 config_.migration_max_retries)) {
            if (config_.scale_out_on_failed_placement && !provisioning) {
                provision_server(SchedulerEvent::Kind::kScaleOut);
            }
            simulation_.schedule_after(
                config_.migration_retry,
                [this, kernel_id, election, victim_index, checkpoint] {
                    continue_migration(kernel_id, election, victim_index,
                                       checkpoint);
                });
        } else {
            ++stats_.migrations_aborted;
            record.migrating = false;
            abort_execution(kernel_id, election,
                            "migration aborted: no viable server");
        }
        return;
    }
    // Release the victim's container/subscription on its old server now
    // (the replica object itself is stopped in finish_migration), then
    // reserve the target with a placeholder container so the auto-scaler
    // cannot release that server while the migration is in flight.
    {
        ReplicaSlot& victim_slot = record.slots[victim_index];
        if (!victim_released_.insert({kernel_id, election}).second) {
            // retry path: already released
        } else if (cluster::GpuServer* old_server =
                       cluster_.find(victim_slot.server)) {
            old_server->unsubscribe(record.spec);
            old_server->remove_container(victim_slot.container);
        }
    }
    {
        cluster::GpuServer* reserve = cluster_.find(target);
        cluster::Container placeholder;
        placeholder.id = next_container_id_++;
        placeholder.server = target;
        placeholder.kernel = kernel_id;
        placeholder.replica_index = victim_index;
        placeholder.subscribed = record.spec;
        placeholder.state = cluster::ContainerState::kProvisioning;
        reserve->add_container(placeholder);
        record.slots[victim_index].container = placeholder.id;
    }
    sim::Time container_delay;
    bool used_prewarm = false;
    if (prewarm_.acquire(target)) {
        used_prewarm = true;
        ++stats_.prewarm_hits;
        container_delay = config_.timings.prewarm_assign;
    } else {
        ++stats_.cold_starts;
        container_delay = sample(config_.timings.cold_start_min,
                                 config_.timings.cold_start_max);
    }
    simulation_.schedule_after(
        container_delay,
        [this, kernel_id, election, victim_index, target, checkpoint,
         used_prewarm] {
            finish_migration(kernel_id, election, victim_index, target,
                             checkpoint, used_prewarm);
        });
}

void
SchedulerShard::finish_migration(cluster::KernelId kernel_id,
                                  kernel::ElectionId election,
                                  std::int32_t victim_index,
                                  cluster::ServerId target,
                                  const std::string& checkpoint,
                                  bool used_prewarm)
{
    (void)used_prewarm;
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    ReplicaSlot& victim_slot = record.slots[victim_index];
    const net::NodeId victim_raft_id = victim_slot.replica->raft().id();

    // Terminate the original replica (its container/subscription were
    // released when the target was reserved).
    victim_slot.replica->stop();
    graveyard_.push_back(std::move(victim_slot.replica));
    victim_slot.alive = false;

    // Ask the surviving majority to drop the old member. (As with every
    // retry chain here, the function captures itself weakly: the pending
    // continuation event owns the strong reference, so the chain frees
    // itself when it stops rescheduling.)
    auto try_remove = std::make_shared<std::function<void(int)>>();
    std::weak_ptr<std::function<void(int)>> weak_remove = try_remove;
    *try_remove = [this, kernel_id, election, victim_index, target,
                   checkpoint, victim_raft_id, weak_remove](int tries) {
        const auto kit = kernels_.find(kernel_id);
        if (kit == kernels_.end() || !kit->second.alive) {
            return;
        }
        KernelRecord& rec = kit->second;
        bool removed = true;
        raft::RaftNode* leader = nullptr;
        for (const ReplicaSlot& slot : rec.slots) {
            if (slot.alive && slot.replica) {
                const auto& members = slot.replica->raft().members();
                if (std::find(members.begin(), members.end(),
                              victim_raft_id) != members.end()) {
                    removed = false;
                }
                if (slot.replica->raft().role() == raft::Role::kLeader) {
                    leader = &slot.replica->raft();
                }
            }
        }
        if (removed) {
            // Membership updated: attach the new replica on the target.
            const auto pit = rec.pending.find(election);
            (void)pit;
            cluster::GpuServer* server = cluster_.find(target);
            if (server == nullptr) {
                // Cannot happen: the placeholder container pins the
                // server; guard anyway.
                rec.migrating = false;
                abort_execution(kernel_id, election,
                                "migration target disappeared");
                return;
            }
            server->subscribe(rec.spec);
            if (cluster::Container* placeholder = server->find_container(
                    rec.slots[victim_index].container)) {
                placeholder->state = cluster::ContainerState::kIdle;
                placeholder->ready_at = simulation_.now();
            }
            rec.slots[victim_index].server = target;
            create_replica(rec, victim_index, target, /*passive=*/true);

            // The new replica restores the persisted state (a data-store
            // read) before joining the Raft group.
            store_->read(
                checkpoint_key(kernel_id),
                [this, kernel_id, election, victim_index,
                 checkpoint](const storage::ReadResult&) {
                    const auto kit2 = kernels_.find(kernel_id);
                    if (kit2 == kernels_.end() || !kit2->second.alive) {
                        return;
                    }
                    KernelRecord& rec2 = kit2->second;
                    rec2.slots[victim_index].replica->restore_state(
                        checkpoint);
                    const net::NodeId new_id =
                        rec2.slots[victim_index].replica->raft().id();
                    // Add the new member, then wait for the config commit.
                    auto try_add =
                        std::make_shared<std::function<void(int)>>();
                    std::weak_ptr<std::function<void(int)>> weak_add =
                        try_add;
                    *try_add = [this, kernel_id, election, victim_index,
                                new_id, weak_add](int tries2) {
                        const auto kit3 = kernels_.find(kernel_id);
                        if (kit3 == kernels_.end() || !kit3->second.alive) {
                            return;
                        }
                        KernelRecord& rec3 = kit3->second;
                        bool added = false;
                        raft::RaftNode* leader2 = nullptr;
                        for (const ReplicaSlot& slot : rec3.slots) {
                            if (!slot.alive || !slot.replica) {
                                continue;
                            }
                            if (slot.replica->raft().role() ==
                                raft::Role::kLeader) {
                                leader2 = &slot.replica->raft();
                                const auto& members =
                                    slot.replica->raft().members();
                                if (std::find(members.begin(), members.end(),
                                              new_id) != members.end()) {
                                    added = true;
                                }
                            }
                        }
                        if (added) {
                            // Migration complete: resubmit the execution
                            // with the migrated replica designated. A
                            // fresh election id is required because the
                            // replicas' logs already hold the failed
                            // election's proposals.
                            rec3.migrating = false;
                            auto node = rec3.pending.extract(election);
                            if (!node.empty()) {
                                const kernel::ElectionId fresh =
                                    rec3.next_election++;
                                node.key() = fresh;
                                rec3.pending.insert(std::move(node));
                                auto& pending2 = rec3.pending.at(fresh);
                                pending2.trace.migrated = true;
                                dispatch_execution(rec3, fresh,
                                                   victim_index);
                            }
                            return;
                        }
                        if (leader2 != nullptr) {
                            leader2->propose_add_member(new_id);
                        }
                        if (tries2 > 300) {
                            rec3.migrating = false;
                            // Tear the half-joined replica back down; the
                            // health checker repairs the slot.
                            ReplicaSlot& broken =
                                rec3.slots[victim_index];
                            if (broken.replica) {
                                broken.replica->stop();
                                graveyard_.push_back(
                                    std::move(broken.replica));
                            }
                            broken.alive = false;
                            if (cluster::GpuServer* tserver =
                                    cluster_.find(broken.server)) {
                                if (tserver->find_container(
                                        broken.container) != nullptr) {
                                    tserver->unsubscribe(rec3.spec);
                                    tserver->remove_container(
                                        broken.container);
                                }
                            }
                            abort_execution(kernel_id, election,
                                            "migration: add-member timeout");
                            return;
                        }
                        if (auto self = weak_add.lock()) {
                            simulation_.schedule_after(
                                200 * sim::kMillisecond,
                                [self, tries2] { (*self)(tries2 + 1); });
                        }
                    };
                    (*try_add)(0);
                });
            return;
        }
        if (leader != nullptr) {
            leader->propose_remove_member(victim_raft_id);
        }
        if (tries > 300) {
            const auto kit4 = kernels_.find(kernel_id);
            if (kit4 != kernels_.end()) {
                KernelRecord& rec4 = kit4->second;
                rec4.migrating = false;
                // Drop the target placeholder; the health checker will
                // repair the dead slot later.
                if (cluster::GpuServer* tserver = cluster_.find(target)) {
                    tserver->remove_container(
                        rec4.slots[victim_index].container);
                }
            }
            abort_execution(kernel_id, election,
                            "migration: remove-member timeout");
            return;
        }
        if (auto self = weak_remove.lock()) {
            simulation_.schedule_after(
                200 * sim::kMillisecond,
                [self, tries] { (*self)(tries + 1); });
        }
    };
    (*try_remove)(0);
}

void
SchedulerShard::abort_execution(cluster::KernelId kernel_id,
                                 kernel::ElectionId election,
                                 const std::string& reason)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end()) {
        return;
    }
    KernelRecord& record = it->second;
    const auto pit = record.pending.find(election);
    if (pit == record.pending.end()) {
        return;
    }
    PendingExecution pending = std::move(pit->second);
    record.pending.erase(pit);
    ++stats_.executions_aborted;

    kernel::ExecutionResult result;
    result.election = election;
    result.status = kernel::ExecutionStatus::kError;
    result.error = reason;
    pending.trace.aborted = true;
    const sim::Time back = sample(config_.hops.client_to_gs_min,
                                  config_.hops.client_to_gs_max);
    simulation_.schedule_after(
        back, [this, result, pending = std::move(pending)]() mutable {
            pending.trace.client_replied = simulation_.now();
            if (pending.callback) {
                pending.callback(result, pending.trace);
            }
        });
}

void
SchedulerShard::run_autoscaler()
{
    AutoScalerInputs inputs;
    inputs.committed_gpus = cluster_.total_committed_gpus();
    inputs.total_gpus = cluster_.total_gpus();
    inputs.gpus_per_server = config_.server_shape.gpus;
    inputs.current_servers = static_cast<std::int32_t>(cluster_.size()) +
                             servers_provisioning_;
    std::vector<cluster::ServerId> idle;
    for (const auto& [id, server] : cluster_.servers()) {
        if (server->containers().empty() && !server->draining()) {
            idle.push_back(id);
        }
    }
    inputs.idle_servers = static_cast<std::int32_t>(idle.size());

    AutoScaleDecision decision =
        evaluate_autoscaler(inputs, config_.autoscaler);
    // Never shrink while placements are waiting for capacity: the pending
    // kernel (or in-flight provisioning) needs those servers.
    if (!pending_kernels_.empty() || servers_provisioning_ > 0) {
        decision.remove_servers = 0;
    }
    for (std::int32_t i = 0; i < decision.add_servers; ++i) {
        provision_server(SchedulerEvent::Kind::kScaleOut);
    }
    for (std::int32_t i = 0;
         i < decision.remove_servers &&
         i < static_cast<std::int32_t>(idle.size());
         ++i) {
        prewarm_.unregister_server(idle[i]);
        cluster_.remove_server(idle[i]);
        ++stats_.scale_ins;
        record_event(SchedulerEvent::Kind::kScaleIn);
    }
    simulation_.schedule_after(config_.autoscale_interval,
                               [this] { run_autoscaler(); });
}

void
SchedulerShard::run_prewarmer()
{
    for (const auto& [id, server] : cluster_.servers()) {
        const std::int32_t deficit = prewarm_.deficit(id);
        for (std::int32_t i = 0; i < deficit; ++i) {
            prewarm_.begin_refill(id);
            const sim::Time cold = sample(config_.timings.cold_start_min,
                                          config_.timings.cold_start_max);
            const cluster::ServerId server_id = id;
            simulation_.schedule_after(cold, [this, server_id] {
                prewarm_.complete_refill(server_id);
            });
        }
    }
    simulation_.schedule_after(config_.prewarm_check_interval,
                               [this] { run_prewarmer(); });
}

void
SchedulerShard::run_health_check()
{
    for (auto& [kernel_id, record] : kernels_) {
        if (!record.alive) {
            continue;
        }
        if (record.migrating || !record.created) {
            continue;  // being created or reshaped; slots are in flux
        }
        for (std::size_t i = 0; i < record.slots.size(); ++i) {
            ReplicaSlot& slot = record.slots[i];
            if (slot.alive && slot.replica && !slot.replica->running()) {
                // Fail-stop failure detected via missed heartbeats
                // (§3.2.5): replace the dead replica.
                slot.alive = false;
                ++stats_.replica_failovers;
                replace_replica(kernel_id, static_cast<std::int32_t>(i));
            } else if (!slot.alive && slot.replica == nullptr &&
                       !record.slots.empty()) {
                // Slot orphaned by an aborted migration: repair it so the
                // kernel regains full replication.
                ++stats_.replica_failovers;
                replace_replica(kernel_id, static_cast<std::int32_t>(i));
            }
        }
    }
    simulation_.schedule_after(config_.health_check_interval,
                               [this] { run_health_check(); });
}

void
SchedulerShard::replace_replica(cluster::KernelId kernel_id,
                                 std::int32_t index)
{
    const auto it = kernels_.find(kernel_id);
    if (it == kernels_.end() || !it->second.alive) {
        return;
    }
    KernelRecord& record = it->second;
    ReplicaSlot& slot = record.slots[index];
    const net::NodeId dead_raft_id =
        slot.replica ? slot.replica->raft().id() : net::kNoNode;

    // Release the dead replica's resources; the container check guards
    // against slots already cleaned up by an aborted migration.
    if (cluster::GpuServer* server = cluster_.find(slot.server)) {
        if (server->find_container(slot.container) != nullptr) {
            server->unsubscribe(record.spec);
            server->remove_container(slot.container);
        }
    }
    if (slot.replica) {
        graveyard_.push_back(std::move(slot.replica));
    }

    // Target: any server able to host the subscription (GPUs need not be
    // idle; a standby replica binds GPUs only when it executes).
    cluster::ServerId target = cluster::kNoServer;
    std::set<cluster::ServerId> occupied;
    for (const ReplicaSlot& other : record.slots) {
        if (other.alive) {
            occupied.insert(other.server);
        }
    }
    std::int32_t best_idle = -1;
    for (const auto& [id, server] : cluster_.servers()) {
        if (server->draining() || occupied.count(id) > 0 ||
            !record.spec.fits_within(server->capacity())) {
            continue;
        }
        if (server->idle_gpus() > best_idle) {
            best_idle = server->idle_gpus();
            target = id;
        }
    }
    if (target == cluster::kNoServer) {
        return;  // Next health check retries.
    }

    // Checkpoint from a surviving replica (they hold the synced state).
    std::string checkpoint;
    for (const ReplicaSlot& other : record.slots) {
        if (other.alive && other.replica) {
            checkpoint = other.replica->checkpoint_state();
            break;
        }
    }
    store_->write(checkpoint_key(kernel_id), checkpoint_bytes({}), nullptr);

    const sim::Time container_delay =
        prewarm_.acquire(target)
            ? (++stats_.prewarm_hits, config_.timings.prewarm_assign)
            : (++stats_.cold_starts,
               sample(config_.timings.cold_start_min,
                      config_.timings.cold_start_max));
    simulation_.schedule_after(container_delay, [this, kernel_id, index,
                                                 target, dead_raft_id,
                                                 checkpoint] {
        const auto kit = kernels_.find(kernel_id);
        if (kit == kernels_.end() || !kit->second.alive) {
            return;
        }
        KernelRecord& rec = kit->second;
        cluster::GpuServer* server = cluster_.find(target);
        if (server == nullptr) {
            return;
        }
        server->subscribe(rec.spec);
        cluster::Container container;
        container.id = next_container_id_++;
        container.server = target;
        container.kernel = kernel_id;
        container.replica_index = index;
        container.subscribed = rec.spec;
        container.state = cluster::ContainerState::kIdle;
        server->add_container(container);
        rec.slots[index].server = target;
        rec.slots[index].container = container.id;
        create_replica(rec, index, target, /*passive=*/true);
        rec.slots[index].replica->restore_state(checkpoint);

        const net::NodeId new_id = rec.slots[index].replica->raft().id();
        auto reconfig = std::make_shared<std::function<void(int)>>();
        std::weak_ptr<std::function<void(int)>> weak_reconfig = reconfig;
        *reconfig = [this, kernel_id, dead_raft_id, new_id,
                     weak_reconfig](int tries) {
            const auto kit2 = kernels_.find(kernel_id);
            if (kit2 == kernels_.end() || !kit2->second.alive ||
                tries > 600) {
                return;
            }
            KernelRecord& rec2 = kit2->second;
            raft::RaftNode* leader = nullptr;
            bool removed = true;
            bool added = false;
            for (const ReplicaSlot& slot2 : rec2.slots) {
                if (!slot2.alive || !slot2.replica) {
                    continue;
                }
                const auto& members = slot2.replica->raft().members();
                if (slot2.replica->raft().role() == raft::Role::kLeader) {
                    leader = &slot2.replica->raft();
                    removed = dead_raft_id == net::kNoNode ||
                              std::find(members.begin(), members.end(),
                                        dead_raft_id) == members.end();
                    added = std::find(members.begin(), members.end(),
                                      new_id) != members.end();
                }
            }
            if (removed && added) {
                return;  // Reconfiguration complete.
            }
            if (leader != nullptr) {
                if (!removed) {
                    leader->propose_remove_member(dead_raft_id);
                } else if (!added) {
                    leader->propose_add_member(new_id);
                }
            }
            if (auto self = weak_reconfig.lock()) {
                simulation_.schedule_after(
                    200 * sim::kMillisecond,
                    [self, tries] { (*self)(tries + 1); });
            }
        };
        (*reconfig)(0);
    });
}

}  // namespace nbos::sched
