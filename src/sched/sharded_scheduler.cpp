#include "sched/sharded_scheduler.hpp"

#include <thread>

namespace nbos::sched {

// Per-shard seeds come from sched::shard_seed (shard_router.hpp), shared
// with the sharded fast engine so both sharding layers mix seeds the same
// way.

ShardedGlobalScheduler::ShardedGlobalScheduler(SchedulerConfig config,
                                               std::uint64_t seed)
    : config_(std::move(config)),
      table_(config_.shards),
      policy_(make_routing_policy(config_.routing))
{
    const std::int32_t count = table_.shards();
    shards_.reserve(static_cast<std::size_t>(count));
    for (std::int32_t i = 0; i < count; ++i) {
        shards_.push_back(std::make_unique<ShardUnit>(
            config_, shard_seed(seed, i), ShardIdentity{i, count}));
    }
    loads_.assign(shards_.size(), ShardLoad{});
    window_events_.assign(shards_.size(), 0);
}

ShardedGlobalScheduler::~ShardedGlobalScheduler() = default;

void
ShardedGlobalScheduler::start()
{
    for (const auto& unit : shards_) {
        unit->shard.start();
    }
}

std::size_t
ShardedGlobalScheduler::shard_of_kernel(cluster::KernelId kernel_id) const
{
    // Invalid/sentinel ids (kNoKernel, 0) route to shard 0, whose own
    // unknown-kernel handling preserves the monolithic contract
    // (submit_execute errors the callback, stop_kernel is a no-op,
    // replica returns nullptr) instead of indexing out of bounds.
    if (kernel_id < 1) {
        return 0;
    }
    return static_cast<std::size_t>((kernel_id - 1) %
                                    static_cast<cluster::KernelId>(
                                        shards_.size()));
}

sim::Simulation&
ShardedGlobalScheduler::simulation(std::size_t shard)
{
    return shards_.at(shard)->simulation;
}

SchedulerShard&
ShardedGlobalScheduler::shard(std::size_t shard)
{
    return shards_.at(shard)->shard;
}

void
ShardedGlobalScheduler::start_kernel(std::int64_t session_id,
                                     const cluster::ResourceSpec& spec,
                                     StartKernelCallback callback)
{
    shards_[shard_of(session_id)]->shard.start_kernel(spec,
                                                      std::move(callback));
}

void
ShardedGlobalScheduler::stop_kernel(cluster::KernelId kernel_id)
{
    shards_[shard_of_kernel(kernel_id)]->shard.stop_kernel(kernel_id);
}

void
ShardedGlobalScheduler::submit_execute(cluster::KernelId kernel_id,
                                       std::string code, bool is_gpu,
                                       sim::Time submitted_at,
                                       ExecuteCallback callback)
{
    shards_[shard_of_kernel(kernel_id)]->shard.submit_execute(
        kernel_id, std::move(code), is_gpu, submitted_at,
        std::move(callback));
}

kernel::KernelReplica*
ShardedGlobalScheduler::replica(cluster::KernelId kernel_id,
                                std::int32_t index)
{
    return shards_[shard_of_kernel(kernel_id)]->shard.replica(kernel_id,
                                                              index);
}

void
ShardedGlobalScheduler::inject_replica_failure(cluster::KernelId kernel_id,
                                               std::int32_t index)
{
    shards_[shard_of_kernel(kernel_id)]->shard.inject_replica_failure(
        kernel_id, index);
}

std::size_t
ShardedGlobalScheduler::admit_session(std::int64_t session)
{
    const std::int32_t target =
        policy_->admit(session, table_, loads_);
    table_.assign(session, target);
    const auto index = static_cast<std::size_t>(target);
    loads_[index].sessions += 1;
    loads_[index].weight += 1;
    return index;
}

void
ShardedGlobalScheduler::begin_session(std::int64_t session,
                                      const cluster::ResourceSpec& spec)
{
    shards_[shard_of(session)]->shard.begin_session(session, spec);
}

bool
ShardedGlobalScheduler::submit_session_execute(std::int64_t session,
                                               std::string code,
                                               bool is_gpu,
                                               sim::Time submitted_at,
                                               ExecuteCallback callback)
{
    return shards_[shard_of(session)]->shard.submit_session(
        session, std::move(code), is_gpu, submitted_at,
        std::move(callback));
}

void
ShardedGlobalScheduler::end_session(std::int64_t session)
{
    shards_[shard_of(session)]->shard.end_session(session);
    table_.forget(session);
}

std::size_t
ShardedGlobalScheduler::rebalance_window()
{
    // Harvest in shard order: the merged loads (and every decision made
    // from them) are a pure function of per-shard state, independent of
    // whether the closing window ran its shards serially or in parallel.
    std::vector<ShardLoad> loads(shards_.size());
    std::vector<std::vector<SessionLoad>> sessions(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        shards_[i]->shard.harvest_window_load(loads[i], sessions[i]);
        const std::uint64_t executed =
            shards_[i]->simulation.events_executed();
        loads[i].events = executed - window_events_[i];
        window_events_[i] = executed;
    }
    loads_ = loads;
    const std::vector<MigrationDecision> plan =
        policy_->plan(loads, sessions);
    std::size_t applied = 0;
    for (const MigrationDecision& move : plan) {
        SchedulerShard::SessionExtract extract;
        if (!shards_[static_cast<std::size_t>(move.from)]
                 ->shard.extract_session(move.session, extract)) {
            continue;
        }
        shards_[static_cast<std::size_t>(move.to)]->shard.adopt_session(
            std::move(extract));
        table_.assign(move.session, move.to);
        ++sessions_rebalanced_;
        ++applied;
    }
    return applied;
}

std::vector<ShardLoadSample>
ShardedGlobalScheduler::shard_loads() const
{
    std::vector<ShardLoadSample> samples;
    samples.reserve(shards_.size());
    std::uint64_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->simulation.events_executed();
    }
    for (const auto& unit : shards_) {
        ShardLoadSample sample;
        sample.sessions =
            static_cast<std::int64_t>(unit->shard.live_kernels());
        sample.events = unit->simulation.events_executed();
        sample.busy_fraction =
            total == 0 ? 0.0
                       : static_cast<double>(sample.events) /
                             static_cast<double>(total);
        samples.push_back(sample);
    }
    return samples;
}

void
ShardedGlobalScheduler::run_until(sim::Time t)
{
    if (config_.shard_parallel && shards_.size() > 1) {
        // One thread per sibling shard; shard 0 runs on the calling
        // thread, saving one spawn per window. Shards are fully disjoint
        // (own simulation, network, cluster, store, RNG), so the only
        // synchronization needed is the fork/join itself; thread::join
        // gives the happens-before edge for the post-window merges.
        std::vector<std::thread> threads;
        threads.reserve(shards_.size() - 1);
        for (std::size_t i = 1; i < shards_.size(); ++i) {
            ShardUnit* unit = shards_[i].get();
            threads.emplace_back(
                [unit, t] { unit->simulation.run_until(t); });
        }
        shards_.front()->simulation.run_until(t);
        for (std::thread& thread : threads) {
            thread.join();
        }
    } else {
        for (const auto& unit : shards_) {
            unit->simulation.run_until(t);
        }
    }
    now_ = t;
}

SchedulerStats
ShardedGlobalScheduler::stats() const
{
    SchedulerStats merged;
    for (const auto& unit : shards_) {
        merged += unit->shard.stats();
    }
    if (shards_.size() > 1) {
        merged.shard_loads = shard_loads();
    }
    return merged;
}

std::vector<SchedulerEvent>
ShardedGlobalScheduler::events() const
{
    std::vector<std::vector<SchedulerEvent>> per_shard;
    per_shard.reserve(shards_.size());
    for (const auto& unit : shards_) {
        per_shard.push_back(unit->shard.events());
    }
    return merge_events(per_shard);
}

metrics::Percentiles
ShardedGlobalScheduler::sync_latencies_ms() const
{
    metrics::Percentiles merged;
    for (const auto& unit : shards_) {
        merged.add_all(unit->shard.sync_latencies_ms().sorted());
    }
    return merged;
}

metrics::Percentiles
ShardedGlobalScheduler::store_read_ms() const
{
    metrics::Percentiles merged;
    for (const auto& unit : shards_) {
        merged.add_all(unit->shard.store().read_latencies().sorted());
    }
    return merged;
}

metrics::Percentiles
ShardedGlobalScheduler::store_write_ms() const
{
    metrics::Percentiles merged;
    for (const auto& unit : shards_) {
        merged.add_all(unit->shard.store().write_latencies().sorted());
    }
    return merged;
}

std::uint64_t
ShardedGlobalScheduler::store_bytes_written() const
{
    std::uint64_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.store().bytes_written();
    }
    return total;
}

std::int32_t
ShardedGlobalScheduler::total_gpus() const
{
    std::int32_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.cluster().total_gpus();
    }
    return total;
}

std::int32_t
ShardedGlobalScheduler::total_committed_gpus() const
{
    std::int32_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.cluster().total_committed_gpus();
    }
    return total;
}

std::int32_t
ShardedGlobalScheduler::total_subscribed_gpus() const
{
    std::int32_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.cluster().total_subscribed_gpus();
    }
    return total;
}

std::size_t
ShardedGlobalScheduler::cluster_size() const
{
    std::size_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.cluster().size();
    }
    return total;
}

std::size_t
ShardedGlobalScheduler::live_kernels() const
{
    std::size_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->shard.live_kernels();
    }
    return total;
}

double
ShardedGlobalScheduler::cluster_sr() const
{
    // Same formula as Cluster::cluster_subscription_ratio, but over the
    // union of the shard fleets: sum(S) / (sum(G) * R).
    const std::int32_t gpus = total_gpus();
    if (gpus <= 0) {
        return 0.0;
    }
    const std::int32_t replicas = config_.kernel.replica_count;
    return static_cast<double>(total_subscribed_gpus()) /
           (static_cast<double>(gpus) *
            static_cast<double>(replicas < 1 ? 1 : replicas));
}

std::uint64_t
ShardedGlobalScheduler::events_executed() const
{
    std::uint64_t total = 0;
    for (const auto& unit : shards_) {
        total += unit->simulation.events_executed();
    }
    return total;
}

net::NetworkStats
ShardedGlobalScheduler::network_stats() const
{
    net::NetworkStats total;
    for (const auto& unit : shards_) {
        total += unit->shard.network_stats();
    }
    return total;
}

}  // namespace nbos::sched
