/**
 * @file
 * Scheduler-facing value types shared by the monolithic facade
 * (GlobalScheduler), the per-shard engine (SchedulerShard), and the
 * sharded front-end (ShardedGlobalScheduler): tunables, cluster events,
 * request traces, and counters, plus the deterministic cross-shard merge
 * helpers.
 */
#ifndef NBOS_SCHED_SCHEDULER_TYPES_HPP
#define NBOS_SCHED_SCHEDULER_TYPES_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "chaos/config.hpp"
#include "cluster/resources.hpp"
#include "cluster/server.hpp"
#include "kernel/replica.hpp"
#include "sched/autoscaler.hpp"
#include "sched/routing.hpp"
#include "sim/time.hpp"
#include "storage/datastore.hpp"

namespace nbos::sched {

/** Network-hop latency ranges along the request path (Fig. 15 steps). */
struct HopLatencies
{
    sim::Time client_to_gs_min = 1 * sim::kMillisecond;
    sim::Time client_to_gs_max = 3 * sim::kMillisecond;
    sim::Time gs_to_ls_min = 300 * sim::kMicrosecond;
    sim::Time gs_to_ls_max = 1 * sim::kMillisecond;
    sim::Time ls_to_replica_min = 100 * sim::kMicrosecond;
    sim::Time ls_to_replica_max = 400 * sim::kMicrosecond;
};

/** All scheduler tunables. */
struct SchedulerConfig
{
    kernel::KernelConfig kernel{};
    cluster::ResourceSpec server_shape = cluster::ResourceSpec::server_8gpu();
    std::int32_t initial_servers = 4;
    /** Hard per-server SR watermark (prevents excessive
     *  over-subscription; Fig. 10's SR peaks near 3). */
    double sr_watermark = 3.0;
    AutoScalerConfig autoscaler{};
    sim::Time autoscale_interval = 30 * sim::kSecond;
    bool enable_autoscaler = true;
    /** Pre-warmed containers maintained per server (migration pool). */
    std::int32_t prewarm_per_server = 1;
    sim::Time prewarm_check_interval = 15 * sim::kSecond;
    cluster::ContainerTimings timings{};
    /** EC2-style server provisioning time for scale-out. */
    sim::Time server_provision_min = 30 * sim::kSecond;
    sim::Time server_provision_max = 90 * sim::kSecond;
    HopLatencies hops{};
    /** Enable GS-side executor pre-selection (yield conversion). */
    bool yield_conversion = true;
    sim::Time gs_processing = 1 * sim::kMillisecond;
    sim::Time ls_processing = 300 * sim::kMicrosecond;
    /** Failed-migration retry spacing and budget (§3.2.3). */
    sim::Time migration_retry = 10 * sim::kSecond;
    std::int32_t migration_max_retries = 5;
    /** §3.4.2: a failed placement (kernel creation or migration) triggers
     *  an immediate scale-out, independent of the periodic auto-scaler. */
    bool scale_out_on_failed_placement = true;
    /** Replica health-check period (§3.2.5 heartbeats). */
    sim::Time health_check_interval = 10 * sim::kSecond;
    storage::Backend store_backend = storage::Backend::kS3;
    /**
     * Scheduler shard count. 1 (the default) is the monolithic scheduler —
     * byte-identical to the pre-sharding implementation. With N > 1 the
     * ShardedGlobalScheduler partitions sessions across N independent
     * shards (stable session-id hash), divides `initial_servers` round-
     * robin across the shard fleets, and merges stats, events, and
     * autoscaler signals deterministically in shard order.
     */
    std::int32_t shards = 1;
    /** Run shard event loops on parallel threads inside each lockstep
     *  window. Shards share no mutable state, so parallel execution is
     *  bit-identical to serial (pinned by determinism_test); disabling is
     *  only useful for debugging and for that equivalence test. */
    bool shard_parallel = true;
    /**
     * Session -> shard routing policy (sched/routing.hpp). The default,
     * `static_hash`, is the pure splitmix64 route — byte-identical to the
     * pre-routing implementation at every shard count. `least_loaded`
     * routes new sessions by merged per-shard load at admission;
     * `rebalance` keeps hash admission but migrates whole sessions
     * between shards at window boundaries, with the plan computed as a
     * pure function of shard-order-merged load stats. Ignored at
     * shards == 1 (a single shard has nothing to balance).
     */
    RoutingPolicyKind routing = RoutingPolicyKind::kStaticHash;
    /**
     * Deterministic fault injection (chaos tier). When enabled, each shard
     * installs a seeded `chaos::FaultPlan` — drop bursts, partitions +
     * heals, replica crash/restart, clock skew, latency spikes — into its
     * own network/simulation, with optional RECORD / REPLAY attachments.
     * Off by default; a disabled chaos config leaves every run byte-
     * identical to the pre-chaos implementation.
     */
    chaos::ChaosConfig chaos{};
};

/** Cluster-level events for the Fig. 10 timeline. */
struct SchedulerEvent
{
    enum class Kind
    {
        kKernelCreated,
        kMigration,
        kScaleOut,
        kScaleIn,
    };
    Kind kind;
    sim::Time time;
};

/** Per-request timing trace (drives the Fig. 15-19 breakdowns). */
struct RequestTrace
{
    sim::Time submitted_at = 0;
    sim::Time gs_received = 0;
    sim::Time gs_dispatched = 0;
    sim::Time ls_received = 0;
    sim::Time replica_received = 0;
    sim::Time execution_started = 0;
    sim::Time execution_finished = 0;
    sim::Time replica_replied = 0;
    sim::Time client_replied = 0;
    sim::Time election_latency = 0;
    bool migrated = false;
    bool aborted = false;
};

/** One shard's share of a sharded run (load/imbalance telemetry). */
struct ShardLoadSample
{
    /** Sessions (live kernels) resident when the sample was taken. */
    std::int64_t sessions = 0;
    /** Simulation events the shard has executed so far. */
    std::uint64_t events = 0;
    /** This shard's fraction of all shard events (the shard's share of
     *  the run's busy time under the events-as-work proxy). */
    double busy_fraction = 0.0;
};

/** Scheduler-wide counters. */
struct SchedulerStats
{
    std::uint64_t kernels_created = 0;
    std::uint64_t executions_completed = 0;
    std::uint64_t executions_aborted = 0;
    std::uint64_t elections_failed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t migrations_aborted = 0;
    std::uint64_t scale_outs = 0;
    std::uint64_t scale_ins = 0;
    std::uint64_t yield_conversions = 0;
    std::uint64_t immediate_commits = 0;
    std::uint64_t executor_reuses = 0;
    std::uint64_t gpu_executions = 0;
    std::uint64_t prewarm_hits = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t replica_failovers = 0;

    /**
     * Per-shard load telemetry, in shard order (empty for monolithic
     * runs). NOT a counter: the sharded front-ends fill it after their
     * own merge, so it is deliberately excluded from operator+= and
     * operator== — routing policies change how work spreads over shards
     * without changing any merged total, and the policy-invariance /
     * shard-count-invariance property tests compare the counters only.
     */
    std::vector<ShardLoadSample> shard_loads;

    /** Imbalance factor: max over mean of per-shard events (1.0 is a
     *  perfect spread; the multi-core speedup cap is shards/imbalance).
     *  0 when no per-shard telemetry is present. */
    double shard_imbalance() const
    {
        if (shard_loads.empty()) {
            return 0.0;
        }
        std::uint64_t max_events = 0, total = 0;
        for (const ShardLoadSample& shard : shard_loads) {
            max_events = std::max(max_events, shard.events);
            total += shard.events;
        }
        if (total == 0) {
            return 0.0;
        }
        const double mean = static_cast<double>(total) /
                            static_cast<double>(shard_loads.size());
        return static_cast<double>(max_events) / mean;
    }
};

/** Field-wise accumulation (cross-shard merge runs in shard order). */
inline SchedulerStats&
operator+=(SchedulerStats& into, const SchedulerStats& other)
{
    into.kernels_created += other.kernels_created;
    into.executions_completed += other.executions_completed;
    into.executions_aborted += other.executions_aborted;
    into.elections_failed += other.elections_failed;
    into.migrations += other.migrations;
    into.migrations_aborted += other.migrations_aborted;
    into.scale_outs += other.scale_outs;
    into.scale_ins += other.scale_ins;
    into.yield_conversions += other.yield_conversions;
    into.immediate_commits += other.immediate_commits;
    into.executor_reuses += other.executor_reuses;
    into.gpu_executions += other.gpu_executions;
    into.prewarm_hits += other.prewarm_hits;
    into.cold_starts += other.cold_starts;
    into.replica_failovers += other.replica_failovers;
    return into;
}

inline bool
operator==(const SchedulerStats& a, const SchedulerStats& b)
{
    return a.kernels_created == b.kernels_created &&
           a.executions_completed == b.executions_completed &&
           a.executions_aborted == b.executions_aborted &&
           a.elections_failed == b.elections_failed &&
           a.migrations == b.migrations &&
           a.migrations_aborted == b.migrations_aborted &&
           a.scale_outs == b.scale_outs && a.scale_ins == b.scale_ins &&
           a.yield_conversions == b.yield_conversions &&
           a.immediate_commits == b.immediate_commits &&
           a.executor_reuses == b.executor_reuses &&
           a.gpu_executions == b.gpu_executions &&
           a.prewarm_hits == b.prewarm_hits &&
           a.cold_starts == b.cold_starts &&
           a.replica_failovers == b.replica_failovers;
}

/**
 * Deterministic cross-shard event merge: stable merge by timestamp with
 * the shard index breaking ties, so the result is independent of how the
 * per-shard streams were produced (serial or parallel windows).
 *
 * @param per_shard event streams in shard order, each time-sorted.
 */
inline std::vector<SchedulerEvent>
merge_events(const std::vector<std::vector<SchedulerEvent>>& per_shard)
{
    std::vector<SchedulerEvent> merged;
    std::size_t total = 0;
    for (const auto& events : per_shard) {
        total += events.size();
    }
    merged.reserve(total);
    // One tagged stream, stably sorted: ties keep shard order because the
    // concatenation lists shard 0's events first and the sort is stable.
    for (const auto& events : per_shard) {
        merged.insert(merged.end(), events.begin(), events.end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const SchedulerEvent& a, const SchedulerEvent& b) {
                         return a.time < b.time;
                     });
    return merged;
}

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SCHEDULER_TYPES_HPP
