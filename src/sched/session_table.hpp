/**
 * @file
 * Dense structure-of-arrays session table for the per-window hot scans.
 *
 * The schedulers walk every resident session at each lockstep window
 * boundary (harvest_window_load, session_count) but only read two hot
 * scalars per session: the window weight and the state flags. The old
 * `std::map<id, Record>` layout paid a pointer chase plus a whole cache
 * line of cold record (spec, buffered deque, kernel binding) per visited
 * session. Here the hot scalars live in parallel arrays the scan streams
 * through, the cold record sits in a separate parallel array touched only
 * on per-session operations, and an unordered id -> dense-index view gives
 * O(1) lookup. Erase is swap-remove, so iteration order is NOT the id
 * order the map gave — callers that need id-ordered output (harvest) sort
 * the surviving ids, which is cheaper than paying map node chases on
 * every scan of the 99% idle majority.
 */
#ifndef NBOS_SCHED_SESSION_TABLE_HPP
#define NBOS_SCHED_SESSION_TABLE_HPP

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace nbos::sched {

/**
 * Id-keyed SoA table: hot columns (weight, flags) + a cold record column.
 *
 * @tparam Cold the per-session cold record (spec, buffers, bindings).
 * Flag-bit semantics belong to the caller; the table just stores a byte.
 */
template <typename Cold>
class SessionTable
{
  public:
    static constexpr std::int32_t npos = -1;

    /** Dense index of @p id, or npos. */
    std::int32_t find(std::int64_t id) const
    {
        const auto it = index_.find(id);
        return it == index_.end() ? npos : it->second;
    }

    /** Find-or-create: existing index, or a fresh zeroed row. */
    std::int32_t insert(std::int64_t id)
    {
        const auto [it, added] =
            index_.try_emplace(id, static_cast<std::int32_t>(ids_.size()));
        if (added) {
            ids_.push_back(id);
            weights_.push_back(0);
            flags_.push_back(0);
            cold_.emplace_back();
        }
        return it->second;
    }

    /** Swap-remove @p id. @return true if it was present. */
    bool erase(std::int64_t id)
    {
        const auto it = index_.find(id);
        if (it == index_.end()) {
            return false;
        }
        const auto row = static_cast<std::size_t>(it->second);
        const std::size_t last = ids_.size() - 1;
        if (row != last) {
            ids_[row] = ids_[last];
            weights_[row] = weights_[last];
            flags_[row] = flags_[last];
            cold_[row] = std::move(cold_[last]);
            index_[ids_[row]] = static_cast<std::int32_t>(row);
        }
        ids_.pop_back();
        weights_.pop_back();
        flags_.pop_back();
        cold_.pop_back();
        index_.erase(it);
        return true;
    }

    std::size_t size() const { return ids_.size(); }

    std::int64_t id_at(std::int32_t row) const
    {
        return ids_[static_cast<std::size_t>(row)];
    }
    std::uint64_t& weight_at(std::int32_t row)
    {
        return weights_[static_cast<std::size_t>(row)];
    }
    std::uint64_t weight_at(std::int32_t row) const
    {
        return weights_[static_cast<std::size_t>(row)];
    }
    std::uint8_t& flags_at(std::int32_t row)
    {
        return flags_[static_cast<std::size_t>(row)];
    }
    std::uint8_t flags_at(std::int32_t row) const
    {
        return flags_[static_cast<std::size_t>(row)];
    }
    Cold& cold_at(std::int32_t row)
    {
        return cold_[static_cast<std::size_t>(row)];
    }
    const Cold& cold_at(std::int32_t row) const
    {
        return cold_[static_cast<std::size_t>(row)];
    }

    /** The hot columns, for streaming window scans. */
    const std::vector<std::int64_t>& ids() const { return ids_; }
    const std::vector<std::uint64_t>& weights() const { return weights_; }
    const std::vector<std::uint8_t>& flags() const { return flags_; }

  private:
    std::vector<std::int64_t> ids_;
    std::vector<std::uint64_t> weights_;
    std::vector<std::uint8_t> flags_;
    std::vector<Cold> cold_;
    std::unordered_map<std::int64_t, std::int32_t> index_;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SESSION_TABLE_HPP
