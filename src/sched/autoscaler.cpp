#include "sched/autoscaler.hpp"

#include <algorithm>
#include <cmath>

namespace nbos::sched {

AutoScaleDecision
evaluate_autoscaler(const AutoScalerInputs& inputs,
                    const AutoScalerConfig& config)
{
    AutoScaleDecision decision;
    if (inputs.gpus_per_server <= 0) {
        return decision;
    }
    const double expected_gpus =
        config.multiplier * static_cast<double>(inputs.committed_gpus);
    const std::int32_t desired_servers = std::max(
        config.min_servers,
        static_cast<std::int32_t>(
            std::ceil(expected_gpus /
                      static_cast<double>(inputs.gpus_per_server))) +
            config.buffer_servers);

    if (desired_servers > inputs.current_servers) {
        decision.add_servers = desired_servers - inputs.current_servers;
        return decision;
    }
    if (desired_servers < inputs.current_servers) {
        // Gradual scale-in: release at most 1-2 idle servers per step.
        const std::int32_t excess = inputs.current_servers - desired_servers;
        decision.remove_servers =
            std::min({excess, inputs.idle_servers,
                      config.max_release_per_step});
        decision.remove_servers = std::max(decision.remove_servers, 0);
    }
    return decision;
}

}  // namespace nbos::sched
