/**
 * @file
 * The auto-scaler decision logic (§3.4.2), factored as a pure function so
 * tests can sweep it.
 *
 * Expected cluster capacity is sum(G') = f * sum(C), where sum(C) is the
 * number of GPUs actively committed to executing kernel replicas and f is
 * the aggressiveness multiplier (1.05 in the paper). A scaling buffer of
 * "extra" servers absorbs request bursts. Scale-in releases 1-2 idle
 * servers at a time.
 */
#ifndef NBOS_SCHED_AUTOSCALER_HPP
#define NBOS_SCHED_AUTOSCALER_HPP

#include <cstdint>

namespace nbos::sched {

/** Inputs to one auto-scaling evaluation. */
struct AutoScalerInputs
{
    /** GPUs actively committed to executing replicas (sum C). */
    std::int32_t committed_gpus = 0;
    /** Total GPUs across provisioned servers (sum G). */
    std::int32_t total_gpus = 0;
    /** GPUs per server (8 in the evaluation). */
    std::int32_t gpus_per_server = 8;
    /** Currently provisioned servers. */
    std::int32_t current_servers = 0;
    /** Servers with no containers at all (safe to release). */
    std::int32_t idle_servers = 0;
};

/** Tunables of the auto-scaler. */
struct AutoScalerConfig
{
    /** Aggressiveness multiplier f (§3.4.2 sets 1.05). */
    double multiplier = 1.05;
    /** "Extra" servers kept as the scaling buffer. */
    std::int32_t buffer_servers = 2;
    /** Never scale below this many servers. */
    std::int32_t min_servers = 1;
    /** Max servers released per evaluation (paper: 1-2). */
    std::int32_t max_release_per_step = 2;
};

/** Output of one evaluation. */
struct AutoScaleDecision
{
    std::int32_t add_servers = 0;
    std::int32_t remove_servers = 0;
};

/** Evaluate the §3.4.2 policy once. */
AutoScaleDecision evaluate_autoscaler(const AutoScalerInputs& inputs,
                                      const AutoScalerConfig& config);

}  // namespace nbos::sched

#endif  // NBOS_SCHED_AUTOSCALER_HPP
