#include "sched/placement.hpp"

#include <algorithm>

namespace nbos::sched {

LeastLoadedPolicy::LeastLoadedPolicy(double sr_watermark)
    : sr_watermark_(sr_watermark)
{
}

double
LeastLoadedPolicy::current_limit(const cluster::Cluster& cluster,
                                 std::int32_t replicas_per_kernel) const
{
    return std::max(1.0,
                    cluster.cluster_subscription_ratio(replicas_per_kernel));
}

std::vector<cluster::ServerId>
LeastLoadedPolicy::pick(const cluster::Cluster& cluster,
                        const cluster::ResourceSpec& spec, std::size_t count,
                        std::int32_t replicas_per_kernel)
{
    // The dynamic limit includes the incoming subscription so that an
    // at-average server still qualifies as "preferred" while sum(S) grows.
    const std::int32_t total_gpus = cluster.total_gpus();
    double soft_limit = 1.0;
    if (total_gpus > 0 && replicas_per_kernel > 0) {
        soft_limit = std::max(
            soft_limit,
            static_cast<double>(cluster.total_subscribed_gpus() +
                                spec.gpus) /
                (static_cast<double>(total_gpus) *
                 static_cast<double>(replicas_per_kernel)));
    }
    struct Candidate
    {
        cluster::ServerId id;
        bool over_soft_limit;
        std::int32_t committed;
        std::int32_t subscribed;
    };
    std::vector<Candidate> candidates;
    for (const auto& [id, server] : cluster.servers()) {
        if (server->draining() || !spec.fits_within(server->capacity())) {
            continue;
        }
        const double new_sr =
            static_cast<double>(server->subscribed_gpus() + spec.gpus) /
            (static_cast<double>(server->capacity().gpus) *
             static_cast<double>(replicas_per_kernel));
        // Hard watermark: never oversubscribe a server past it.
        if (new_sr > sr_watermark_ + 1e-9) {
            continue;
        }
        candidates.push_back(Candidate{id, new_sr > soft_limit + 1e-9,
                                       server->committed_gpus(),
                                       server->subscribed_gpus()});
    }
    // Prefer servers under the dynamic limit, then least-loaded: fewest
    // actively used GPUs, then fewest subscribed, then id (determinism).
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                  if (a.over_soft_limit != b.over_soft_limit) {
                      return !a.over_soft_limit;
                  }
                  if (a.committed != b.committed) {
                      return a.committed < b.committed;
                  }
                  if (a.subscribed != b.subscribed) {
                      return a.subscribed < b.subscribed;
                  }
                  return a.id < b.id;
              });
    std::vector<cluster::ServerId> chosen;
    for (const Candidate& candidate : candidates) {
        if (chosen.size() >= count) {
            break;
        }
        chosen.push_back(candidate.id);
    }
    return chosen;
}

std::vector<cluster::ServerId>
RoundRobinPolicy::pick(const cluster::Cluster& cluster,
                       const cluster::ResourceSpec& spec, std::size_t count,
                       std::int32_t replicas_per_kernel)
{
    (void)replicas_per_kernel;
    const auto ids = cluster.server_ids();
    std::vector<cluster::ServerId> chosen;
    if (ids.empty()) {
        return chosen;
    }
    for (std::size_t scanned = 0;
         scanned < ids.size() && chosen.size() < count; ++scanned) {
        const cluster::ServerId id = ids[(cursor_ + scanned) % ids.size()];
        const cluster::GpuServer* server = cluster.find(id);
        if (server != nullptr && !server->draining() &&
            spec.fits_within(server->capacity())) {
            chosen.push_back(id);
        }
    }
    cursor_ = (cursor_ + 1) % ids.size();
    return chosen;
}

}  // namespace nbos::sched
