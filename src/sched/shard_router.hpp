/**
 * @file
 * Deterministic session -> shard routing for the sharded Global Scheduler.
 *
 * The route must be stable across runs, seeds, platforms, and process
 * restarts (a session's kernel lives on exactly one shard for its whole
 * life), so it is a pure function of the session id and the shard count:
 * a splitmix64 finalizer over the id, reduced modulo the shard count.
 */
#ifndef NBOS_SCHED_SHARD_ROUTER_HPP
#define NBOS_SCHED_SHARD_ROUTER_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace nbos::sched {

/** splitmix64 finalizer: a strong, cheap, portable 64-bit mix. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-shard RNG seed shared by every sharded engine: shard 0 keeps the
 *  caller's seed verbatim (monolithic byte-identity at shards == 1);
 *  siblings mix the shard index in so their streams are independent. */
constexpr std::uint64_t
shard_seed(std::uint64_t seed, std::int32_t index)
{
    if (index == 0) {
        return seed;
    }
    return splitmix64(seed + 0x632be59bd9b4e019ULL *
                                 static_cast<std::uint64_t>(index));
}

/**
 * Stable hash router: session id -> shard index in [0, shards).
 *
 * Seed-independent by design — re-running an experiment with a different
 * RNG seed (or sweeping seeds) keeps every session on the same shard, so
 * seed sweeps compare like against like.
 */
class ShardRouter
{
  public:
    /** @param shards shard count.
     *  @throws std::invalid_argument on shards < 1 — an earlier revision
     *  silently clamped to 1 while shard_of threw on negative ids, so a
     *  config bug produced a quietly monolithic run instead of an error
     *  (validate_config rejects it upstream; this catches direct
     *  constructions too). */
    explicit ShardRouter(std::int32_t shards) : shards_(shards)
    {
        if (shards < 1) {
            throw std::invalid_argument(
                "ShardRouter: shard count must be >= 1, got " +
                std::to_string(shards));
        }
    }

    std::int32_t shards() const { return shards_; }

    /** Shard owning @p session_id. Pure and stable: equal ids always map
     *  to equal shards for a given shard count.
     *  @throws std::invalid_argument on negative ids — they would
     *  otherwise silently sign-cast into the hash, so a caller bug (e.g.
     *  routing a kNoServer/-1 sentinel) produced a stable-looking but
     *  meaningless shard instead of an error. */
    std::size_t shard_of(std::int64_t session_id) const
    {
        if (session_id < 0) {
            throw std::invalid_argument(
                "ShardRouter::shard_of: negative session id " +
                std::to_string(session_id));
        }
        if (shards_ == 1) {
            return 0;
        }
        return static_cast<std::size_t>(
            splitmix64(static_cast<std::uint64_t>(session_id)) %
            static_cast<std::uint64_t>(shards_));
    }

  private:
    std::int32_t shards_;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SHARD_ROUTER_HPP
