/**
 * @file
 * The sharded Global Scheduler front-end for multi-core scale.
 *
 * N independent SchedulerShards — each with its own sim::Simulation,
 * network, fleet slice, data store, and RNG streams — are driven in
 * lockstep time windows. Sessions are routed to shards by a stable hash
 * of the session id (ShardRouter), kernel ids are allocated in disjoint
 * arithmetic progressions so the owning shard is recoverable from the id
 * alone, and all outward-facing signals (SchedulerStats, scheduler
 * events, autoscaler inputs, latency distributions) are merged
 * deterministically in shard order.
 *
 * Because shards share no mutable state, run_until() may execute the
 * shard event loops on parallel threads with results bit-identical to a
 * serial sweep (pinned by determinism_test); SchedulerConfig::shards == 1
 * reduces to exactly the monolithic GlobalScheduler behaviour.
 */
#ifndef NBOS_SCHED_SHARDED_SCHEDULER_HPP
#define NBOS_SCHED_SHARDED_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler_types.hpp"
#include "sched/shard.hpp"
#include "sched/shard_router.hpp"

namespace nbos::sched {

class ShardedGlobalScheduler
{
  public:
    using ExecuteCallback = SchedulerShard::ExecuteCallback;
    using StartKernelCallback = SchedulerShard::StartKernelCallback;

    /**
     * Build `config.shards` shards (clamped to >= 1). Shard 0 derives its
     * RNG streams from @p seed exactly as the monolithic scheduler does,
     * so shards == 1 is byte-identical to GlobalScheduler; the other
     * shards mix the shard index into the seed.
     */
    ShardedGlobalScheduler(SchedulerConfig config, std::uint64_t seed);
    ~ShardedGlobalScheduler();

    ShardedGlobalScheduler(const ShardedGlobalScheduler&) = delete;
    ShardedGlobalScheduler& operator=(const ShardedGlobalScheduler&) =
        delete;

    /** Start every shard (initial fleet slices + periodic services). */
    void start();

    /** @name Topology */
    ///@{
    std::int32_t shard_count() const
    {
        return static_cast<std::int32_t>(shards_.size());
    }
    const ShardRouter& router() const { return router_; }
    /** Shard owning @p session_id (stable across runs and seeds). */
    std::size_t shard_of(std::int64_t session_id) const
    {
        return router_.shard_of(session_id);
    }
    /** Shard that allocated @p kernel_id (ids stride over shards). */
    std::size_t shard_of_kernel(cluster::KernelId kernel_id) const;
    sim::Simulation& simulation(std::size_t shard);
    SchedulerShard& shard(std::size_t shard);
    ///@}

    /** @name Routed scheduler API
     *
     * Thread contract: between lockstep windows these may be called
     * freely from the driving thread. From *inside* a window (i.e. from
     * a simulation event) a call must target the calling shard's own
     * sessions/kernels — the router guarantees that for anything derived
     * from the shard's own session ids, and every in-tree driver
     * (protosim, micro_sched) follows it. Cross-shard calls mid-window
     * would race when shard_parallel is set.
     */
    ///@{
    /** Create a kernel for @p session_id on its owning shard. */
    void start_kernel(std::int64_t session_id,
                      const cluster::ResourceSpec& spec,
                      StartKernelCallback callback);
    void stop_kernel(cluster::KernelId kernel_id);
    void submit_execute(cluster::KernelId kernel_id, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback);
    kernel::KernelReplica* replica(cluster::KernelId kernel_id,
                                   std::int32_t index);
    void inject_replica_failure(cluster::KernelId kernel_id,
                                std::int32_t index);
    ///@}

    /**
     * Advance every shard to time @p t (one lockstep window). With
     * SchedulerConfig::shard_parallel and more than one shard, each
     * shard's event loop runs on its own thread; otherwise shards are
     * swept serially in index order. Both orders produce bit-identical
     * states because shards share nothing.
     */
    void run_until(sim::Time t);

    /** The lockstep clock: the target of the last run_until window. */
    sim::Time now() const { return now_; }

    /** @name Deterministically merged signals (shard-index order) */
    ///@{
    SchedulerStats stats() const;
    std::vector<SchedulerEvent> events() const;
    metrics::Percentiles sync_latencies_ms() const;
    metrics::Percentiles store_read_ms() const;
    metrics::Percentiles store_write_ms() const;
    std::uint64_t store_bytes_written() const;
    /** Fleet-wide autoscaler signals: sums over the shard clusters. */
    std::int32_t total_gpus() const;
    std::int32_t total_committed_gpus() const;
    std::int32_t total_subscribed_gpus() const;
    std::size_t cluster_size() const;
    std::size_t live_kernels() const;
    /** Fleet-wide subscription ratio sum(S) / (sum(G) * R) (§3.4.1). */
    double cluster_sr() const;
    /** Total simulation events executed across shards (throughput). */
    std::uint64_t events_executed() const;
    /** Network delivery stats summed in shard order (chaos breakdown). */
    net::NetworkStats network_stats() const;
    ///@}

  private:
    struct ShardUnit
    {
        ShardUnit(const SchedulerConfig& config, std::uint64_t seed,
                  ShardIdentity identity)
            : shard(simulation, config, seed, identity)
        {
        }

        sim::Simulation simulation;
        SchedulerShard shard;
    };

    SchedulerConfig config_;
    ShardRouter router_;
    std::vector<std::unique_ptr<ShardUnit>> shards_;
    sim::Time now_ = 0;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SHARDED_SCHEDULER_HPP
