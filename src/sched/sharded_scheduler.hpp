/**
 * @file
 * The sharded Global Scheduler front-end for multi-core scale.
 *
 * N independent SchedulerShards — each with its own sim::Simulation,
 * network, fleet slice, data store, and RNG streams — are driven in
 * lockstep time windows. Sessions are routed to shards by a stable hash
 * of the session id (ShardRouter), kernel ids are allocated in disjoint
 * arithmetic progressions so the owning shard is recoverable from the id
 * alone, and all outward-facing signals (SchedulerStats, scheduler
 * events, autoscaler inputs, latency distributions) are merged
 * deterministically in shard order.
 *
 * Because shards share no mutable state, run_until() may execute the
 * shard event loops on parallel threads with results bit-identical to a
 * serial sweep (pinned by determinism_test); SchedulerConfig::shards == 1
 * reduces to exactly the monolithic GlobalScheduler behaviour.
 */
#ifndef NBOS_SCHED_SHARDED_SCHEDULER_HPP
#define NBOS_SCHED_SHARDED_SCHEDULER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/routing.hpp"
#include "sched/scheduler_types.hpp"
#include "sched/shard.hpp"
#include "sched/shard_router.hpp"

namespace nbos::sched {

class ShardedGlobalScheduler
{
  public:
    using ExecuteCallback = SchedulerShard::ExecuteCallback;
    using StartKernelCallback = SchedulerShard::StartKernelCallback;

    /**
     * Build `config.shards` shards (throws std::invalid_argument when
     * config.shards < 1). Shard 0 derives its
     * RNG streams from @p seed exactly as the monolithic scheduler does,
     * so shards == 1 is byte-identical to GlobalScheduler; the other
     * shards mix the shard index into the seed.
     */
    ShardedGlobalScheduler(SchedulerConfig config, std::uint64_t seed);
    ~ShardedGlobalScheduler();

    ShardedGlobalScheduler(const ShardedGlobalScheduler&) = delete;
    ShardedGlobalScheduler& operator=(const ShardedGlobalScheduler&) =
        delete;

    /** Start every shard (initial fleet slices + periodic services). */
    void start();

    /** @name Topology */
    ///@{
    std::int32_t shard_count() const
    {
        return static_cast<std::int32_t>(shards_.size());
    }
    const ShardRouter& router() const { return table_.router(); }
    /** The routing table (hash fallback + explicit assignments). */
    const RoutingTable& routing_table() const { return table_; }
    /** The active routing policy kind (SchedulerConfig::routing). */
    RoutingPolicyKind routing() const { return policy_->kind(); }
    /** Shard owning @p session_id. Under `static_hash` (the default, no
     *  table overrides) this is exactly the pre-routing hash route,
     *  stable across runs and seeds. */
    std::size_t shard_of(std::int64_t session_id) const
    {
        return table_.shard_of(session_id);
    }
    /** Shard that allocated @p kernel_id (ids stride over shards). */
    std::size_t shard_of_kernel(cluster::KernelId kernel_id) const;
    sim::Simulation& simulation(std::size_t shard);
    SchedulerShard& shard(std::size_t shard);
    ///@}

    /** @name Routed scheduler API
     *
     * Thread contract: between lockstep windows these may be called
     * freely from the driving thread. From *inside* a window (i.e. from
     * a simulation event) a call must target the calling shard's own
     * sessions/kernels — the router guarantees that for anything derived
     * from the shard's own session ids, and every in-tree driver
     * (protosim, micro_sched) follows it. Cross-shard calls mid-window
     * would race when shard_parallel is set.
     */
    ///@{
    /** Create a kernel for @p session_id on its owning shard. */
    void start_kernel(std::int64_t session_id,
                      const cluster::ResourceSpec& spec,
                      StartKernelCallback callback);
    void stop_kernel(cluster::KernelId kernel_id);
    void submit_execute(cluster::KernelId kernel_id, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback);
    kernel::KernelReplica* replica(cluster::KernelId kernel_id,
                                   std::int32_t index);
    void inject_replica_failure(cluster::KernelId kernel_id,
                                std::int32_t index);
    ///@}

    /** @name Session-addressed API + rebalancing (routing layer)
     *
     * The routed windowed driver (protosim.cpp, non-static policies)
     * addresses everything by session id; shards own the session ->
     * kernel bindings so whole sessions can move. admit_session and
     * rebalance_window mutate the routing table and therefore run only
     * on the driving thread between lockstep windows; the per-session
     * calls follow the same thread contract as the routed API above.
     */
    ///@{
    /** Route a new session via the policy, record the assignment, and
     *  bump the running load estimate (so a burst of admissions inside
     *  one window spreads out under `least_loaded`).
     *  @return the assigned shard. */
    std::size_t admit_session(std::int64_t session);
    /** Create the session's kernel on its assigned shard. */
    void begin_session(std::int64_t session,
                       const cluster::ResourceSpec& spec);
    /** Submit a cell addressed by session id to the owning shard.
     *  @return false when the shard dropped the cell (session unknown,
     *  ended, or failed) — no callback will ever fire for it. */
    bool submit_session_execute(std::int64_t session, std::string code,
                                bool is_gpu, sim::Time submitted_at,
                                ExecuteCallback callback);
    /** End a session on its owning shard (drops its table override). */
    void end_session(std::int64_t session);
    /**
     * Close a lockstep window: harvest per-shard loads (shard order),
     * refresh the admission load vector, and — under `rebalance` — plan
     * and apply whole-session migrations. The plan is a pure function
     * of the shard-order-merged loads, so it is identical for parallel
     * and serial window execution. @return sessions moved.
     */
    std::size_t rebalance_window();
    /** Whole sessions moved across shards so far (not a SchedulerStats
     *  counter: totals must stay policy-invariant). */
    std::uint64_t sessions_rebalanced() const
    {
        return sessions_rebalanced_;
    }
    /** Per-shard cumulative load samples (sessions, events, busy
     *  fraction), in shard order; also attached to stats(). */
    std::vector<ShardLoadSample> shard_loads() const;
    ///@}

    /**
     * Advance every shard to time @p t (one lockstep window). With
     * SchedulerConfig::shard_parallel and more than one shard, each
     * shard's event loop runs on its own thread; otherwise shards are
     * swept serially in index order. Both orders produce bit-identical
     * states because shards share nothing.
     */
    void run_until(sim::Time t);

    /** The lockstep clock: the target of the last run_until window. */
    sim::Time now() const { return now_; }

    /** @name Deterministically merged signals (shard-index order) */
    ///@{
    SchedulerStats stats() const;
    std::vector<SchedulerEvent> events() const;
    metrics::Percentiles sync_latencies_ms() const;
    metrics::Percentiles store_read_ms() const;
    metrics::Percentiles store_write_ms() const;
    std::uint64_t store_bytes_written() const;
    /** Fleet-wide autoscaler signals: sums over the shard clusters. */
    std::int32_t total_gpus() const;
    std::int32_t total_committed_gpus() const;
    std::int32_t total_subscribed_gpus() const;
    std::size_t cluster_size() const;
    std::size_t live_kernels() const;
    /** Fleet-wide subscription ratio sum(S) / (sum(G) * R) (§3.4.1). */
    double cluster_sr() const;
    /** Total simulation events executed across shards (throughput). */
    std::uint64_t events_executed() const;
    /** Network delivery stats summed in shard order (chaos breakdown). */
    net::NetworkStats network_stats() const;
    ///@}

  private:
    struct ShardUnit
    {
        ShardUnit(const SchedulerConfig& config, std::uint64_t seed,
                  ShardIdentity identity)
            : simulation(sim::Simulation::Options{
                  true, &sim::SimMemoryPool::global()}),
              shard(simulation, config, seed, identity)
        {
        }

        /** Backing buffers recycle through the global pool so repeated
         *  specs in a sweep stop re-faulting cold pages. */
        sim::Simulation simulation;
        SchedulerShard shard;
    };

    SchedulerConfig config_;
    RoutingTable table_;
    std::unique_ptr<RoutingPolicy> policy_;
    std::vector<std::unique_ptr<ShardUnit>> shards_;
    sim::Time now_ = 0;
    /** Merged per-shard loads as of the last boundary, kept current
     *  across admissions (least_loaded input). */
    std::vector<ShardLoad> loads_;
    /** events_executed() high-water mark per shard (window deltas). */
    std::vector<std::uint64_t> window_events_;
    std::uint64_t sessions_rebalanced_ = 0;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_SHARDED_SCHEDULER_HPP
