#include "sched/routing.hpp"

#include <algorithm>
#include <stdexcept>

namespace nbos::sched {

const char*
to_string(RoutingPolicyKind kind)
{
    switch (kind) {
        case RoutingPolicyKind::kStaticHash: return "static_hash";
        case RoutingPolicyKind::kLeastLoaded: return "least_loaded";
        case RoutingPolicyKind::kRebalance: return "rebalance";
    }
    return "unknown";
}

RoutingPolicyKind
routing_policy_from_string(const std::string& name)
{
    if (name == "static_hash") {
        return RoutingPolicyKind::kStaticHash;
    }
    if (name == "least_loaded") {
        return RoutingPolicyKind::kLeastLoaded;
    }
    if (name == "rebalance") {
        return RoutingPolicyKind::kRebalance;
    }
    throw std::invalid_argument("unknown routing policy '" + name +
                                "' (expected static_hash, least_loaded, "
                                "or rebalance)");
}

namespace {

/** Donor-side view of one shard while the planner runs: its movable
 *  sessions, heaviest first (ties: lowest id), consumed as moves are
 *  planned. */
struct DonorList
{
    std::vector<SessionLoad> sessions;
    bool frozen = false;  // no improving move left this round
};

}  // namespace

std::vector<MigrationDecision>
plan_rebalance(const std::vector<ShardLoad>& loads,
               const std::vector<std::vector<SessionLoad>>& sessions)
{
    const std::size_t n = loads.size();
    if (n < 2 || sessions.size() != n) {
        return {};
    }
    std::vector<std::uint64_t> weight(n, 0);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
        weight[i] = loads[i].weight;
        total += loads[i].weight;
    }
    std::vector<DonorList> donors(n);
    std::size_t movable = 0;
    for (std::size_t i = 0; i < n; ++i) {
        for (const SessionLoad& s : sessions[i]) {
            if (s.movable && s.weight > 0) {
                donors[i].sessions.push_back(s);
            }
        }
        std::sort(donors[i].sessions.begin(), donors[i].sessions.end(),
                  [](const SessionLoad& a, const SessionLoad& b) {
                      if (a.weight != b.weight) {
                          return a.weight > b.weight;
                      }
                      return a.session < b.session;
                  });
        movable += donors[i].sessions.size();
    }
    // "Close enough" band: an eighth of the mean per-shard weight. Under
    // that gap a move cannot meaningfully improve the critical path and
    // would just ping-pong sessions between windows.
    const std::uint64_t slack =
        std::max<std::uint64_t>(1, total / (8 * n));

    std::vector<MigrationDecision> plan;
    for (std::size_t round = 0; round < movable; ++round) {
        // Heaviest unfrozen donor with sessions left; lightest receiver.
        std::size_t hi = n, lo = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!donors[i].frozen && !donors[i].sessions.empty() &&
                (hi == n || weight[i] > weight[hi])) {
                hi = i;
            }
            if (weight[i] < weight[lo]) {
                lo = i;
            }
        }
        if (hi == n || hi == lo || weight[hi] - weight[lo] <= slack) {
            break;
        }
        const std::uint64_t gap = weight[hi] - weight[lo];
        // Largest session not overshooting the midpoint; else the
        // lightest one that still strictly narrows the gap.
        auto& list = donors[hi].sessions;
        std::size_t pick = list.size();
        for (std::size_t j = 0; j < list.size(); ++j) {
            if (list[j].weight * 2 <= gap) {
                pick = j;
                break;
            }
        }
        if (pick == list.size() && !list.empty() &&
            list.back().weight < gap) {
            pick = list.size() - 1;
        }
        if (pick == list.size()) {
            donors[hi].frozen = true;  // every session would overshoot
            continue;
        }
        const SessionLoad moved = list[pick];
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(pick));
        weight[hi] -= moved.weight;
        weight[lo] += moved.weight;
        plan.push_back(MigrationDecision{moved.session,
                                         static_cast<std::int32_t>(hi),
                                         static_cast<std::int32_t>(lo)});
    }
    return plan;
}

namespace {

class StaticHashPolicy final : public RoutingPolicy
{
  public:
    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::kStaticHash;
    }

    std::int32_t admit(std::int64_t session, const RoutingTable& table,
                       const std::vector<ShardLoad>&) override
    {
        return static_cast<std::int32_t>(table.router().shard_of(session));
    }

    std::vector<MigrationDecision> plan(
        const std::vector<ShardLoad>&,
        const std::vector<std::vector<SessionLoad>>&) override
    {
        return {};
    }
};

/** Admission-time balancing. The caller keeps the load vector current
 *  between boundaries (bumping the chosen shard after every admit), so
 *  a burst of admissions inside one window spreads out instead of
 *  piling onto the shard that was lightest at the last boundary. */
class LeastLoadedPolicy final : public RoutingPolicy
{
  public:
    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::kLeastLoaded;
    }

    std::int32_t admit(std::int64_t session, const RoutingTable& table,
                       const std::vector<ShardLoad>& loads) override
    {
        if (loads.size() !=
            static_cast<std::size_t>(table.shards())) {
            return static_cast<std::int32_t>(
                table.router().shard_of(session));
        }
        std::size_t best = 0;
        for (std::size_t i = 1; i < loads.size(); ++i) {
            if (loads[i].weight < loads[best].weight ||
                (loads[i].weight == loads[best].weight &&
                 loads[i].sessions < loads[best].sessions)) {
                best = i;
            }
        }
        return static_cast<std::int32_t>(best);
    }

    std::vector<MigrationDecision> plan(
        const std::vector<ShardLoad>&,
        const std::vector<std::vector<SessionLoad>>&) override
    {
        return {};
    }
};

class RebalancePolicy final : public RoutingPolicy
{
  public:
    RoutingPolicyKind kind() const override
    {
        return RoutingPolicyKind::kRebalance;
    }

    std::int32_t admit(std::int64_t session, const RoutingTable& table,
                       const std::vector<ShardLoad>&) override
    {
        return static_cast<std::int32_t>(table.router().shard_of(session));
    }

    std::vector<MigrationDecision> plan(
        const std::vector<ShardLoad>& loads,
        const std::vector<std::vector<SessionLoad>>& sessions) override
    {
        return plan_rebalance(loads, sessions);
    }
};

}  // namespace

std::unique_ptr<RoutingPolicy>
make_routing_policy(RoutingPolicyKind kind)
{
    switch (kind) {
        case RoutingPolicyKind::kStaticHash:
            return std::make_unique<StaticHashPolicy>();
        case RoutingPolicyKind::kLeastLoaded:
            return std::make_unique<LeastLoadedPolicy>();
        case RoutingPolicyKind::kRebalance:
            return std::make_unique<RebalancePolicy>();
    }
    throw std::invalid_argument("make_routing_policy: unknown kind");
}

}  // namespace nbos::sched
