/**
 * @file
 * Pluggable kernel-replica placement (§3.4.1).
 *
 * The default policy is the paper's least-loaded placement with the dynamic
 * cluster-wide subscription-ratio (SR) cap: a server is rejected when
 * hosting one more replica would push its SR above the cluster-wide limit
 * max(watermark, sum(S) / (sum(G) * R)).
 */
#ifndef NBOS_SCHED_PLACEMENT_HPP
#define NBOS_SCHED_PLACEMENT_HPP

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"

namespace nbos::sched {

/** Interface for placement policies (§3.4: "pluggable policy"). */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /**
     * Choose up to @p count distinct servers able to host a replica of a
     * kernel requesting @p spec.
     *
     * @param replicas_per_kernel the R divisor in the SR.
     * @return chosen server ids (size < count means placement failed and a
     *         scale-out is required).
     */
    virtual std::vector<cluster::ServerId>
    pick(const cluster::Cluster& cluster, const cluster::ResourceSpec& spec,
         std::size_t count, std::int32_t replicas_per_kernel) = 0;

    /** Policy name for logs. */
    virtual const char* name() const = 0;
};

/**
 * The default least-loaded policy with the dynamic SR cap.
 *
 * Two thresholds govern subscriptions (§3.2.1/§3.4.1):
 *  - the *hard watermark*: a server whose SR would exceed it is never
 *    chosen ("a configurable high watermark that prevents excessive
 *    over-subscription");
 *  - the *dynamic limit* max(1, sum(S)/(sum(G)*R)): servers it would be
 *    exceeded on are "rejected in favor of another" — i.e. deprioritized
 *    when alternatives exist, which balances subscriptions while letting
 *    the cluster SR climb during creation bursts (Fig. 10).
 */
class LeastLoadedPolicy : public PlacementPolicy
{
  public:
    /** @param sr_watermark the hard per-server SR cap. */
    explicit LeastLoadedPolicy(double sr_watermark = 3.0);

    std::vector<cluster::ServerId>
    pick(const cluster::Cluster& cluster, const cluster::ResourceSpec& spec,
         std::size_t count, std::int32_t replicas_per_kernel) override;

    const char* name() const override { return "least-loaded"; }

    /** The dynamic cluster-wide SR limit, max(1, sum(S)/(sum(G)*R)). */
    double current_limit(const cluster::Cluster& cluster,
                         std::int32_t replicas_per_kernel) const;

    /** The hard per-server cap. */
    double watermark() const { return sr_watermark_; }

  private:
    double sr_watermark_;
};

/**
 * Round-robin placement without the SR cap — used by the ablation bench to
 * quantify what the default policy buys.
 */
class RoundRobinPolicy : public PlacementPolicy
{
  public:
    std::vector<cluster::ServerId>
    pick(const cluster::Cluster& cluster, const cluster::ResourceSpec& spec,
         std::size_t count, std::int32_t replicas_per_kernel) override;

    const char* name() const override { return "round-robin"; }

  private:
    std::size_t cursor_ = 0;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_PLACEMENT_HPP
