/**
 * @file
 * The Global Scheduler (§3.1): creates distributed kernels, routes
 * execute_requests to kernel replicas through per-server Local Schedulers,
 * performs yield conversion when it can pre-select the executor, handles
 * failed elections with replica migration (§3.2.3), maintains the
 * pre-warmed container pool, detects replica failures (§3.2.5), and runs
 * the auto-scaler (§3.4.2).
 */
#ifndef NBOS_SCHED_GLOBAL_SCHEDULER_HPP
#define NBOS_SCHED_GLOBAL_SCHEDULER_HPP

#include <deque>
#include <utility>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "kernel/replica.hpp"
#include "metrics/percentiles.hpp"
#include "net/network.hpp"
#include "sched/autoscaler.hpp"
#include "sched/placement.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "storage/datastore.hpp"

namespace nbos::sched {

/** Network-hop latency ranges along the request path (Fig. 15 steps). */
struct HopLatencies
{
    sim::Time client_to_gs_min = 1 * sim::kMillisecond;
    sim::Time client_to_gs_max = 3 * sim::kMillisecond;
    sim::Time gs_to_ls_min = 300 * sim::kMicrosecond;
    sim::Time gs_to_ls_max = 1 * sim::kMillisecond;
    sim::Time ls_to_replica_min = 100 * sim::kMicrosecond;
    sim::Time ls_to_replica_max = 400 * sim::kMicrosecond;
};

/** All scheduler tunables. */
struct SchedulerConfig
{
    kernel::KernelConfig kernel{};
    cluster::ResourceSpec server_shape = cluster::ResourceSpec::server_8gpu();
    std::int32_t initial_servers = 4;
    /** Hard per-server SR watermark (prevents excessive
     *  over-subscription; Fig. 10's SR peaks near 3). */
    double sr_watermark = 3.0;
    AutoScalerConfig autoscaler{};
    sim::Time autoscale_interval = 30 * sim::kSecond;
    bool enable_autoscaler = true;
    /** Pre-warmed containers maintained per server (migration pool). */
    std::int32_t prewarm_per_server = 1;
    sim::Time prewarm_check_interval = 15 * sim::kSecond;
    cluster::ContainerTimings timings{};
    /** EC2-style server provisioning time for scale-out. */
    sim::Time server_provision_min = 30 * sim::kSecond;
    sim::Time server_provision_max = 90 * sim::kSecond;
    HopLatencies hops{};
    /** Enable GS-side executor pre-selection (yield conversion). */
    bool yield_conversion = true;
    sim::Time gs_processing = 1 * sim::kMillisecond;
    sim::Time ls_processing = 300 * sim::kMicrosecond;
    /** Failed-migration retry spacing and budget (§3.2.3). */
    sim::Time migration_retry = 10 * sim::kSecond;
    std::int32_t migration_max_retries = 5;
    /** §3.4.2: a failed placement (kernel creation or migration) triggers
     *  an immediate scale-out, independent of the periodic auto-scaler. */
    bool scale_out_on_failed_placement = true;
    /** Replica health-check period (§3.2.5 heartbeats). */
    sim::Time health_check_interval = 10 * sim::kSecond;
    storage::Backend store_backend = storage::Backend::kS3;
};

/** Cluster-level events for the Fig. 10 timeline. */
struct SchedulerEvent
{
    enum class Kind
    {
        kKernelCreated,
        kMigration,
        kScaleOut,
        kScaleIn,
    };
    Kind kind;
    sim::Time time;
};

/** Per-request timing trace (drives the Fig. 15-19 breakdowns). */
struct RequestTrace
{
    sim::Time submitted_at = 0;
    sim::Time gs_received = 0;
    sim::Time gs_dispatched = 0;
    sim::Time ls_received = 0;
    sim::Time replica_received = 0;
    sim::Time execution_started = 0;
    sim::Time execution_finished = 0;
    sim::Time replica_replied = 0;
    sim::Time client_replied = 0;
    sim::Time election_latency = 0;
    bool migrated = false;
    bool aborted = false;
};

/** Scheduler-wide counters. */
struct SchedulerStats
{
    std::uint64_t kernels_created = 0;
    std::uint64_t executions_completed = 0;
    std::uint64_t executions_aborted = 0;
    std::uint64_t elections_failed = 0;
    std::uint64_t migrations = 0;
    std::uint64_t migrations_aborted = 0;
    std::uint64_t scale_outs = 0;
    std::uint64_t scale_ins = 0;
    std::uint64_t yield_conversions = 0;
    std::uint64_t immediate_commits = 0;
    std::uint64_t executor_reuses = 0;
    std::uint64_t gpu_executions = 0;
    std::uint64_t prewarm_hits = 0;
    std::uint64_t cold_starts = 0;
    std::uint64_t replica_failovers = 0;
};

/**
 * The Global Scheduler plus the per-server Local Scheduler logic. (Local
 * Schedulers are thin per-server agents; their provisioning and forwarding
 * behaviour is modelled here with explicit hop/processing delays.)
 */
class GlobalScheduler
{
  public:
    using ExecuteCallback = std::function<void(
        const kernel::ExecutionResult&, const RequestTrace&)>;
    using StartKernelCallback =
        std::function<void(cluster::KernelId, bool ok)>;

    GlobalScheduler(sim::Simulation& simulation, SchedulerConfig config,
                    std::uint64_t seed);
    ~GlobalScheduler();

    GlobalScheduler(const GlobalScheduler&) = delete;
    GlobalScheduler& operator=(const GlobalScheduler&) = delete;

    /** Provision the initial fleet and start periodic services. */
    void start();

    /**
     * Create a distributed kernel with @p spec (§3.2.1). The callback
     * fires once all replicas run and their Raft group has a leader, or
     * with ok=false if placement ultimately failed.
     */
    void start_kernel(const cluster::ResourceSpec& spec,
                      StartKernelCallback callback);

    /** Terminate a kernel and release its subscriptions. */
    void stop_kernel(cluster::KernelId kernel_id);

    /**
     * Submit a cell for execution on @p kernel_id (the Fig. 5 flow).
     * @param submitted_at client-side submission timestamp.
     */
    void submit_execute(cluster::KernelId kernel_id, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback);

    /** @name Introspection */
    ///@{
    cluster::Cluster& cluster() { return cluster_; }
    const SchedulerStats& stats() const { return stats_; }
    const std::vector<SchedulerEvent>& events() const { return events_; }
    storage::DataStore& store() { return *store_; }
    const metrics::Percentiles& sync_latencies_ms() const
    {
        return sync_latencies_ms_;
    }
    double cluster_sr() const;
    std::int32_t replicas_per_kernel() const
    {
        return config_.kernel.replica_count;
    }
    /** Access a replica (tests / fault injection). */
    kernel::KernelReplica* replica(cluster::KernelId kernel_id,
                                   std::int32_t index);
    /** Crash a replica (fail-stop); the health checker will replace it. */
    void inject_replica_failure(cluster::KernelId kernel_id,
                                std::int32_t index);
    /** Number of kernels still alive. */
    std::size_t live_kernels() const;
    /** Device ids currently bound to a replica's execution (§3.3). */
    std::vector<std::int32_t> bound_devices(cluster::KernelId kernel_id,
                                            std::int32_t index);
    ///@}

  private:
    struct ReplicaSlot
    {
        std::unique_ptr<kernel::KernelReplica> replica;
        cluster::ServerId server = cluster::kNoServer;
        cluster::ContainerId container = -1;
        bool alive = false;
        /** GPU device ids bound to the replica's current execution
         *  (§3.3: embedded in the request metadata by the GS). */
        std::vector<std::int32_t> bound_devices;
    };

    struct PendingExecution
    {
        std::string code;
        bool is_gpu = true;
        RequestTrace trace;
        ExecuteCallback callback;
        std::int32_t migration_retries = 0;
    };

    struct KernelRecord
    {
        cluster::KernelId id = cluster::kNoKernel;
        cluster::ResourceSpec spec{};
        std::vector<ReplicaSlot> slots;
        kernel::ElectionId next_election = 1;
        std::map<kernel::ElectionId, PendingExecution> pending;
        std::set<kernel::ElectionId> failed_seen;
        bool migrating = false;
        bool alive = true;
        /** True once all replicas started and the group elected a leader
         *  (gates the health-checker's orphan repair). */
        bool created = false;
    };

    struct PendingKernel
    {
        cluster::KernelId id;
        cluster::ResourceSpec spec;
        StartKernelCallback callback;
        bool scale_out_requested = false;
    };

    void provision_server(SchedulerEvent::Kind reason);
    void on_server_ready(cluster::ServerId id);
    void try_place_pending_kernels();
    void place_kernel(PendingKernel pending,
                      const std::vector<cluster::ServerId>& servers);
    void create_replica(KernelRecord& record, std::int32_t index,
                        cluster::ServerId server, bool passive);
    void install_hooks(KernelRecord& record, std::int32_t index);
    void dispatch_execution(KernelRecord& record, kernel::ElectionId id,
                            std::int32_t designated);
    void on_result(cluster::KernelId kernel_id,
                   const kernel::ExecutionResult& result);
    void on_election_failed(cluster::KernelId kernel_id,
                            kernel::ElectionId election);
    void begin_migration(cluster::KernelId kernel_id,
                         kernel::ElectionId election);
    void continue_migration(cluster::KernelId kernel_id,
                            kernel::ElectionId election,
                            std::int32_t victim_index,
                            const std::string& checkpoint);
    void finish_migration(cluster::KernelId kernel_id,
                          kernel::ElectionId election,
                          std::int32_t victim_index,
                          cluster::ServerId target,
                          const std::string& checkpoint, bool used_prewarm);
    void abort_execution(cluster::KernelId kernel_id,
                         kernel::ElectionId election,
                         const std::string& reason);
    void run_autoscaler();
    void run_prewarmer();
    void run_health_check();
    void replace_replica(cluster::KernelId kernel_id, std::int32_t index);
    std::int32_t pick_designated(const KernelRecord& record) const;
    sim::Time sample(sim::Time lo, sim::Time hi);
    cluster::ServerId pick_migration_target(const KernelRecord& record);
    void record_event(SchedulerEvent::Kind kind);

    sim::Simulation& simulation_;
    SchedulerConfig config_;
    sim::Rng rng_;
    net::Network network_;
    cluster::Cluster cluster_;
    cluster::PrewarmPool prewarm_;
    std::unique_ptr<storage::DataStore> store_;
    std::unique_ptr<PlacementPolicy> placement_;

    std::map<cluster::KernelId, KernelRecord> kernels_;
    std::deque<PendingKernel> pending_kernels_;
    /** Migrations whose victim resources were already released (guards
     *  the retry path against double release). */
    std::set<std::pair<cluster::KernelId, kernel::ElectionId>>
        victim_released_;
    std::vector<std::unique_ptr<kernel::KernelReplica>> graveyard_;
    cluster::KernelId next_kernel_id_ = 1;
    cluster::ContainerId next_container_id_ = 1;
    net::NodeId next_raft_id_ = 1000;
    std::int32_t servers_provisioning_ = 0;

    SchedulerStats stats_;
    std::vector<SchedulerEvent> events_;
    metrics::Percentiles sync_latencies_ms_;
    bool started_ = false;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_GLOBAL_SCHEDULER_HPP
