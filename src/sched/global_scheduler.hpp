/**
 * @file
 * The Global Scheduler (§3.1) — monolithic facade.
 *
 * Since the sharding refactor the actual scheduling engine lives in
 * sched::SchedulerShard (sched/shard.hpp); this class is the
 * single-shard view of it with the historical API, used wherever one
 * event loop drives one scheduler (tests, examples, the prototype engine
 * at SchedulerConfig::shards == 1). It is byte-identical in behaviour to
 * the pre-sharding implementation: identity {0, 1} gives the shard the
 * whole fleet, the 1, 2, 3, ... kernel-id sequence, and the same RNG
 * streams.
 *
 * For shards > 1 use sched::ShardedGlobalScheduler
 * (sched/sharded_scheduler.hpp), which partitions sessions across N of
 * these engines and merges their signals deterministically.
 */
#ifndef NBOS_SCHED_GLOBAL_SCHEDULER_HPP
#define NBOS_SCHED_GLOBAL_SCHEDULER_HPP

#include <string>
#include <utility>
#include <vector>

#include "sched/scheduler_types.hpp"
#include "sched/shard.hpp"

namespace nbos::sched {

/** The Global Scheduler plus the per-server Local Scheduler logic, as a
 *  single shard owning the whole fleet. */
class GlobalScheduler
{
  public:
    using ExecuteCallback = SchedulerShard::ExecuteCallback;
    using StartKernelCallback = SchedulerShard::StartKernelCallback;

    GlobalScheduler(sim::Simulation& simulation, SchedulerConfig config,
                    std::uint64_t seed)
        : shard_(simulation, std::move(config), seed, ShardIdentity{0, 1})
    {
    }

    GlobalScheduler(const GlobalScheduler&) = delete;
    GlobalScheduler& operator=(const GlobalScheduler&) = delete;

    /** Provision the initial fleet and start periodic services. */
    void start() { shard_.start(); }

    /**
     * Create a distributed kernel with @p spec (§3.2.1). The callback
     * fires once all replicas run and their Raft group has a leader, or
     * with ok=false if placement ultimately failed.
     */
    void start_kernel(const cluster::ResourceSpec& spec,
                      StartKernelCallback callback)
    {
        shard_.start_kernel(spec, std::move(callback));
    }

    /** Terminate a kernel and release its subscriptions. */
    void stop_kernel(cluster::KernelId kernel_id)
    {
        shard_.stop_kernel(kernel_id);
    }

    /**
     * Submit a cell for execution on @p kernel_id (the Fig. 5 flow).
     * @param submitted_at client-side submission timestamp.
     */
    void submit_execute(cluster::KernelId kernel_id, std::string code,
                        bool is_gpu, sim::Time submitted_at,
                        ExecuteCallback callback)
    {
        shard_.submit_execute(kernel_id, std::move(code), is_gpu,
                              submitted_at, std::move(callback));
    }

    /** @name Introspection */
    ///@{
    cluster::Cluster& cluster() { return shard_.cluster(); }
    const SchedulerStats& stats() const { return shard_.stats(); }
    const std::vector<SchedulerEvent>& events() const
    {
        return shard_.events();
    }
    storage::DataStore& store() { return shard_.store(); }
    const metrics::Percentiles& sync_latencies_ms() const
    {
        return shard_.sync_latencies_ms();
    }
    double cluster_sr() const { return shard_.cluster_sr(); }
    std::int32_t replicas_per_kernel() const
    {
        return shard_.replicas_per_kernel();
    }
    /** Access a replica (tests / fault injection). */
    kernel::KernelReplica* replica(cluster::KernelId kernel_id,
                                   std::int32_t index)
    {
        return shard_.replica(kernel_id, index);
    }
    /** Crash a replica (fail-stop); the health checker will replace it. */
    void inject_replica_failure(cluster::KernelId kernel_id,
                                std::int32_t index)
    {
        shard_.inject_replica_failure(kernel_id, index);
    }
    /** Number of kernels still alive. */
    std::size_t live_kernels() const { return shard_.live_kernels(); }
    /** Device ids currently bound to a replica's execution (§3.3). */
    std::vector<std::int32_t> bound_devices(cluster::KernelId kernel_id,
                                            std::int32_t index)
    {
        return shard_.bound_devices(kernel_id, index);
    }
    /** The chaos controller (null unless SchedulerConfig::chaos.enabled). */
    chaos::ChaosController* chaos() { return shard_.chaos(); }
    /** Network delivery stats (chaos observability). */
    const net::NetworkStats& network_stats() const
    {
        return shard_.network_stats();
    }
    /** The underlying single shard (sharding-equivalence tests). */
    SchedulerShard& shard() { return shard_; }
    ///@}

  private:
    SchedulerShard shard_;
};

}  // namespace nbos::sched

#endif  // NBOS_SCHED_GLOBAL_SCHEDULER_HPP
