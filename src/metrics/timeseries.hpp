/**
 * @file
 * Step-function time series used for the paper's timeline plots
 * (provisioned GPUs, committed GPUs, subscription ratio, active sessions,
 * billing) and for GPU-hour integration.
 */
#ifndef NBOS_METRICS_TIMESERIES_HPP
#define NBOS_METRICS_TIMESERIES_HPP

#include <cstddef>
#include <vector>

#include "sim/time.hpp"

namespace nbos::metrics {

/** One (time, value) observation. */
struct Sample
{
    sim::Time time;
    double value;
};

/**
 * Right-continuous step function: the recorded value holds until the next
 * observation. Observations must be recorded with non-decreasing timestamps.
 */
class TimeSeries
{
  public:
    /** Record the new value at @p t (t must be >= the last recorded time). */
    void record(sim::Time t, double value);

    /** Add @p delta to the current value at time @p t. */
    void add(sim::Time t, double delta);

    /** Value at time @p t (0 before the first observation). */
    double value_at(sim::Time t) const;

    /** Latest recorded value (0 if empty). */
    double current() const;

    /** Number of recorded observations. */
    std::size_t size() const { return samples_.size(); }

    /** True if no observations recorded. */
    bool empty() const { return samples_.empty(); }

    /** Raw observations. */
    const std::vector<Sample>& samples() const { return samples_; }

    /**
     * Integrate the step function over [t0, t1].
     * @return area in value-seconds (divide by 3600 for value-hours).
     */
    double integrate_seconds(sim::Time t0, sim::Time t1) const;

    /** Integrate over [t0, t1] and express the area in value-hours. */
    double integrate_hours(sim::Time t0, sim::Time t1) const;

    /** Maximum recorded value (0 if empty). */
    double max_value() const;

    /** Time-weighted mean over [t0, t1]. */
    double mean_over(sim::Time t0, sim::Time t1) const;

    /**
     * Down-sample to at most @p buckets evenly spaced points over [t0, t1]
     * for plotting (each point is the value at the bucket start).
     */
    std::vector<Sample> resample(sim::Time t0, sim::Time t1,
                                 std::size_t buckets) const;

  private:
    std::vector<Sample> samples_;
};

}  // namespace nbos::metrics

#endif  // NBOS_METRICS_TIMESERIES_HPP
