/**
 * @file
 * Repeated-trial statistics for multi-seed experiment sweeps: a streaming
 * accumulator (mean / stddev / min / max over per-seed scalar metrics) and
 * Student-t 95 % confidence intervals, so benches can report `mean ± ci95`
 * instead of single-seed point estimates.
 */
#ifndef NBOS_METRICS_STATS_HPP
#define NBOS_METRICS_STATS_HPP

#include <cstddef>

namespace nbos::metrics {

/** Snapshot of a RunStats accumulator, ready for table printing. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    /** Sample standard deviation (n-1 denominator; 0 when count < 2). */
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    /** Half-width of the two-sided Student-t 95 % confidence interval of
     *  the mean: t(count-1) * stddev / sqrt(count); 0 when count < 2. */
    double ci95 = 0.0;
};

/**
 * Streaming accumulator over repeated-trial scalars (one value per seed).
 *
 * Uses Welford's online algorithm, so add() is O(1) and numerically
 * stable for the sample counts sweeps produce. Accumulation order is
 * observable at the last floating-point bit (as with any fp summation);
 * callers that need bit-identical aggregates must fold in a fixed order —
 * core::SeedSweep folds in seed order for exactly this reason.
 */
class RunStats
{
  public:
    /** Record one per-trial value. */
    void add(double value);

    /** Fold @p other into this accumulator (Chan's parallel merge). */
    void merge(const RunStats& other);

    /** Number of recorded trials. */
    std::size_t count() const { return count_; }

    bool empty() const { return count_ == 0; }

    /** Arithmetic mean (0 if empty). */
    double mean() const { return mean_; }

    /** Sample variance, n-1 denominator (0 when count < 2). */
    double variance() const;

    /** Sample standard deviation (0 when count < 2). */
    double stddev() const;

    /** Smallest recorded value (0 if empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /** Largest recorded value (0 if empty). */
    double max() const { return count_ == 0 ? 0.0 : max_; }

    /** Sum of all recorded values. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Student-t 95 % confidence half-width of the mean (0 if count < 2). */
    double ci95_half_width() const;

    /** Snapshot every statistic at once. */
    Summary summary() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    /** Sum of squared deviations from the running mean (Welford M2). */
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Two-sided Student-t critical value at 95 % confidence for @p dof
 * degrees of freedom. Exact table for dof 1..30; linear interpolation in
 * 1/dof through the 40/60/120 anchors above that, converging to the
 * normal 1.960 as dof grows. @p dof 0 returns 0 (undefined interval).
 */
double student_t95(std::size_t dof);

}  // namespace nbos::metrics

#endif  // NBOS_METRICS_STATS_HPP
