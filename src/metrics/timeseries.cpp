#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace nbos::metrics {

void
TimeSeries::record(sim::Time t, double value)
{
    if (!samples_.empty()) {
        assert(t >= samples_.back().time && "timestamps must not decrease");
        if (samples_.back().time == t) {
            samples_.back().value = value;
            return;
        }
    }
    samples_.push_back(Sample{t, value});
}

void
TimeSeries::add(sim::Time t, double delta)
{
    record(t, current() + delta);
}

double
TimeSeries::value_at(sim::Time t) const
{
    if (samples_.empty() || t < samples_.front().time) {
        return 0.0;
    }
    // Last sample with time <= t.
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t,
        [](sim::Time lhs, const Sample& s) { return lhs < s.time; });
    return (it - 1)->value;
}

double
TimeSeries::current() const
{
    return samples_.empty() ? 0.0 : samples_.back().value;
}

double
TimeSeries::integrate_seconds(sim::Time t0, sim::Time t1) const
{
    if (samples_.empty() || t1 <= t0) {
        return 0.0;
    }
    double area_us = 0.0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        const sim::Time seg_start = std::max(samples_[i].time, t0);
        const sim::Time seg_end_raw = (i + 1 < samples_.size())
                                          ? samples_[i + 1].time
                                          : t1;
        const sim::Time seg_end = std::min(seg_end_raw, t1);
        if (seg_end > seg_start) {
            area_us += samples_[i].value *
                       static_cast<double>(seg_end - seg_start);
        }
        if (samples_[i].time >= t1) {
            break;
        }
    }
    return area_us / static_cast<double>(sim::kSecond);
}

double
TimeSeries::integrate_hours(sim::Time t0, sim::Time t1) const
{
    return integrate_seconds(t0, t1) / 3600.0;
}

double
TimeSeries::max_value() const
{
    double best = 0.0;
    for (const auto& s : samples_) {
        best = std::max(best, s.value);
    }
    return best;
}

double
TimeSeries::mean_over(sim::Time t0, sim::Time t1) const
{
    if (t1 <= t0) {
        return 0.0;
    }
    return integrate_seconds(t0, t1) /
           (static_cast<double>(t1 - t0) / static_cast<double>(sim::kSecond));
}

std::vector<Sample>
TimeSeries::resample(sim::Time t0, sim::Time t1, std::size_t buckets) const
{
    std::vector<Sample> out;
    if (buckets == 0 || t1 <= t0) {
        return out;
    }
    out.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
        const sim::Time t =
            t0 + static_cast<sim::Time>(
                     (static_cast<double>(t1 - t0) * static_cast<double>(i)) /
                     static_cast<double>(buckets));
        out.push_back(Sample{t, value_at(t)});
    }
    return out;
}

}  // namespace nbos::metrics
