/**
 * @file
 * Percentile / CDF accumulator used for every distribution the paper plots
 * (task durations, IATs, interactivity delays, TCTs, sync latencies, ...).
 */
#ifndef NBOS_METRICS_PERCENTILES_HPP
#define NBOS_METRICS_PERCENTILES_HPP

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace nbos::metrics {

/** One (value, cumulative-fraction) point of an empirical CDF. */
struct CdfPoint
{
    double value;
    double fraction;
};

/**
 * Exact sample accumulator with percentile and CDF extraction.
 *
 * Samples are kept verbatim (experiments produce at most a few million
 * samples) and sorted lazily, so add() is O(1).
 *
 * Thread safety: concurrent const accessors are safe — the lazy sort is
 * double-checked under an internal lock, so read-only aggregation (e.g.
 * ExperimentRunner workers reporting finished results while other threads
 * read them) cannot race. Mutating calls (add/add_all) still require
 * external exclusion against all other access.
 */
class Percentiles
{
  public:
    Percentiles() = default;
    Percentiles(const Percentiles& other);
    Percentiles(Percentiles&& other) noexcept;
    Percentiles& operator=(const Percentiles& other);
    Percentiles& operator=(Percentiles&& other) noexcept;

    /** Record one sample. */
    void add(double value);

    /** Record many samples. */
    void add_all(const std::vector<double>& values);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    /** True if no samples recorded. */
    bool empty() const { return samples_.empty(); }

    /** Smallest sample (0 if empty). */
    double min() const;

    /** Largest sample (0 if empty). */
    double max() const;

    /** Arithmetic mean (0 if empty). */
    double mean() const;

    /** Sum of all samples. */
    double sum() const;

    /**
     * Linear-interpolated percentile.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Median (percentile 50). */
    double median() const { return percentile(50.0); }

    /** Fraction of samples <= @p value (empirical CDF evaluated at value). */
    double cdf_at(double value) const;

    /**
     * Evenly spaced CDF points for plotting.
     * @param points number of points (>= 2).
     */
    std::vector<CdfPoint> cdf(std::size_t points = 100) const;

    /** Sorted copy of the samples. */
    std::vector<double> sorted() const;

    /**
     * One-line summary ("n=... p50=... p90=... p99=... max=...") for
     * experiment logs.
     */
    std::string summary(const std::string& label) const;

  private:
    void ensure_sorted() const;

    mutable std::vector<double> samples_;
    /** Acquire/release flag: readers that observe true may use samples_
     *  without the lock (the sorting write happened-before). */
    mutable std::atomic<bool> sorted_{true};
    mutable std::mutex sort_mutex_;
};

}  // namespace nbos::metrics

#endif  // NBOS_METRICS_PERCENTILES_HPP
