#include "metrics/stats.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace nbos::metrics {

void
RunStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

void
RunStats::merge(const RunStats& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunStats::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunStats::ci95_half_width() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return student_t95(count_ - 1) * stddev() /
           std::sqrt(static_cast<double>(count_));
}

Summary
RunStats::summary() const
{
    Summary out;
    out.count = count_;
    out.mean = mean();
    out.stddev = stddev();
    out.min = min();
    out.max = max();
    out.ci95 = ci95_half_width();
    return out;
}

double
student_t95(std::size_t dof)
{
    // Two-sided 95 % (i.e. 0.975 quantile) critical values, dof 1..30.
    static constexpr std::array<double, 30> kTable = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048,  2.045, 2.042,
    };
    if (dof == 0) {
        return 0.0;
    }
    if (dof <= kTable.size()) {
        return kTable[dof - 1];
    }
    // Above the table: interpolate linearly in 1/dof through the standard
    // 40/60/120 anchors, ending at the normal limit 1.960.
    struct Anchor
    {
        double inv_dof;
        double value;
    };
    static constexpr std::array<Anchor, 5> kAnchors = {{
        {1.0 / 30.0, 2.042},
        {1.0 / 40.0, 2.021},
        {1.0 / 60.0, 2.000},
        {1.0 / 120.0, 1.980},
        {0.0, 1.960},
    }};
    const double x = 1.0 / static_cast<double>(dof);
    for (std::size_t i = 1; i < kAnchors.size(); ++i) {
        if (x >= kAnchors[i].inv_dof) {
            const Anchor& hi = kAnchors[i - 1];
            const Anchor& lo = kAnchors[i];
            const double t = (x - lo.inv_dof) / (hi.inv_dof - lo.inv_dof);
            return lo.value + t * (hi.value - lo.value);
        }
    }
    return 1.960;
}

}  // namespace nbos::metrics
