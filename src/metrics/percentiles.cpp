#include "metrics/percentiles.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace nbos::metrics {

Percentiles::Percentiles(const Percentiles& other)
{
    // Serialize against a concurrent lazy sort in the source.
    const std::lock_guard<std::mutex> lock(other.sort_mutex_);
    samples_ = other.samples_;
    sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

Percentiles::Percentiles(Percentiles&& other) noexcept
{
    const std::lock_guard<std::mutex> lock(other.sort_mutex_);
    samples_ = std::move(other.samples_);
    sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

Percentiles&
Percentiles::operator=(const Percentiles& other)
{
    if (this != &other) {
        const std::lock_guard<std::mutex> lock(other.sort_mutex_);
        samples_ = other.samples_;
        sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
}

Percentiles&
Percentiles::operator=(Percentiles&& other) noexcept
{
    if (this != &other) {
        const std::lock_guard<std::mutex> lock(other.sort_mutex_);
        samples_ = std::move(other.samples_);
        sorted_.store(other.sorted_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
}

void
Percentiles::add(double value)
{
    samples_.push_back(value);
    sorted_.store(false, std::memory_order_relaxed);
}

void
Percentiles::add_all(const std::vector<double>& values)
{
    samples_.insert(samples_.end(), values.begin(), values.end());
    sorted_.store(false, std::memory_order_relaxed);
}

void
Percentiles::ensure_sorted() const
{
    // Double-checked lazy sort: concurrent const readers previously raced on
    // the in-place std::sort of the mutable sample buffer.
    if (sorted_.load(std::memory_order_acquire)) {
        return;
    }
    const std::lock_guard<std::mutex> lock(sort_mutex_);
    if (!sorted_.load(std::memory_order_relaxed)) {
        std::sort(samples_.begin(), samples_.end());
        sorted_.store(true, std::memory_order_release);
    }
}

double
Percentiles::min() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    ensure_sorted();
    return samples_.front();
}

double
Percentiles::max() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    ensure_sorted();
    return samples_.back();
}

double
Percentiles::mean() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    return sum() / static_cast<double>(samples_.size());
}

double
Percentiles::sum() const
{
    // Keeps the buffer's current accumulation order (sorting first would
    // perturb floating-point rounding), but must not scan while another
    // const reader's lazy sort is rearranging the elements.
    if (sorted_.load(std::memory_order_acquire)) {
        return std::accumulate(samples_.begin(), samples_.end(), 0.0);
    }
    const std::lock_guard<std::mutex> lock(sort_mutex_);
    return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double
Percentiles::percentile(double p) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    ensure_sorted();
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi) {
        return samples_[lo];
    }
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
Percentiles::cdf_at(double value) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    ensure_sorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), value);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

std::vector<CdfPoint>
Percentiles::cdf(std::size_t points) const
{
    std::vector<CdfPoint> out;
    if (samples_.empty()) {
        return out;
    }
    ensure_sorted();
    if (points < 2) {
        points = 2;
    }
    out.reserve(points);
    const auto n = samples_.size();
    for (std::size_t i = 0; i < points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(points - 1);
        auto idx = static_cast<std::size_t>(
            frac * static_cast<double>(n - 1));
        out.push_back(CdfPoint{samples_[idx],
                               static_cast<double>(idx + 1) /
                                   static_cast<double>(n)});
    }
    return out;
}

std::vector<double>
Percentiles::sorted() const
{
    ensure_sorted();
    return samples_;
}

std::string
Percentiles::summary(const std::string& label) const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-28s n=%8zu mean=%12.3f p50=%12.3f p90=%12.3f "
                  "p99=%12.3f max=%12.3f",
                  label.c_str(), count(), mean(), percentile(50),
                  percentile(90), percentile(99), max());
    return buf;
}

}  // namespace nbos::metrics
