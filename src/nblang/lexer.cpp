#include "nblang/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace nbos::nblang {

namespace {

bool
is_ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token>
tokenize(const std::string& source)
{
    std::vector<Token> tokens;
    std::size_t line = 1;
    std::size_t column = 1;
    std::size_t i = 0;

    auto push = [&](TokenType type, std::string text = "",
                    double number = 0.0) {
        // Collapse consecutive separators and drop leading ones.
        if (type == TokenType::kNewline &&
            (tokens.empty() || tokens.back().type == TokenType::kNewline)) {
            return;
        }
        tokens.push_back(Token{type, std::move(text), number, line, column});
    };

    while (i < source.size()) {
        const char c = source[i];
        if (c == '\n') {
            push(TokenType::kNewline);
            ++i;
            ++line;
            column = 1;
            continue;
        }
        if (c == ';') {
            push(TokenType::kNewline);
            ++i;
            ++column;
            continue;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            ++i;
            ++column;
            continue;
        }
        if (c == '#') {
            while (i < source.size() && source[i] != '\n') {
                ++i;
            }
            continue;
        }
        if (is_ident_start(c)) {
            std::size_t start = i;
            while (i < source.size() && is_ident_char(source[i])) {
                ++i;
            }
            std::string word = source.substr(start, i - start);
            if (word == "del") {
                push(TokenType::kDel, word);
            } else {
                push(TokenType::kIdent, word);
            }
            column += i - start;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t start = i;
            while (i < source.size() &&
                   (std::isdigit(static_cast<unsigned char>(source[i])) ||
                    source[i] == '.' || source[i] == 'e' || source[i] == 'E' ||
                    ((source[i] == '+' || source[i] == '-') && i > start &&
                     (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
                ++i;
            }
            const std::string text = source.substr(start, i - start);
            char* end = nullptr;
            const double value = std::strtod(text.c_str(), &end);
            if (end == nullptr || *end != '\0') {
                throw Error("malformed number '" + text + "'", line, column);
            }
            push(TokenType::kNumber, text, value);
            column += i - start;
            continue;
        }
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::size_t start = ++i;
            while (i < source.size() && source[i] != quote &&
                   source[i] != '\n') {
                ++i;
            }
            if (i >= source.size() || source[i] != quote) {
                throw Error("unterminated string", line, column);
            }
            push(TokenType::kString, source.substr(start, i - start));
            column += i - start + 2;
            ++i;
            continue;
        }
        auto two_char = [&](char next) {
            return i + 1 < source.size() && source[i + 1] == next;
        };
        switch (c) {
          case '+':
            if (two_char('=')) {
                push(TokenType::kPlusAssign, "+=");
                i += 2;
                column += 2;
            } else {
                push(TokenType::kPlus, "+");
                ++i;
                ++column;
            }
            continue;
          case '-':
            if (two_char('=')) {
                push(TokenType::kMinusAssign, "-=");
                i += 2;
                column += 2;
            } else {
                push(TokenType::kMinus, "-");
                ++i;
                ++column;
            }
            continue;
          case '*':
            if (two_char('=')) {
                push(TokenType::kStarAssign, "*=");
                i += 2;
                column += 2;
            } else {
                push(TokenType::kStar, "*");
                ++i;
                ++column;
            }
            continue;
          case '/':
            push(TokenType::kSlash, "/");
            ++i;
            ++column;
            continue;
          case '=':
            push(TokenType::kAssign, "=");
            ++i;
            ++column;
            continue;
          case '(':
            push(TokenType::kLParen, "(");
            ++i;
            ++column;
            continue;
          case ')':
            push(TokenType::kRParen, ")");
            ++i;
            ++column;
            continue;
          case ',':
            push(TokenType::kComma, ",");
            ++i;
            ++column;
            continue;
          default:
            throw Error(std::string("unexpected character '") + c + "'",
                        line, column);
        }
    }
    // Trailing separator simplifies the parser's statement loop.
    if (!tokens.empty() && tokens.back().type != TokenType::kNewline) {
        tokens.push_back(Token{TokenType::kNewline, "", 0.0, line, column});
    }
    tokens.push_back(Token{TokenType::kEnd, "", 0.0, line, column});
    return tokens;
}

}  // namespace nbos::nblang
