/**
 * @file
 * NbLang values and interpreter.
 *
 * The interpreter executes a parsed cell against a kernel namespace (the
 * per-session global variables) and reports the *effects* the NotebookOS
 * control plane cares about: GPU compute requested, VRAM touched, which
 * globals were assigned/deleted (for state replication), and printed output.
 */
#ifndef NBOS_NBLANG_INTERPRETER_HPP
#define NBOS_NBLANG_INTERPRETER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nblang/ast.hpp"

namespace nbos::nblang {

/** Runtime value categories. */
enum class ValueKind
{
    kNone,
    kNumber,
    kString,
    kTensor,
    kModel,
    kDataset,
};

/** Human-readable value-kind name. */
const char* to_string(ValueKind kind);

/** A runtime value in the kernel namespace. */
struct Value
{
    ValueKind kind = ValueKind::kNone;
    double number = 0.0;
    /** String payload, or model/dataset name for those kinds. */
    std::string text;
    /** Memory footprint of tensor/model/dataset values. */
    std::uint64_t size_bytes = 0;
    /** Bumped whenever the value is mutated (e.g. by train()). */
    std::uint64_t version = 0;

    static Value none();
    static Value number_of(double v);
    static Value string_of(std::string v);
    static Value tensor_of(std::uint64_t bytes);

    /** Render for print()/debugging. */
    std::string repr() const;
};

/** The kernel namespace: user-defined globals. */
using Namespace = std::map<std::string, Value>;

/** Effects of executing one cell; consumed by the kernel replica. */
struct Effect
{
    /** GPU compute requested by train()/evaluate() calls, in seconds. */
    double gpu_seconds = 0.0;
    /** CPU-only compute requested via cpu_compute()/sleep(), in seconds. */
    double cpu_seconds = 0.0;
    /** Peak VRAM footprint touched by GPU calls. */
    std::uint64_t gpu_bytes = 0;
    /** Globals assigned (created or overwritten), in execution order. */
    std::vector<std::string> assigned;
    /** Globals deleted via `del`. */
    std::vector<std::string> deleted;
    /** Accumulated print() output. */
    std::string output;
    /** True if any GPU builtin was invoked. */
    bool used_gpu() const { return gpu_seconds > 0.0; }
};

/**
 * Execute @p program against @p ns, mutating it in place.
 * @return the execution effects.
 * @throws Error on runtime failures (undefined names, type mismatch, ...).
 */
Effect execute(const Program& program, Namespace& ns);

/** Convenience: parse then execute source text. */
Effect execute_source(const std::string& source, Namespace& ns);

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_INTERPRETER_HPP
