/**
 * @file
 * NbLang lexer: source text to token stream.
 */
#ifndef NBOS_NBLANG_LEXER_HPP
#define NBOS_NBLANG_LEXER_HPP

#include <string>
#include <vector>

#include "nblang/token.hpp"

namespace nbos::nblang {

/**
 * Tokenize NbLang source.
 *
 * Comments start with '#' and run to end of line. Newlines and ';' both
 * produce kNewline separators; consecutive separators are collapsed.
 * @throws Error on unrecognized characters or unterminated strings.
 */
std::vector<Token> tokenize(const std::string& source);

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_LEXER_HPP
