#include "nblang/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "nblang/catalog.hpp"
#include "nblang/parser.hpp"
#include "nblang/token.hpp"

namespace nbos::nblang {

namespace {

constexpr std::uint64_t kMB = 1024ULL * 1024ULL;

}  // namespace

const char*
to_string(ValueKind kind)
{
    switch (kind) {
      case ValueKind::kNone:
        return "none";
      case ValueKind::kNumber:
        return "number";
      case ValueKind::kString:
        return "string";
      case ValueKind::kTensor:
        return "tensor";
      case ValueKind::kModel:
        return "model";
      case ValueKind::kDataset:
        return "dataset";
    }
    return "unknown";
}

Value
Value::none()
{
    return Value{};
}

Value
Value::number_of(double v)
{
    Value value;
    value.kind = ValueKind::kNumber;
    value.number = v;
    return value;
}

Value
Value::string_of(std::string v)
{
    Value value;
    value.kind = ValueKind::kString;
    value.text = std::move(v);
    return value;
}

Value
Value::tensor_of(std::uint64_t bytes)
{
    Value value;
    value.kind = ValueKind::kTensor;
    value.size_bytes = bytes;
    return value;
}

std::string
Value::repr() const
{
    char buf[128];
    switch (kind) {
      case ValueKind::kNone:
        return "none";
      case ValueKind::kNumber: {
        std::snprintf(buf, sizeof(buf), "%g", number);
        return buf;
      }
      case ValueKind::kString:
        return text;
      case ValueKind::kTensor:
        std::snprintf(buf, sizeof(buf), "tensor(%.1fMB)",
                      static_cast<double>(size_bytes) /
                          static_cast<double>(kMB));
        return buf;
      case ValueKind::kModel:
        std::snprintf(buf, sizeof(buf), "model:%s(v%llu)", text.c_str(),
                      static_cast<unsigned long long>(version));
        return buf;
      case ValueKind::kDataset:
        std::snprintf(buf, sizeof(buf), "dataset:%s", text.c_str());
        return buf;
    }
    return "?";
}

namespace {

/** Tree-walking evaluator carrying the namespace and the effect record. */
class Evaluator
{
  public:
    Evaluator(Namespace& ns, Effect& effect) : ns_(ns), effect_(effect) {}

    void
    run(const Program& program)
    {
        for (const Stmt& stmt : program.statements) {
            std::visit([this, &stmt](const auto& node) { exec(node, stmt); },
                       stmt.node);
        }
    }

  private:
    void
    exec(const AssignStmt& assign, const Stmt& stmt)
    {
        Value value = eval(*assign.value);
        if (assign.op != '=') {
            const auto it = ns_.find(assign.target);
            if (it == ns_.end()) {
                throw Error("augmented assignment to undefined variable '" +
                                assign.target + "'",
                            stmt.line, 0);
            }
            value = binary(assign.op, it->second, value, stmt.line);
        }
        const auto it = ns_.find(assign.target);
        if (it != ns_.end()) {
            value.version = it->second.version + 1;
        }
        ns_[assign.target] = std::move(value);
        effect_.assigned.push_back(assign.target);
    }

    void
    exec(const ExprStmt& expr_stmt, const Stmt&)
    {
        eval(*expr_stmt.expr);
    }

    void
    exec(const DelStmt& del, const Stmt& stmt)
    {
        if (ns_.erase(del.name) == 0) {
            throw Error("del of undefined variable '" + del.name + "'",
                        stmt.line, 0);
        }
        effect_.deleted.push_back(del.name);
    }

    Value
    eval(const Expr& expr)
    {
        return std::visit(
            [this, &expr](const auto& node) { return eval_node(node, expr); },
            expr.node);
    }

    Value eval_node(const NumberLit& lit, const Expr&)
    {
        return Value::number_of(lit.value);
    }

    Value eval_node(const StringLit& lit, const Expr&)
    {
        return Value::string_of(lit.value);
    }

    Value
    eval_node(const NameRef& ref, const Expr& expr)
    {
        const auto it = ns_.find(ref.name);
        if (it == ns_.end()) {
            throw Error("undefined variable '" + ref.name + "'", expr.line,
                        0);
        }
        return it->second;
    }

    Value
    eval_node(const UnaryOp& unary, const Expr& expr)
    {
        Value operand = eval(*unary.operand);
        if (operand.kind != ValueKind::kNumber) {
            throw Error("unary '-' requires a number", expr.line, 0);
        }
        operand.number = -operand.number;
        return operand;
    }

    Value
    eval_node(const BinaryOp& bin, const Expr& expr)
    {
        const Value lhs = eval(*bin.lhs);
        const Value rhs = eval(*bin.rhs);
        return binary(bin.op, lhs, rhs, expr.line);
    }

    Value
    binary(char op, const Value& lhs, const Value& rhs, std::size_t line)
    {
        if (lhs.kind == ValueKind::kNumber &&
            rhs.kind == ValueKind::kNumber) {
            switch (op) {
              case '+':
                return Value::number_of(lhs.number + rhs.number);
              case '-':
                return Value::number_of(lhs.number - rhs.number);
              case '*':
                return Value::number_of(lhs.number * rhs.number);
              case '/':
                if (rhs.number == 0.0) {
                    throw Error("division by zero", line, 0);
                }
                return Value::number_of(lhs.number / rhs.number);
            }
        }
        if (lhs.kind == ValueKind::kString &&
            rhs.kind == ValueKind::kString && op == '+') {
            return Value::string_of(lhs.text + rhs.text);
        }
        if (lhs.kind == ValueKind::kTensor &&
            rhs.kind == ValueKind::kTensor && (op == '+' || op == '-')) {
            // Elementwise combine: footprint is the larger operand.
            return Value::tensor_of(std::max(lhs.size_bytes, rhs.size_bytes));
        }
        if (lhs.kind == ValueKind::kTensor &&
            rhs.kind == ValueKind::kNumber && (op == '*' || op == '/')) {
            return Value::tensor_of(lhs.size_bytes);
        }
        throw Error(std::string("unsupported operand types for '") + op +
                        "': " + to_string(lhs.kind) + " and " +
                        to_string(rhs.kind),
                    line, 0);
    }

    Value
    eval_node(const CallExpr& call, const Expr& expr)
    {
        std::vector<Value> args;
        args.reserve(call.args.size());
        for (const ExprPtr& arg : call.args) {
            args.push_back(eval(*arg));
        }
        std::map<std::string, Value> kwargs;
        for (const auto& [key, arg] : call.kwargs) {
            kwargs[key] = eval(*arg);
        }
        return dispatch(call.callee, args, kwargs, expr.line);
    }

    static double
    number_arg(const std::vector<Value>& args, std::size_t index,
               const std::string& callee, std::size_t line)
    {
        if (index >= args.size() ||
            args[index].kind != ValueKind::kNumber) {
            throw Error(callee + "() expects a number argument", line, 0);
        }
        return args[index].number;
    }

    Value
    dispatch(const std::string& callee, const std::vector<Value>& args,
             const std::map<std::string, Value>& kwargs, std::size_t line)
    {
        if (callee == "tensor" || callee == "zeros") {
            const double mb = number_arg(args, 0, callee, line);
            if (mb < 0) {
                throw Error("tensor size must be non-negative", line, 0);
            }
            return Value::tensor_of(
                static_cast<std::uint64_t>(mb * static_cast<double>(kMB)));
        }
        if (callee == "load_model") {
            if (args.empty() || args[0].kind != ValueKind::kString) {
                throw Error("load_model() expects a model name", line, 0);
            }
            const auto info = find_model(args[0].text);
            if (!info) {
                throw Error("unknown model '" + args[0].text + "'", line, 0);
            }
            Value value;
            value.kind = ValueKind::kModel;
            value.text = info->name;
            value.size_bytes = info->param_bytes;
            return value;
        }
        if (callee == "load_dataset") {
            if (args.empty() || args[0].kind != ValueKind::kString) {
                throw Error("load_dataset() expects a dataset name", line, 0);
            }
            const auto info = find_dataset(args[0].text);
            if (!info) {
                throw Error("unknown dataset '" + args[0].text + "'", line,
                            0);
            }
            Value value;
            value.kind = ValueKind::kDataset;
            value.text = info->name;
            value.size_bytes = info->bytes;
            return value;
        }
        if (callee == "train") {
            if (args.size() < 2 || args[0].kind != ValueKind::kModel ||
                args[1].kind != ValueKind::kDataset) {
                throw Error("train(model, dataset) argument mismatch", line,
                            0);
            }
            double epochs = 1.0;
            if (const auto it = kwargs.find("epochs"); it != kwargs.end()) {
                if (it->second.kind != ValueKind::kNumber ||
                    it->second.number <= 0) {
                    throw Error("train() epochs must be a positive number",
                                line, 0);
                }
                epochs = it->second.number;
            } else if (args.size() >= 3 &&
                       args[2].kind == ValueKind::kNumber) {
                epochs = args[2].number;
            }
            const auto model = find_model(args[0].text);
            const auto dataset = find_dataset(args[1].text);
            const double compute = model ? model->compute_factor : 1.0;
            const double epoch_s = dataset ? dataset->epoch_gpu_seconds
                                           : 60.0;
            effect_.gpu_seconds += epochs * epoch_s * compute;
            effect_.gpu_bytes =
                std::max(effect_.gpu_bytes,
                         args[0].size_bytes + args[1].size_bytes);
            Value updated = args[0];
            updated.version += 1;
            return updated;
        }
        if (callee == "evaluate") {
            if (args.size() < 2 || args[0].kind != ValueKind::kModel ||
                args[1].kind != ValueKind::kDataset) {
                throw Error("evaluate(model, dataset) argument mismatch",
                            line, 0);
            }
            const auto model = find_model(args[0].text);
            const auto dataset = find_dataset(args[1].text);
            const double compute = model ? model->compute_factor : 1.0;
            const double epoch_s = dataset ? dataset->epoch_gpu_seconds
                                           : 60.0;
            effect_.gpu_seconds += 0.1 * epoch_s * compute;
            effect_.gpu_bytes =
                std::max(effect_.gpu_bytes,
                         args[0].size_bytes + args[1].size_bytes);
            // Deterministic pseudo-accuracy from the model version.
            const double accuracy =
                0.5 + 0.5 * (1.0 - 1.0 / (2.0 +
                                          static_cast<double>(
                                              args[0].version)));
            return Value::number_of(accuracy);
        }
        if (callee == "gpu_compute") {
            const double seconds = number_arg(args, 0, callee, line);
            if (seconds < 0) {
                throw Error("gpu_compute() seconds must be non-negative",
                            line, 0);
            }
            effect_.gpu_seconds += seconds;
            double vram_mb = 1024.0;
            if (const auto it = kwargs.find("vram_mb"); it != kwargs.end() &&
                it->second.kind == ValueKind::kNumber) {
                vram_mb = it->second.number;
            }
            effect_.gpu_bytes =
                std::max(effect_.gpu_bytes,
                         static_cast<std::uint64_t>(
                             vram_mb * static_cast<double>(kMB)));
            return Value::none();
        }
        if (callee == "cpu_compute" || callee == "sleep") {
            const double seconds = number_arg(args, 0, callee, line);
            if (seconds < 0) {
                throw Error(callee + "() seconds must be non-negative", line,
                            0);
            }
            effect_.cpu_seconds += seconds;
            return Value::none();
        }
        if (callee == "print") {
            std::string rendered;
            for (std::size_t i = 0; i < args.size(); ++i) {
                if (i > 0) {
                    rendered += " ";
                }
                rendered += args[i].repr();
            }
            effect_.output += rendered + "\n";
            return Value::none();
        }
        if (callee == "size_mb") {
            if (args.empty()) {
                throw Error("size_mb() expects one argument", line, 0);
            }
            return Value::number_of(static_cast<double>(args[0].size_bytes) /
                                    static_cast<double>(kMB));
        }
        throw Error("unknown function '" + callee + "'", line, 0);
    }

    Namespace& ns_;
    Effect& effect_;
};

}  // namespace

Effect
execute(const Program& program, Namespace& ns)
{
    Effect effect;
    Evaluator evaluator(ns, effect);
    evaluator.run(program);
    return effect;
}

Effect
execute_source(const std::string& source, Namespace& ns)
{
    return execute(parse(source), ns);
}

}  // namespace nbos::nblang
