#include "nblang/catalog.hpp"

namespace nbos::nblang {

namespace {

constexpr std::uint64_t kMB = 1024ULL * 1024ULL;
constexpr std::uint64_t kGB = 1024ULL * kMB;

}  // namespace

const char*
to_string(Domain domain)
{
    switch (domain) {
      case Domain::kComputerVision:
        return "computer-vision";
      case Domain::kNaturalLanguage:
        return "natural-language-processing";
      case Domain::kSpeechRecognition:
        return "speech-recognition";
    }
    return "unknown";
}

const std::vector<ModelInfo>&
model_catalog()
{
    static const std::vector<ModelInfo> kModels = {
        {"vgg16", Domain::kComputerVision, 528 * kMB, 2.5},
        {"resnet18", Domain::kComputerVision, 45 * kMB, 1.0},
        {"inception_v3", Domain::kComputerVision, 104 * kMB, 1.8},
        {"bert", Domain::kNaturalLanguage, 440 * kMB, 3.0},
        {"gpt2", Domain::kNaturalLanguage, 548 * kMB, 3.5},
        {"deepspeech2", Domain::kSpeechRecognition, 350 * kMB, 2.8},
    };
    return kModels;
}

const std::vector<DatasetInfo>&
dataset_catalog()
{
    static const std::vector<DatasetInfo> kDatasets = {
        {"cifar10", Domain::kComputerVision, 170 * kMB, 40.0},
        {"cifar100", Domain::kComputerVision, 170 * kMB, 40.0},
        {"tiny_imagenet", Domain::kComputerVision, 237 * kMB, 120.0},
        {"imdb", Domain::kNaturalLanguage, 80 * kMB, 90.0},
        {"cola", Domain::kNaturalLanguage, 10 * kMB, 20.0},
        {"librispeech", Domain::kSpeechRecognition, 6 * kGB, 300.0},
    };
    return kDatasets;
}

std::optional<ModelInfo>
find_model(const std::string& name)
{
    for (const auto& model : model_catalog()) {
        if (model.name == name) {
            return model;
        }
    }
    return std::nullopt;
}

std::optional<DatasetInfo>
find_dataset(const std::string& name)
{
    for (const auto& dataset : dataset_catalog()) {
        if (dataset.name == name) {
            return dataset;
        }
    }
    return std::nullopt;
}

std::vector<ModelInfo>
models_in_domain(Domain domain)
{
    std::vector<ModelInfo> out;
    for (const auto& model : model_catalog()) {
        if (model.domain == domain) {
            out.push_back(model);
        }
    }
    return out;
}

std::vector<DatasetInfo>
datasets_in_domain(Domain domain)
{
    std::vector<DatasetInfo> out;
    for (const auto& dataset : dataset_catalog()) {
        if (dataset.domain == domain) {
            out.push_back(dataset);
        }
    }
    return out;
}

}  // namespace nbos::nblang
