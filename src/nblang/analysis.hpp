/**
 * @file
 * Static AST analysis used by the state-replication protocol (§3.2.4).
 *
 * The executor replica analyzes the cell's AST to determine which globals
 * the cell (re)binds — those must be synchronized to the standby replicas —
 * and which it merely reads. Combined with the post-execution namespace,
 * the kernel then size-classifies each synchronized variable: small values
 * travel in the Raft log, large values go to the Distributed Data Store
 * with only a pointer in the log.
 */
#ifndef NBOS_NBLANG_ANALYSIS_HPP
#define NBOS_NBLANG_ANALYSIS_HPP

#include <set>
#include <string>

#include "nblang/ast.hpp"

namespace nbos::nblang {

/** Result of statically analyzing one cell. */
struct CellAnalysis
{
    /** Globals the cell assigns (must be replicated after execution). */
    std::set<std::string> assigned;
    /** Globals the cell reads before (or without) assigning. */
    std::set<std::string> referenced;
    /** Globals the cell deletes. */
    std::set<std::string> deleted;
    /** True if the cell syntactically contains a GPU builtin call. */
    bool calls_gpu = false;
};

/** Analyze a parsed cell. */
CellAnalysis analyze(const Program& program);

/** Convenience: parse then analyze source text. */
CellAnalysis analyze_source(const std::string& source);

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_ANALYSIS_HPP
