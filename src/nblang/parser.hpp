/**
 * @file
 * NbLang recursive-descent parser: token stream to Program AST.
 */
#ifndef NBOS_NBLANG_PARSER_HPP
#define NBOS_NBLANG_PARSER_HPP

#include <string>

#include "nblang/ast.hpp"

namespace nbos::nblang {

/**
 * Parse NbLang source into a Program.
 * @throws Error on syntax errors, with line/column positions.
 */
Program parse(const std::string& source);

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_PARSER_HPP
