/**
 * @file
 * Token definitions for NbLang, the mini notebook-cell language.
 *
 * NbLang stands in for the Python cells of the paper's IPython kernels: it
 * supports assignments, arithmetic, and calls to training builtins, which is
 * exactly the surface the AST-based state-replication protocol (§3.2.4)
 * needs to analyze.
 */
#ifndef NBOS_NBLANG_TOKEN_HPP
#define NBOS_NBLANG_TOKEN_HPP

#include <cstddef>
#include <stdexcept>
#include <string>

namespace nbos::nblang {

/** Lexical token categories. */
enum class TokenType
{
    kIdent,
    kNumber,
    kString,
    kPlus,
    kMinus,
    kStar,
    kSlash,
    kAssign,       ///< =
    kPlusAssign,   ///< +=
    kMinusAssign,  ///< -=
    kStarAssign,   ///< *=
    kLParen,
    kRParen,
    kComma,
    kNewline,  ///< statement separator (newline or ';')
    kDel,      ///< 'del' keyword
    kEnd,
};

/** One lexical token. */
struct Token
{
    TokenType type = TokenType::kEnd;
    std::string text;
    double number = 0.0;
    std::size_t line = 1;
    std::size_t column = 1;
};

/** Error thrown on malformed source or failed execution. */
class Error : public std::runtime_error
{
  public:
    Error(std::string message, std::size_t line, std::size_t column)
        : std::runtime_error("line " + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message),
          line_(line),
          column_(column)
    {
    }

    explicit Error(std::string message)
        : std::runtime_error(std::move(message))
    {
    }

    std::size_t line() const { return line_; }
    std::size_t column() const { return column_; }

  private:
    std::size_t line_ = 0;
    std::size_t column_ = 0;
};

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_TOKEN_HPP
