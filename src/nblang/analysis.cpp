#include "nblang/analysis.hpp"

#include "nblang/parser.hpp"

namespace nbos::nblang {

namespace {

/** Builtins whose invocation marks the cell as a GPU task. */
bool
is_gpu_builtin(const std::string& callee)
{
    return callee == "train" || callee == "evaluate" ||
           callee == "gpu_compute";
}

class Analyzer
{
  public:
    explicit Analyzer(CellAnalysis& result) : result_(result) {}

    void
    visit(const Program& program)
    {
        for (const Stmt& stmt : program.statements) {
            std::visit([this](const auto& node) { visit_stmt(node); },
                       stmt.node);
        }
    }

  private:
    void
    visit_stmt(const AssignStmt& assign)
    {
        // Augmented assignment reads the target first.
        if (assign.op != '=') {
            note_read(assign.target);
        }
        visit_expr(*assign.value);
        result_.assigned.insert(assign.target);
    }

    void visit_stmt(const ExprStmt& stmt) { visit_expr(*stmt.expr); }

    void
    visit_stmt(const DelStmt& del)
    {
        result_.deleted.insert(del.name);
        result_.assigned.erase(del.name);
    }

    void
    visit_expr(const Expr& expr)
    {
        std::visit([this](const auto& node) { visit_node(node); }, expr.node);
    }

    void visit_node(const NumberLit&) {}
    void visit_node(const StringLit&) {}

    void visit_node(const NameRef& ref) { note_read(ref.name); }

    void visit_node(const UnaryOp& unary) { visit_expr(*unary.operand); }

    void
    visit_node(const BinaryOp& bin)
    {
        visit_expr(*bin.lhs);
        visit_expr(*bin.rhs);
    }

    void
    visit_node(const CallExpr& call)
    {
        if (is_gpu_builtin(call.callee)) {
            result_.calls_gpu = true;
        }
        for (const ExprPtr& arg : call.args) {
            visit_expr(*arg);
        }
        for (const auto& [key, arg] : call.kwargs) {
            visit_expr(*arg);
        }
    }

    void
    note_read(const std::string& name)
    {
        // Only names not already (re)bound by this cell count as external
        // references.
        if (result_.assigned.find(name) == result_.assigned.end()) {
            result_.referenced.insert(name);
        }
    }

    CellAnalysis& result_;
};

}  // namespace

CellAnalysis
analyze(const Program& program)
{
    CellAnalysis result;
    Analyzer analyzer(result);
    analyzer.visit(program);
    return result;
}

CellAnalysis
analyze_source(const std::string& source)
{
    return analyze(parse(source));
}

}  // namespace nbos::nblang
