/**
 * @file
 * NbLang abstract syntax tree.
 *
 * The AST is the artifact the paper's state-replication protocol analyzes
 * (Fig. 6): the executor replica converts submitted code to an AST, executes
 * it, then inspects the AST to find mutated globals for synchronization.
 */
#ifndef NBOS_NBLANG_AST_HPP
#define NBOS_NBLANG_AST_HPP

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nbos::nblang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Numeric literal. */
struct NumberLit
{
    double value = 0.0;
};

/** String literal. */
struct StringLit
{
    std::string value;
};

/** Reference to a global variable. */
struct NameRef
{
    std::string name;
};

/** Unary operation (only '-'). */
struct UnaryOp
{
    char op = '-';
    ExprPtr operand;
};

/** Binary arithmetic. */
struct BinaryOp
{
    char op = '+';
    ExprPtr lhs;
    ExprPtr rhs;
};

/** Builtin call with positional and keyword arguments. */
struct CallExpr
{
    std::string callee;
    std::vector<ExprPtr> args;
    std::vector<std::pair<std::string, ExprPtr>> kwargs;
};

/** Expression node (sum type). */
struct Expr
{
    std::variant<NumberLit, StringLit, NameRef, UnaryOp, BinaryOp, CallExpr>
        node;
    std::size_t line = 1;
};

/** `target = expr` (op is '=', or '+', '-', '*' for augmented forms). */
struct AssignStmt
{
    std::string target;
    char op = '=';
    ExprPtr value;
};

/** Bare expression evaluated for its effects (e.g. `train(m, d)`). */
struct ExprStmt
{
    ExprPtr expr;
};

/** `del name`. */
struct DelStmt
{
    std::string name;
};

/** Statement node (sum type). */
struct Stmt
{
    std::variant<AssignStmt, ExprStmt, DelStmt> node;
    std::size_t line = 1;
};

/** A parsed notebook cell. */
struct Program
{
    std::vector<Stmt> statements;
};

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_AST_HPP
