/**
 * @file
 * Model/dataset catalog from Table 1 of the paper.
 *
 * Sizes are real published artifact sizes (parameter files / dataset
 * archives); per-epoch GPU seconds are rough single-V100 magnitudes used to
 * derive deterministic training costs in NbLang's `train()` builtin.
 */
#ifndef NBOS_NBLANG_CATALOG_HPP
#define NBOS_NBLANG_CATALOG_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace nbos::nblang {

/** Application domains from Table 1. */
enum class Domain
{
    kComputerVision,
    kNaturalLanguage,
    kSpeechRecognition,
};

/** Human-readable domain name. */
const char* to_string(Domain domain);

/** One model entry. */
struct ModelInfo
{
    std::string name;
    Domain domain = Domain::kComputerVision;
    /** Parameter-file footprint in bytes. */
    std::uint64_t param_bytes = 0;
    /** Relative compute cost multiplier for one epoch. */
    double compute_factor = 1.0;
};

/** One dataset entry. */
struct DatasetInfo
{
    std::string name;
    Domain domain = Domain::kComputerVision;
    /** On-disk footprint in bytes. */
    std::uint64_t bytes = 0;
    /** Baseline GPU-seconds per epoch at compute_factor 1.0. */
    double epoch_gpu_seconds = 60.0;
};

/** All models of Table 1. */
const std::vector<ModelInfo>& model_catalog();

/** All datasets of Table 1. */
const std::vector<DatasetInfo>& dataset_catalog();

/** Look up a model by (case-sensitive) name. */
std::optional<ModelInfo> find_model(const std::string& name);

/** Look up a dataset by name. */
std::optional<DatasetInfo> find_dataset(const std::string& name);

/** Models belonging to @p domain. */
std::vector<ModelInfo> models_in_domain(Domain domain);

/** Datasets belonging to @p domain. */
std::vector<DatasetInfo> datasets_in_domain(Domain domain);

}  // namespace nbos::nblang

#endif  // NBOS_NBLANG_CATALOG_HPP
