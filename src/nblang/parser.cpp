#include "nblang/parser.hpp"

#include <utility>

#include "nblang/lexer.hpp"

namespace nbos::nblang {

namespace {

/** Recursive-descent parser over the token vector. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program
    parse_program()
    {
        Program program;
        skip_separators();
        while (!check(TokenType::kEnd)) {
            program.statements.push_back(parse_statement());
            expect_separator();
            skip_separators();
        }
        return program;
    }

  private:
    const Token& peek(std::size_t ahead = 0) const
    {
        const std::size_t idx =
            std::min(pos_ + ahead, tokens_.size() - 1);
        return tokens_[idx];
    }

    bool check(TokenType type) const { return peek().type == type; }

    const Token&
    advance()
    {
        const Token& t = tokens_[pos_];
        if (pos_ + 1 < tokens_.size()) {
            ++pos_;
        }
        return t;
    }

    const Token&
    expect(TokenType type, const std::string& what)
    {
        if (!check(type)) {
            const Token& t = peek();
            throw Error("expected " + what + " but found '" + t.text + "'",
                        t.line, t.column);
        }
        return advance();
    }

    void
    skip_separators()
    {
        while (check(TokenType::kNewline)) {
            advance();
        }
    }

    void
    expect_separator()
    {
        if (check(TokenType::kEnd)) {
            return;
        }
        expect(TokenType::kNewline, "end of statement");
    }

    Stmt
    parse_statement()
    {
        const Token& first = peek();
        Stmt stmt;
        stmt.line = first.line;
        if (check(TokenType::kDel)) {
            advance();
            const Token& name = expect(TokenType::kIdent, "variable name");
            stmt.node = DelStmt{name.text};
            return stmt;
        }
        if (check(TokenType::kIdent)) {
            const TokenType next = peek(1).type;
            if (next == TokenType::kAssign ||
                next == TokenType::kPlusAssign ||
                next == TokenType::kMinusAssign ||
                next == TokenType::kStarAssign) {
                const Token& target = advance();
                const Token& op = advance();
                AssignStmt assign;
                assign.target = target.text;
                switch (op.type) {
                  case TokenType::kAssign:
                    assign.op = '=';
                    break;
                  case TokenType::kPlusAssign:
                    assign.op = '+';
                    break;
                  case TokenType::kMinusAssign:
                    assign.op = '-';
                    break;
                  default:
                    assign.op = '*';
                    break;
                }
                assign.value = parse_expression();
                stmt.node = std::move(assign);
                return stmt;
            }
        }
        ExprStmt expr_stmt;
        expr_stmt.expr = parse_expression();
        stmt.node = std::move(expr_stmt);
        return stmt;
    }

    ExprPtr
    parse_expression()
    {
        ExprPtr lhs = parse_term();
        while (check(TokenType::kPlus) || check(TokenType::kMinus)) {
            const Token& op = advance();
            ExprPtr rhs = parse_term();
            auto expr = std::make_unique<Expr>();
            expr->line = op.line;
            expr->node = BinaryOp{op.type == TokenType::kPlus ? '+' : '-',
                                  std::move(lhs), std::move(rhs)};
            lhs = std::move(expr);
        }
        return lhs;
    }

    ExprPtr
    parse_term()
    {
        ExprPtr lhs = parse_factor();
        while (check(TokenType::kStar) || check(TokenType::kSlash)) {
            const Token& op = advance();
            ExprPtr rhs = parse_factor();
            auto expr = std::make_unique<Expr>();
            expr->line = op.line;
            expr->node = BinaryOp{op.type == TokenType::kStar ? '*' : '/',
                                  std::move(lhs), std::move(rhs)};
            lhs = std::move(expr);
        }
        return lhs;
    }

    ExprPtr
    parse_factor()
    {
        const Token& t = peek();
        auto expr = std::make_unique<Expr>();
        expr->line = t.line;
        switch (t.type) {
          case TokenType::kNumber:
            advance();
            expr->node = NumberLit{t.number};
            return expr;
          case TokenType::kString:
            advance();
            expr->node = StringLit{t.text};
            return expr;
          case TokenType::kMinus: {
            advance();
            UnaryOp unary;
            unary.op = '-';
            unary.operand = parse_factor();
            expr->node = std::move(unary);
            return expr;
          }
          case TokenType::kLParen: {
            advance();
            ExprPtr inner = parse_expression();
            expect(TokenType::kRParen, "')'");
            return inner;
          }
          case TokenType::kIdent: {
            advance();
            if (check(TokenType::kLParen)) {
                expr->node = parse_call(t.text);
                return expr;
            }
            expr->node = NameRef{t.text};
            return expr;
          }
          default:
            throw Error("unexpected token '" + t.text + "'", t.line,
                        t.column);
        }
    }

    CallExpr
    parse_call(const std::string& callee)
    {
        expect(TokenType::kLParen, "'('");
        CallExpr call;
        call.callee = callee;
        if (!check(TokenType::kRParen)) {
            while (true) {
                // kwarg: IDENT '=' expr (but not IDENT '==', which we do
                // not support anyway).
                if (check(TokenType::kIdent) &&
                    peek(1).type == TokenType::kAssign) {
                    const Token& key = advance();
                    advance();  // '='
                    call.kwargs.emplace_back(key.text, parse_expression());
                } else {
                    call.args.push_back(parse_expression());
                }
                if (check(TokenType::kComma)) {
                    advance();
                    continue;
                }
                break;
            }
        }
        expect(TokenType::kRParen, "')'");
        return call;
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

}  // namespace

Program
parse(const std::string& source)
{
    Parser parser(tokenize(source));
    return parser.parse_program();
}

}  // namespace nbos::nblang
