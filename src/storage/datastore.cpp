#include "storage/datastore.hpp"

#include <utility>

namespace nbos::storage {

const char*
to_string(Backend backend)
{
    switch (backend) {
      case Backend::kS3:
        return "s3";
      case Backend::kRedis:
        return "redis";
      case Backend::kHdfs:
        return "hdfs";
    }
    return "unknown";
}

BackendModel
default_model(Backend backend)
{
    BackendModel model;
    switch (backend) {
      case Backend::kS3:
        model.base_latency = 30 * sim::kMillisecond;
        model.jitter = 20 * sim::kMillisecond;
        model.bandwidth_bps = 600e6;  // multi-part GET/PUT
        model.tail_probability = 0.01;
        model.tail_multiplier = 4.0;
        break;
      case Backend::kRedis:
        model.base_latency = 1 * sim::kMillisecond;
        model.jitter = 1 * sim::kMillisecond;
        model.bandwidth_bps = 1.2e9;
        model.tail_probability = 0.005;
        model.tail_multiplier = 3.0;
        break;
      case Backend::kHdfs:
        model.base_latency = 10 * sim::kMillisecond;
        model.jitter = 10 * sim::kMillisecond;
        model.bandwidth_bps = 800e6;
        model.tail_probability = 0.02;
        model.tail_multiplier = 3.0;
        break;
    }
    return model;
}

DataStore::DataStore(sim::Simulation& simulation, Backend backend,
                     sim::Rng rng)
    : DataStore(simulation, default_model(backend), backend, rng)
{
}

DataStore::DataStore(sim::Simulation& simulation, BackendModel model,
                     Backend backend, sim::Rng rng)
    : simulation_(simulation), model_(model), backend_(backend), rng_(rng)
{
}

sim::Time
DataStore::sample_latency(std::uint64_t size_bytes)
{
    sim::Time latency = model_.base_latency;
    if (model_.jitter > 0) {
        latency += rng_.uniform_int(0, model_.jitter);
    }
    double transfer_s =
        static_cast<double>(size_bytes) / model_.bandwidth_bps;
    if (rng_.bernoulli(model_.tail_probability)) {
        transfer_s *= model_.tail_multiplier;
    }
    latency += sim::from_seconds(transfer_s);
    return latency;
}

void
DataStore::write(const std::string& key, std::uint64_t size_bytes,
                 WriteCallback on_done)
{
    const sim::Time latency = sample_latency(size_bytes);
    writes_.add(sim::to_millis(latency));
    bytes_written_ += size_bytes;
    simulation_.schedule_after(
        latency,
        [this, key, size_bytes, latency, on_done = std::move(on_done)] {
            if (const auto it = objects_.find(key); it != objects_.end()) {
                total_bytes_ -= it->second;
            }
            objects_[key] = size_bytes;
            total_bytes_ += size_bytes;
            if (on_done) {
                on_done(latency);
            }
        });
}

void
DataStore::read(const std::string& key, ReadCallback on_done)
{
    ReadResult result;
    const auto it = objects_.find(key);
    if (it == objects_.end()) {
        result.found = false;
        result.latency = model_.base_latency;
    } else {
        result.found = true;
        result.size_bytes = it->second;
        result.latency = sample_latency(it->second);
        reads_.add(sim::to_millis(result.latency));
    }
    simulation_.schedule_after(result.latency,
                               [result, on_done = std::move(on_done)] {
                                   if (on_done) {
                                       on_done(result);
                                   }
                               });
}

void
DataStore::erase(const std::string& key)
{
    if (const auto it = objects_.find(key); it != objects_.end()) {
        total_bytes_ -= it->second;
        objects_.erase(it);
    }
}

bool
DataStore::contains(const std::string& key) const
{
    return objects_.find(key) != objects_.end();
}

std::uint64_t
DataStore::size_of(const std::string& key) const
{
    const auto it = objects_.find(key);
    return it == objects_.end() ? 0 : it->second;
}

NodeCache::NodeCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes)
{
}

void
NodeCache::put(const std::string& key, std::uint64_t size_bytes)
{
    erase(key);
    if (size_bytes > capacity_bytes_) {
        return;  // Never cache objects larger than the whole cache.
    }
    while (used_bytes_ + size_bytes > capacity_bytes_ && !lru_.empty()) {
        const Entry& victim = lru_.back();
        used_bytes_ -= victim.size;
        entries_.erase(victim.key);
        lru_.pop_back();
    }
    lru_.push_front(Entry{key, size_bytes});
    entries_[key] = lru_.begin();
    used_bytes_ += size_bytes;
}

bool
NodeCache::get(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
NodeCache::erase(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        return;
    }
    used_bytes_ -= it->second->size;
    lru_.erase(it->second);
    entries_.erase(it);
}

}  // namespace nbos::storage
