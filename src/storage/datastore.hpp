/**
 * @file
 * The pluggable Distributed Data Store (§3.2.4) used for asynchronous
 * replication of large objects (model parameters, datasets).
 *
 * NotebookOS supports AWS S3, Redis, and HDFS; each backend here is a
 * latency + bandwidth model calibrated so the Fig. 11 magnitudes hold
 * (99% of writes within ~7 s, reads within ~4 s for multi-GB objects).
 */
#ifndef NBOS_STORAGE_DATASTORE_HPP
#define NBOS_STORAGE_DATASTORE_HPP

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>

#include "metrics/percentiles.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace nbos::storage {

/** Supported data-store backends. */
enum class Backend
{
    kS3,
    kRedis,
    kHdfs,
};

/** Human-readable backend name. */
const char* to_string(Backend backend);

/** Latency/bandwidth model for one backend. */
struct BackendModel
{
    /** Fixed per-operation latency (request setup, metadata). */
    sim::Time base_latency = 20 * sim::kMillisecond;
    /** Uniform jitter added to the base latency. */
    sim::Time jitter = 10 * sim::kMillisecond;
    /** Sustained transfer bandwidth in bytes per second. */
    double bandwidth_bps = 400e6;
    /** Heavy-tail probability (slow replica / retry). */
    double tail_probability = 0.01;
    /** Multiplier applied to the transfer time on a tail event. */
    double tail_multiplier = 4.0;
};

/** Default model for a backend (S3: high throughput, high base latency;
 *  Redis: low latency, memory-speed; HDFS: in between). */
BackendModel default_model(Backend backend);

/** Result handed to read callbacks. */
struct ReadResult
{
    bool found = false;
    std::uint64_t size_bytes = 0;
    sim::Time latency = 0;
};

/**
 * Simulated distributed object store.
 *
 * Objects are tracked by key and size; payload bytes are never materialized
 * (the control plane only needs sizes and timing). All operations complete
 * asynchronously through the simulation, mirroring the paper's off-critical-
 * path checkpointing.
 */
class DataStore
{
  public:
    using WriteCallback = std::function<void(sim::Time latency)>;
    using ReadCallback = std::function<void(const ReadResult&)>;

    DataStore(sim::Simulation& simulation, Backend backend, sim::Rng rng);
    DataStore(sim::Simulation& simulation, BackendModel model, Backend backend,
              sim::Rng rng);

    /** Store (or overwrite) an object; callback fires on completion. */
    void write(const std::string& key, std::uint64_t size_bytes,
               WriteCallback on_done);

    /** Fetch an object; callback fires on completion (found=false if absent
     *  — absence still costs the base latency, like a real GET miss). */
    void read(const std::string& key, ReadCallback on_done);

    /** Delete an object immediately (metadata operation, no callback). */
    void erase(const std::string& key);

    /** Synchronous existence check (metadata cached client-side). */
    bool contains(const std::string& key) const;

    /** Size of a stored object; 0 if absent. */
    std::uint64_t size_of(const std::string& key) const;

    /** Number of stored objects. */
    std::size_t object_count() const { return objects_.size(); }

    /** Total stored bytes. */
    std::uint64_t total_bytes() const { return total_bytes_; }

    /** Cumulative bytes ever written (traffic accounting). */
    std::uint64_t bytes_written() const { return bytes_written_; }

    /** Which backend this store models. */
    Backend backend() const { return backend_; }

    /** Latency distributions recorded so far (for Fig. 11). */
    const metrics::Percentiles& write_latencies() const { return writes_; }
    const metrics::Percentiles& read_latencies() const { return reads_; }

  private:
    sim::Time sample_latency(std::uint64_t size_bytes);

    sim::Simulation& simulation_;
    BackendModel model_;
    Backend backend_;
    sim::Rng rng_;
    std::unordered_map<std::string, std::uint64_t> objects_;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t bytes_written_ = 0;
    metrics::Percentiles writes_;
    metrics::Percentiles reads_;
};

/**
 * Node-level LRU cache (§3.2.4: "NotebookOS also employs a simple node-level
 * cache to limit storage and memory costs"). Tracks which large objects are
 * already resident on a GPU server so a migrated/activated replica can skip
 * the remote read.
 */
class NodeCache
{
  public:
    /** @param capacity_bytes maximum resident bytes (evicts LRU beyond). */
    explicit NodeCache(std::uint64_t capacity_bytes);

    /** Insert/refresh an object; evicts least-recently-used as needed.
     *  Objects larger than the capacity are not cached. */
    void put(const std::string& key, std::uint64_t size_bytes);

    /** Look up an object, refreshing its recency. */
    bool get(const std::string& key);

    /** Remove one object. */
    void erase(const std::string& key);

    /** Resident byte count. */
    std::uint64_t used_bytes() const { return used_bytes_; }

    /** Number of resident objects. */
    std::size_t object_count() const { return entries_.size(); }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Entry
    {
        std::string key;
        std::uint64_t size = 0;
    };

    std::uint64_t capacity_bytes_;
    std::uint64_t used_bytes_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::list<Entry> lru_;  ///< Front = most recent.
    std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
};

}  // namespace nbos::storage

#endif  // NBOS_STORAGE_DATASTORE_HPP
