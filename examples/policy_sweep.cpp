/**
 * @file
 * Policy sweep: register a custom PolicyEngine and drive a multi-engine,
 * multi-seed sweep concurrently through the ExperimentRunner — the
 * smallest tour of the pluggable experiment API (core/engine.hpp +
 * core/runner.hpp).
 *
 * Build & run:  ./build/examples/example_policy_sweep
 */
#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/platform.hpp"
#include "core/runner.hpp"
#include "workload/generator.hpp"

using namespace nbos;

namespace {

/**
 * A toy "oracle" engine: every cell executes the moment it is submitted
 * and GPUs are provisioned exactly while cells run. Real engines model
 * queueing, placement, and consensus; this one is the lower bound every
 * policy chases (Fig. 8's Oracle line).
 */
class OracleEngine : public core::PolicyEngine
{
  public:
    std::string name() const override { return "oracle"; }

    core::Policy policy() const override
    {
        return core::Policy::kReservation;  // closest §5 bucket
    }

    core::ExperimentResults
    run(const workload::Trace& trace,
        const core::PlatformConfig& config) const override
    {
        (void)config;  // the oracle has no knobs
        core::ExperimentResults results;
        results.policy = policy();
        results.trace_name = trace.name;
        results.makespan = trace.makespan;
        for (const auto& session : trace.sessions) {
            for (const auto& task : session.tasks) {
                core::TaskOutcome outcome;
                outcome.session = session.id;
                outcome.seq = task.seq;
                outcome.is_gpu = task.is_gpu;
                outcome.gpus = session.resources.gpus;
                outcome.submit = task.submit_time;
                outcome.exec_start = task.submit_time;
                outcome.exec_end = task.submit_time + task.duration;
                outcome.reply = outcome.exec_end;
                results.tasks.push_back(outcome);
            }
        }
        results.provisioned_gpus = core::oracle_gpu_series(trace);
        results.committed_gpus = results.provisioned_gpus;
        return results;
    }
};

}  // namespace

int
main()
{
    // 1. Plug a custom engine into the process-wide registry. From here
    //    on it is addressable by name exactly like the built-ins.
    core::EngineRegistry::instance().register_engine(
        "oracle", [] { return std::make_unique<OracleEngine>(); });

    std::printf("registered engines:");
    for (const auto& name : core::EngineRegistry::instance().names()) {
        std::printf(" %s", name.c_str());
    }
    std::printf("\n\n");

    // 2. A small reproducible workload.
    workload::WorkloadGenerator generator{sim::Rng(7)};
    workload::GeneratorOptions options;
    options.makespan = 2 * sim::kHour;
    options.max_sessions = 10;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(), options);

    // 3. One spec per (engine, seed): the whole sweep executes
    //    concurrently on the runner's thread pool, and outcomes come
    //    back in spec order no matter which finishes first.
    std::vector<core::ExperimentSpec> specs;
    for (const char* engine :
         {"oracle", core::kEngineReservation, core::kEngineBatch,
          core::kEngineLcp, core::kEngineFast, core::kEnginePrototype}) {
        core::ExperimentSpec spec;
        spec.engine = engine;
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.seed = 2026;
        specs.push_back(std::move(spec));
    }

    const core::ExperimentRunner runner;
    std::printf("running %zu experiments on %zu threads...\n",
                specs.size(), runner.threads());
    const auto outcomes = runner.run(
        specs, [](const core::ExperimentOutcome& outcome,
                  std::size_t completed, std::size_t total) {
            std::printf("  [%zu/%zu] %s %s\n", completed, total,
                        outcome.label.c_str(),
                        outcome.ok ? "done" : outcome.error.c_str());
        });

    // 4. A comparison table straight off the stable-ordered outcomes.
    std::printf("\n%-16s %-8s %-12s %-12s %-10s\n", "engine", "tasks",
                "gpu-hours", "delay-p50-s", "aborted");
    for (const auto& outcome : outcomes) {
        if (!outcome.ok) {
            continue;
        }
        const auto& results = outcome.results;
        std::printf("%-16s %-8zu %-12.1f %-12.3f %-10zu\n",
                    outcome.engine.c_str(), results.tasks.size(),
                    results.gpu_hours_provisioned(),
                    results.interactivity_delays_seconds().percentile(50),
                    results.aborted_count());
    }
    std::printf("\nThe oracle line is the floor: every real policy pays "
                "some provisioning or queueing premium over it.\n");
    return 0;
}
