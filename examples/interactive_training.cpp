/**
 * @file
 * Interactive deep-learning-training session (the paper's IDLT motivating
 * workload, §2.2): a user iterates on a model — edit, train, evaluate —
 * with realistic think-time gaps while GPUs bind only during cell
 * execution. Demonstrates why Reservation-style platforms waste GPUs and
 * how NotebookOS's dynamic binding recovers them.
 *
 * Build & run:  ./build/examples/interactive_training
 */
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine_api.hpp"
#include "workload/generator.hpp"

using namespace nbos;

int
main()
{
    // One user session synthesized from the Adobe IDLT profile: short
    // trainings separated by minutes of debugging (§2.3).
    workload::WorkloadGenerator generator{sim::Rng(7)};
    workload::GeneratorOptions options;
    options.makespan = 8 * sim::kHour;
    options.max_sessions = 12;
    options.sessions_survive_trace = true;
    const workload::Trace trace =
        generator.generate(workload::TraceProfile::adobe(), options);

    std::printf("IDLT workload: %zu sessions, %zu cell tasks over 8 h\n\n",
                trace.sessions.size(), trace.task_count());
    const auto& first = trace.sessions.front();
    std::printf("session 1 trains %s on %s with %d GPUs; first cells:\n",
                first.model.c_str(), first.dataset.c_str(),
                first.resources.gpus);
    for (std::size_t i = 0; i < 2 && i < first.tasks.size(); ++i) {
        std::printf("--- cell %zu (t=%s, %.0f s of GPU work) ---\n%s", i,
                    sim::format_time(first.tasks[i].submit_time).c_str(),
                    sim::to_seconds(first.tasks[i].duration),
                    first.tasks[i].code.c_str());
    }

    // Run the same session stream under Reservation and NotebookOS
    // through the unified run API, varying only the engine name.
    core::RunRequest request;
    request.config = core::PlatformConfig::prototype_defaults();
    request.trace = &trace;
    request.seed = 7;

    request.engine = core::kEngineReservation;
    const auto reservation = core::run(request).results;
    request.engine = core::kEnginePrototype;
    const auto nbos = core::run(request).results;

    std::printf("\n%-14s %14s %14s %14s\n", "policy", "GPU-hours",
                "delay-p50(s)", "tct-p50(s)");
    for (const auto* results : {&reservation, &nbos}) {
        std::printf("%-14s %14.1f %14.3f %14.1f\n",
                    core::to_string(results->policy),
                    results->gpu_hours_committed(),
                    results->interactivity_delays_seconds().percentile(50),
                    results->tct_ms().percentile(50) / 1000.0);
    }
    const double saved = reservation.gpu_hours_committed() -
                         nbos.gpu_hours_committed();
    std::printf("\nGPU-hours NotebookOS left unbound for other tenants: "
                "%.1f (%.0f%% of the reservation)\n",
                saved,
                100.0 * saved / reservation.gpu_hours_committed());
    std::printf("...at nearly identical interactivity (both sub-second "
                "p50 delay).\n");
    return 0;
}
