/**
 * @file
 * Quickstart: create a NotebookOS cluster, start one distributed kernel,
 * and run a few notebook cells — the smallest end-to-end tour of the
 * public API (Global Scheduler + replicated kernels + NbLang cells).
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "sched/global_scheduler.hpp"
#include "sim/simulation.hpp"

using namespace nbos;

int
main()
{
    // 1. A simulation world and a NotebookOS control plane with a small
    //    GPU fleet (4 servers x 8 GPUs).
    sim::Simulation simulation;
    sched::SchedulerConfig config;
    config.initial_servers = 4;
    config.kernel.raft.snapshot_threshold = 16;
    sched::GlobalScheduler scheduler(simulation, config, /*seed=*/42);
    scheduler.start();

    // 2. Create a distributed kernel: 3 Raft-replicated replicas placed on
    //    distinct servers, subscribed to 2 GPUs (§3.2.1).
    cluster::KernelId kernel = cluster::kNoKernel;
    scheduler.start_kernel(
        cluster::ResourceSpec{8000, 32768, 2, 32.0},
        [&](cluster::KernelId id, bool ok) {
            kernel = ok ? id : cluster::kNoKernel;
            std::printf("[%s] kernel %lld created (3 replicas, Raft "
                        "leader elected)\n",
                        sim::format_time(simulation.now()).c_str(),
                        static_cast<long long>(id));
        });
    simulation.run_until(2 * sim::kMinute);

    // 3. Run notebook cells. Each submission triggers the executor
    //    election (Fig. 5); GPUs bind only while the cell runs (§3.3).
    const char* cells[] = {
        // Cell 1: set up the session state.
        "model = load_model(\"resnet18\")\n"
        "data = load_dataset(\"cifar10\")\n"
        "step = 0\n",
        // Cell 2: train for 2 epochs on the GPU.
        "model = train(model, data, epochs=2)\n"
        "step = step + 1\n",
        // Cell 3: evaluate and print (state carried across cells and
        //         replicated to the standby replicas via Raft).
        "acc = evaluate(model, data)\n"
        "print(\"accuracy:\", acc, \"steps:\", step)\n",
    };
    for (const char* code : cells) {
        scheduler.submit_execute(
            kernel, code, /*is_gpu=*/true, simulation.now(),
            [&](const kernel::ExecutionResult& result,
                const sched::RequestTrace& trace) {
                std::printf(
                    "[%s] cell done by replica %d: status=%s "
                    "delay=%.0f ms run=%.1f s%s%s",
                    sim::format_time(simulation.now()).c_str(),
                    result.executor_replica,
                    result.status == kernel::ExecutionStatus::kOk
                        ? "ok"
                        : result.error.c_str(),
                    sim::to_millis(trace.execution_started -
                                   trace.submitted_at),
                    sim::to_seconds(trace.execution_finished -
                                    trace.execution_started),
                    result.output.empty() ? "\n" : "\n  output: ",
                    result.output.c_str());
            });
        simulation.run_until(simulation.now() + 10 * sim::kMinute);
    }

    // 4. Inspect the cluster: GPUs are no longer bound after the cells.
    std::printf("\ncluster: %zu servers, %d GPUs total, %d committed, "
                "SR=%.2f\n",
                scheduler.cluster().size(),
                scheduler.cluster().total_gpus(),
                scheduler.cluster().total_committed_gpus(),
                scheduler.cluster_sr());
    std::printf("sync latency p90 = %.2f ms over %zu samples\n",
                scheduler.sync_latencies_ms().percentile(90),
                scheduler.sync_latencies_ms().count());

    scheduler.stop_kernel(kernel);
    std::printf("kernel stopped; subscriptions released: %d subscribed\n",
                scheduler.cluster().total_subscribed_gpus());
    return 0;
}
