/**
 * @file
 * Fault tolerance and migration walkthrough (§3.2.3/§3.2.5):
 *   1. a replica crashes fail-stop and the health checker rebuilds it
 *      from the surviving majority's replicated state;
 *   2. all replica servers run out of GPUs, the executor election fails
 *      (all YIELD), and the Global Scheduler migrates a replica to a
 *      server with idle GPUs, then re-runs the cell there.
 *
 * Build & run:  ./build/examples/failover_migration
 */
#include <cstdio>
#include <set>

#include "sched/global_scheduler.hpp"
#include "sim/simulation.hpp"

using namespace nbos;

namespace {

cluster::ResourceSpec
eight_gpus()
{
    return cluster::ResourceSpec{32000, 131072, 8, 128.0};
}

}  // namespace

int
main()
{
    sim::Simulation simulation;
    sched::SchedulerConfig config;
    config.initial_servers = 4;
    config.kernel.raft.snapshot_threshold = 16;
    config.yield_conversion = false;  // show the full Raft election path
    sched::GlobalScheduler scheduler(simulation, config, 11);
    scheduler.start();

    cluster::KernelId kernel = cluster::kNoKernel;
    scheduler.start_kernel(eight_gpus(),
                           [&](cluster::KernelId id, bool ok) {
                               if (ok) {
                                   kernel = id;
                               }
                           });
    simulation.run_until(2 * sim::kMinute);
    std::printf("kernel %lld up with 3 replicas\n",
                static_cast<long long>(kernel));

    // Establish some session state.
    scheduler.submit_execute(kernel, "step = 41\ngpu_compute(5)", true,
                             simulation.now(),
                             [](const kernel::ExecutionResult&,
                                const sched::RequestTrace&) {});
    simulation.run_until(simulation.now() + 5 * sim::kMinute);

    // --- Part 1: fail-stop replica crash (§3.2.5) ---------------------
    std::printf("\n[1] crashing replica 0 (fail-stop)...\n");
    scheduler.inject_replica_failure(kernel, 0);
    simulation.run_until(simulation.now() + 5 * sim::kMinute);
    std::printf("    failovers performed: %llu; replica 0 running again: "
                "%s\n",
                static_cast<unsigned long long>(
                    scheduler.stats().replica_failovers),
                scheduler.replica(kernel, 0)->running() ? "yes" : "no");
    scheduler.submit_execute(
        kernel, "step = step + 1\nprint(step)\ngpu_compute(2)", true,
        simulation.now(),
        [&](const kernel::ExecutionResult& result,
            const sched::RequestTrace&) {
            std::printf("    post-failover cell ok, state intact: "
                        "output=%s",
                        result.output.c_str());
        });
    simulation.run_until(simulation.now() + 5 * sim::kMinute);

    // --- Part 2: failed election -> migration (§3.2.3) ----------------
    std::printf("\n[2] saturating the three replica servers...\n");
    std::set<cluster::ServerId> replica_servers;
    for (const auto& [id, server] : scheduler.cluster().servers()) {
        for (const auto& [cid, container] : server->containers()) {
            if (container.kernel == kernel) {
                replica_servers.insert(id);
            }
        }
    }
    for (const cluster::ServerId id : replica_servers) {
        scheduler.cluster().find(id)->commit(eight_gpus());
    }
    std::printf("    submitting a GPU cell: every replica must YIELD\n");
    bool done = false;
    scheduler.submit_execute(
        kernel, "step = step + 1\nprint(step)\ngpu_compute(10)", true,
        simulation.now(),
        [&](const kernel::ExecutionResult& result,
            const sched::RequestTrace& trace) {
            done = true;
            std::printf("    cell completed after migration=%s "
                        "delay=%.1f s output=%s",
                        trace.migrated ? "yes" : "no",
                        sim::to_seconds(trace.execution_started -
                                        trace.submitted_at),
                        result.output.c_str());
        });
    simulation.run_until(simulation.now() + 15 * sim::kMinute);
    std::printf("    elections failed: %llu, migrations: %llu, "
                "prewarm hits: %llu, done=%s\n",
                static_cast<unsigned long long>(
                    scheduler.stats().elections_failed),
                static_cast<unsigned long long>(
                    scheduler.stats().migrations),
                static_cast<unsigned long long>(
                    scheduler.stats().prewarm_hits),
                done ? "yes" : "no");
    return 0;
}
