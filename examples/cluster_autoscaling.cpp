/**
 * @file
 * Auto-scaling under a burst of new sessions (§3.4.2): the cluster grows
 * as kernels arrive and training demand rises (scale-out, f = 1.05 with a
 * scaling buffer), then shrinks back once sessions end (gradual 1-2
 * server scale-in).
 *
 * Build & run:  ./build/examples/cluster_autoscaling
 */
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/engine_api.hpp"
#include "workload/generator.hpp"

using namespace nbos;

int
main()
{
    // A bursty day: 60 sessions arrive in the first hours, run trainings,
    // and most end before the day is over.
    workload::TraceProfile profile = workload::TraceProfile::adobe();
    profile.session_arrival_per_hour = 20.0;
    profile.session_lifetime_mu = std::log(4.0 * 3600.0);  // ~4 h median
    profile.session_lifetime_sigma = 0.6;

    workload::WorkloadGenerator generator{sim::Rng(3)};
    workload::GeneratorOptions options;
    options.makespan = 24 * sim::kHour;
    options.max_sessions = 60;
    options.sessions_survive_trace = false;
    const workload::Trace trace = generator.generate(profile, options);

    core::RunRequest request;
    request.engine = core::kEngineFast;  // analytic engine, instant run
    request.config = core::PlatformConfig::prototype_defaults();
    request.config.scheduler.initial_servers = 2;
    request.trace = &trace;
    request.seed = 3;
    const auto results = core::run(request).results;

    const auto sessions = core::active_sessions_series(trace);
    std::printf("burst day: %zu sessions, %zu tasks\n\n",
                trace.sessions.size(), trace.task_count());
    std::printf("%-6s %-10s %-14s %-12s\n", "hour", "sessions",
                "provisioned", "committed");
    for (int hour = 0; hour <= 24; hour += 2) {
        const sim::Time t = hour * sim::kHour;
        std::printf("%-6d %-10.0f %-14.0f %-12.0f\n", hour,
                    sessions.value_at(t),
                    results.provisioned_gpus.value_at(t),
                    results.committed_gpus.value_at(t));
    }

    int scale_outs = 0;
    int scale_ins = 0;
    for (const auto& event : results.events) {
        scale_outs +=
            event.kind == sched::SchedulerEvent::Kind::kScaleOut ? 1 : 0;
        scale_ins +=
            event.kind == sched::SchedulerEvent::Kind::kScaleIn ? 1 : 0;
    }
    std::printf("\nscale-outs: %d, scale-ins: %d, migrations: %llu\n",
                scale_outs, scale_ins,
                static_cast<unsigned long long>(
                    results.sched_stats.migrations));
    std::printf("GPU-hours provisioned: %.1f (peak %.0f GPUs); the fleet "
                "followed the burst up and back down.\n",
                results.gpu_hours_provisioned(),
                results.provisioned_gpus.max_value());
    return 0;
}
