/**
 * @file
 * Seed sweep: fan one experiment out over N seeds on the thread pool and
 * report mean ± 95 % confidence intervals instead of point estimates —
 * the smallest tour of the statistics subsystem (core/seed_sweep.hpp +
 * metrics/stats.hpp). The same machinery backs `NBOS_BENCH_SEEDS=N` in
 * every figure bench.
 *
 * Build & run:  ./build/examples/example_seed_sweep
 */
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "core/platform.hpp"
#include "core/seed_sweep.hpp"
#include "workload/generator.hpp"

using namespace nbos;

namespace {

void
print_aggregate(const core::SweepAggregate& aggregate)
{
    std::printf("\n%s over seeds %llu..%llu (n=%zu):\n",
                aggregate.label.c_str(),
                static_cast<unsigned long long>(aggregate.seeds.front()),
                static_cast<unsigned long long>(aggregate.seeds.back()),
                aggregate.seeds.size());
    std::printf("  %-24s %12s %10s %10s %10s\n", "metric", "mean",
                "ci95", "min", "max");
    for (const core::MetricSummary& metric : aggregate.metrics) {
        const metrics::Summary& s = metric.summary;
        std::printf("  %-24s %12.3f %10.3f %10.3f %10.3f\n",
                    metric.name.c_str(), s.mean, s.ci95, s.min, s.max);
    }
}

}  // namespace

int
main()
{
    // A small reproducible workload (every seed below reruns this same
    // trace; only the engine's decision seed varies).
    workload::WorkloadGenerator generator{sim::Rng(7)};
    workload::GeneratorOptions options;
    options.makespan = 4 * sim::kHour;
    options.max_sessions = 12;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(), options);

    // One sweep per engine: every (engine, seed) pair is an independent
    // deterministic run, so the whole batch shares one thread pool and
    // finishes in the wall-clock time of the slowest seed.
    std::vector<core::SweepSpec> sweeps;
    for (const char* engine :
         {core::kEngineFast, core::kEngineReservation}) {
        core::SweepSpec sweep;
        sweep.base.engine = engine;
        sweep.base.trace = &trace;
        sweep.base.config = core::PlatformConfig::prototype_defaults();
        sweep.seeds = core::seed_range(1, 8);
        sweeps.push_back(std::move(sweep));
    }

    const core::SeedSweep sweeper;
    std::printf("sweeping %zu engines x %zu seeds on %zu threads...\n",
                sweeps.size(), sweeps.front().seeds.size(),
                sweeper.runner().threads());
    const auto outcomes = sweeper.run(sweeps);
    for (const core::SweepOutcome& outcome : outcomes) {
        if (!outcome.ok) {
            std::fprintf(stderr, "sweep failed: %s\n",
                         outcome.error.c_str());
            return 1;
        }
        print_aggregate(outcome.aggregate);
    }

    // The confidence interval tightens as seeds are added: refold the
    // fast engine's per-seed results with the first 2 seeds only and
    // compare the provisioned-GPU-hours interval against all 8.
    const core::SweepOutcome& fast = outcomes.front();
    const std::vector<core::ExperimentResults> head(
        fast.per_seed.begin(), fast.per_seed.begin() + 2);
    const auto narrow = core::fold_sweep(
        fast.aggregate.engine, fast.aggregate.label,
        {fast.aggregate.seeds[0], fast.aggregate.seeds[1]}, head);
    std::printf("\nci95 of gpu_hours_provisioned shrinks with seeds: "
                "n=2 -> %.3f, n=8 -> %.3f\n",
                narrow.metrics.front().summary.ci95,
                fast.aggregate.metrics.front().summary.ci95);
    std::printf("\nReport figures as `mean +/- ci95`, not single-seed "
                "points: NBOS_BENCH_SEEDS=8 does this for every bench.\n");
    return 0;
}
