/**
 * @file
 * Ablation: large-object threshold for the hybrid state-sync protocol
 * (§3.2.4). Variables at or above the threshold bypass the Raft log and
 * go to the Distributed Data Store with only a pointer in the log. A tiny
 * threshold pushes everything to the store; a huge one drags multi-MB
 * payloads through consensus and inflates sync latency.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 4 * sim::kHour;
    options.max_sessions = 25;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(),
                           bench::apply_smoke(options));

    bench::banner("Ablation: large-object sync threshold (4 h, 25 sessions)");
    std::printf("%-14s %-14s %-14s %-14s %-14s\n", "threshold",
                "sync-p50-ms", "sync-p99-ms", "store-writes",
                "store-bytes-GB");
    constexpr std::uint64_t kMB = 1024ULL * 1024ULL;
    const std::vector<std::uint64_t> thresholds{64 * 1024, 1 * kMB,
                                                64 * kMB, 1024 * kMB};
    // The threshold sweep runs concurrently on the ExperimentRunner.
    std::vector<core::ExperimentSpec> specs;
    for (const std::uint64_t threshold : thresholds) {
        char label[32];
        if (threshold >= kMB) {
            std::snprintf(label, sizeof(label), "%lluMB",
                          static_cast<unsigned long long>(threshold / kMB));
        } else {
            std::snprintf(label, sizeof(label), "%lluKB",
                          static_cast<unsigned long long>(threshold /
                                                          1024));
        }
        core::ExperimentSpec spec;
        spec.engine = core::kEnginePrototype;
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.config.scheduler.kernel.large_object_threshold = threshold;
        spec.seed = bench::kSeed;
        spec.label = label;
        specs.push_back(std::move(spec));
    }
    for (const auto& outcome : bench::run_specs_or_exit(specs)) {
        const auto& results = outcome.results;
        std::printf("%-14s %-14.2f %-14.2f %-14zu %-14.2f\n",
                    outcome.label.c_str(),
                    results.sync_ms.percentile(50),
                    results.sync_ms.percentile(99),
                    results.write_ms.count(),
                    static_cast<double>(results.store_bytes_written) /
                        (1024.0 * 1024.0 * 1024.0));
    }
    std::printf("\nExpectation: raising the threshold keeps large tensors "
                "in the Raft log,\ninflating sync latency; lowering it "
                "shifts traffic to the data store.\n");
    return 0;
}
