/**
 * @file
 * Fig. 9: (a) interactivity-delay CDFs and (b) task-completion-time CDFs
 * across the four policies, plus the §5.3.2 headline statistics
 * (GPUs committed immediately 89.6% of the time; executor reused for
 * 89.45% of consecutive executions).
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::excerpt_trace();

    // The four policies run concurrently on the ExperimentRunner;
    // results come back in request order.
    const auto results =
        bench::run_policies(trace, {{core::Policy::kReservation},
                                    {core::Policy::kBatch},
                                    {core::Policy::kNotebookOS},
                                    {core::Policy::kNotebookOSLCP}});
    const auto& reservation = results[0];
    const auto& batch = results[1];
    const auto& nbos = results[2];
    const auto& lcp = results[3];

    bench::banner("Fig. 9(a): interactivity delay (seconds)");
    bench::print_percentiles("reservation",
                             reservation.interactivity_delays_seconds(),
                             "s");
    bench::print_percentiles("batch", batch.interactivity_delays_seconds(),
                             "s");
    bench::print_percentiles("notebookos",
                             nbos.interactivity_delays_seconds(), "s");
    bench::print_percentiles("nbos-lcp",
                             lcp.interactivity_delays_seconds(), "s");
    bench::print_cdf("notebookos-delay",
                     nbos.interactivity_delays_seconds());

    bench::banner("Fig. 9(b): task completion time (milliseconds)");
    bench::print_percentiles("reservation", reservation.tct_ms(), "ms");
    bench::print_percentiles("batch", batch.tct_ms(), "ms");
    bench::print_percentiles("notebookos", nbos.tct_ms(), "ms");
    bench::print_percentiles("nbos-lcp", lcp.tct_ms(), "ms");

    bench::banner("§5.3.2 statistics (NotebookOS)");
    const auto& stats = nbos.sched_stats;
    std::printf("GPU executions:            %llu\n",
                static_cast<unsigned long long>(stats.gpu_executions));
    std::printf("immediate GPU commits:     %.2f%%  (paper: 89.6%%)\n",
                100.0 * static_cast<double>(stats.immediate_commits) /
                    static_cast<double>(stats.gpu_executions));
    std::printf("executor reused:           %.2f%%  (paper: 89.45%%)\n",
                100.0 * static_cast<double>(stats.executor_reuses) /
                    static_cast<double>(stats.gpu_executions));
    std::printf("failed elections:          %llu\n",
                static_cast<unsigned long long>(stats.elections_failed));
    std::printf("migrations:                %llu (aborted %llu)\n",
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(stats.migrations_aborted));
    std::printf("yield conversions:         %llu\n",
                static_cast<unsigned long long>(stats.yield_conversions));
    return 0;
}
