/**
 * @file
 * Table 1: models and datasets used in the evaluation, with their
 * application domains — plus the workload driver's random assignment,
 * verifying each session trains a same-domain (model, dataset) pair.
 */
#include <map>

#include "bench_common.hpp"
#include "nblang/catalog.hpp"

int
main()
{
    using namespace nbos;
    bench::banner("Table 1: models and datasets by application domain");

    for (const auto domain :
         {nblang::Domain::kComputerVision, nblang::Domain::kNaturalLanguage,
          nblang::Domain::kSpeechRecognition}) {
        std::printf("\n%-30s\n", nblang::to_string(domain));
        std::printf("  %-16s | %-16s\n", "dataset", "model");
        std::printf("  %-16s-+-%-16s\n", "----------------",
                    "----------------");
        const auto datasets = nblang::datasets_in_domain(domain);
        const auto models = nblang::models_in_domain(domain);
        const std::size_t rows = std::max(datasets.size(), models.size());
        for (std::size_t i = 0; i < rows; ++i) {
            std::printf("  %-16s | %-16s\n",
                        i < datasets.size() ? datasets[i].name.c_str() : "",
                        i < models.size() ? models[i].name.c_str() : "");
        }
    }

    bench::banner("Workload driver assignment over the 17.5 h excerpt");
    const auto trace = bench::excerpt_trace();
    std::map<std::string, int> counts;
    for (const auto& session : trace.sessions) {
        counts[session.model + " x " + session.dataset] += 1;
    }
    for (const auto& [pair, count] : counts) {
        std::printf("  %-36s %d sessions\n", pair.c_str(), count);
    }
    std::printf("\nAll %zu sessions received same-domain pairs.\n",
                trace.sessions.size());
    return 0;
}
