/**
 * @file
 * Shared helpers for the figure-reproduction benches: canonical workloads,
 * policy runners, and table printers. Each bench binary regenerates the
 * rows/series of one paper table or figure (see DESIGN.md §3 for the
 * experiment index and EXPERIMENTS.md for paper-vs-measured results).
 */
#ifndef NBOS_BENCH_COMMON_HPP
#define NBOS_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/platform.hpp"
#include "core/results.hpp"
#include "core/runner.hpp"
#include "core/seed_sweep.hpp"
#include "sched/routing.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace nbos::bench {

/** Fixed seed so every bench is reproducible run-to-run. */
inline constexpr std::uint64_t kSeed = 2026;

/** Raw values of the five NBOS_BENCH_* knobs (null = unset). Captured as
 *  a struct so parsing is a pure, testable function of its inputs. */
struct BenchEnv
{
    const char* smoke = nullptr;     ///< NBOS_BENCH_SMOKE
    const char* profile = nullptr;   ///< NBOS_BENCH_PROFILE
    const char* seeds = nullptr;     ///< NBOS_BENCH_SEEDS
    const char* shards = nullptr;    ///< NBOS_BENCH_SHARDS
    const char* routing = nullptr;   ///< NBOS_BENCH_ROUTING
    const char* policies = nullptr;  ///< NBOS_BENCH_POLICIES

    static BenchEnv capture()
    {
        BenchEnv env;
        env.smoke = std::getenv("NBOS_BENCH_SMOKE");
        env.profile = std::getenv("NBOS_BENCH_PROFILE");
        env.seeds = std::getenv("NBOS_BENCH_SEEDS");
        env.shards = std::getenv("NBOS_BENCH_SHARDS");
        env.routing = std::getenv("NBOS_BENCH_ROUTING");
        env.policies = std::getenv("NBOS_BENCH_POLICIES");
        return env;
    }
};

/**
 * The validated bench option set: every NBOS_BENCH_* knob parsed once,
 * in one place. Malformed values are a hard error with the offending
 * variable named — historically a bad NBOS_BENCH_SHARDS silently fell
 * back to 1 and an unknown profile only warned, so a typo could pass as
 * a measurement of the default scenario.
 */
struct BenchOptions
{
    /** Shrunken workloads for CI (`ctest -L smoke`); first char '0' or
     *  unset/empty means off, anything else on. */
    bool smoke = false;
    /** workload::ProfileRegistry scenario override; empty keeps the
     *  canonical adobe workloads byte-identical. */
    std::string profile;
    /** Seed-sweep width, [1, 64]; 1 = single-seed figures only. */
    std::size_t seeds = 1;
    /** Fast-engine shard count, [1, 64]; 1 = the monolithic path. */
    std::int32_t shards = 1;
    /** Session -> shard routing policy for sharded runs. */
    sched::RoutingPolicyKind routing = sched::RoutingPolicyKind::kStaticHash;
    /** Raw engine filter (comma-separated names); empty = run all. */
    std::string policies;
};

/** Parse @p env into @p out. Pure (no process state, no exit).
 *  @return false and set @p error — naming the variable and the valid
 *          range — when any value is malformed. */
inline bool
parse_bench_options(const BenchEnv& env, BenchOptions& out,
                    std::string& error)
{
    const auto parse_count = [&error](const char* raw, const char* name,
                                      long& value) {
        char* end = nullptr;
        value = std::strtol(raw, &end, 10);
        if (end == raw || *end != '\0' || value < 1 || value > 64) {
            error = std::string(name) + "='" + raw +
                    "' is not an integer in [1, 64]";
            return false;
        }
        return true;
    };

    out = BenchOptions{};
    if (env.smoke != nullptr && env.smoke[0] != '\0') {
        out.smoke = env.smoke[0] != '0';
    }
    if (env.profile != nullptr && env.profile[0] != '\0') {
        if (!workload::ProfileRegistry::instance().contains(env.profile)) {
            error = std::string("NBOS_BENCH_PROFILE='") + env.profile +
                    "' is not a registered workload profile (known:";
            for (const std::string& name :
                 workload::ProfileRegistry::instance().names()) {
                error += " " + name;
            }
            error += ")";
            return false;
        }
        out.profile = env.profile;
    }
    if (env.seeds != nullptr && env.seeds[0] != '\0') {
        long value = 0;
        if (!parse_count(env.seeds, "NBOS_BENCH_SEEDS", value)) {
            return false;
        }
        out.seeds = static_cast<std::size_t>(value);
    }
    if (env.shards != nullptr && env.shards[0] != '\0') {
        long value = 0;
        if (!parse_count(env.shards, "NBOS_BENCH_SHARDS", value)) {
            return false;
        }
        out.shards = static_cast<std::int32_t>(value);
    }
    if (env.routing != nullptr && env.routing[0] != '\0') {
        try {
            out.routing = sched::routing_policy_from_string(env.routing);
        } catch (const std::invalid_argument&) {
            error = std::string("NBOS_BENCH_ROUTING='") + env.routing +
                    "' is not a routing policy (known: static_hash "
                    "least_loaded rebalance)";
            return false;
        }
    }
    if (env.policies != nullptr) {
        out.policies = env.policies;
    }
    return true;
}

/**
 * The process's active bench options: the five NBOS_BENCH_* variables
 * parsed and validated together. A malformed value prints the error and
 * exits 2 (a typo must never pass as a measurement of the default); the
 * first call prints the active option set once, to stderr so the
 * hash-pinned stdout of every bench is unaffected.
 */
inline BenchOptions
options_or_exit()
{
    BenchOptions options;
    std::string error;
    if (!parse_bench_options(BenchEnv::capture(), options, error)) {
        std::fprintf(stderr, "[bench] %s\n", error.c_str());
        std::exit(2);
    }
    static bool announced = false;
    if (!announced) {
        announced = true;
        std::fprintf(
            stderr,
            "[bench] options: smoke=%d profile=%s seeds=%zu shards=%d "
            "routing=%s policies=%s\n",
            options.smoke ? 1 : 0,
            options.profile.empty() ? "(default)" : options.profile.c_str(),
            options.seeds, options.shards, sched::to_string(options.routing),
            options.policies.empty() ? "(all)" : options.policies.c_str());
    }
    return options;
}

/** Smoke mode (`NBOS_BENCH_SMOKE=1`, set by the `ctest -L smoke` entries)
 *  shrinks every canonical workload so all bench binaries together finish
 *  in well under a minute while still exercising their full code paths.
 *  Numbers printed under smoke mode are NOT the paper's figures. */
inline bool
smoke_mode()
{
    return options_or_exit().smoke;
}

/** Clamp self-built workload options when running under smoke mode. */
inline workload::GeneratorOptions
apply_smoke(workload::GeneratorOptions options)
{
    if (smoke_mode()) {
        options.makespan = std::min(options.makespan, 1 * sim::kHour);
        if (options.max_sessions < 0 || options.max_sessions > 10) {
            options.max_sessions = 10;
        }
    }
    return options;
}

/** Workload profile override (`NBOS_BENCH_PROFILE=flash_crowd`): when set
 *  to a workload::ProfileRegistry name, excerpt_trace / summer_trace
 *  regenerate their canonical workloads through that profile (same seed,
 *  same makespan/session shape), so every bench row can be rerun under a
 *  different scenario — the profile smoke tier in CI sweeps two of them.
 *  Unset or empty keeps the historical adobe workloads byte-identical
 *  (all baseline.json hashes are pinned with the knob unset); unknown
 *  names are a hard error (options_or_exit) so a typo cannot silently
 *  pass as a measurement of another scenario. */
inline std::string
bench_profile()
{
    return options_or_exit().profile;
}

/** Generate (@p profile, @p options) at the bench seed and tag the trace
 *  `<profile><suffix>` so figure tables name the scenario under study. */
inline workload::Trace
profile_trace(const std::string& profile,
              const workload::GeneratorOptions& options,
              const std::string& suffix)
{
    const auto scenario =
        workload::ProfileRegistry::instance().create(profile);
    workload::Trace trace = scenario->generate(kSeed, options);
    trace.name = profile + suffix;
    return trace;
}

/** The 17.5-hour AdobeTrace excerpt used by the prototype evaluation
 *  (regenerated through NBOS_BENCH_PROFILE when set). */
inline workload::Trace
excerpt_trace()
{
    const std::string profile = bench_profile();
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 90 * sim::kMinute;
        options.max_sessions = 12;
        options.sessions_survive_trace = true;
        if (!profile.empty()) {
            return profile_trace(profile, options, "-excerpt-smoke");
        }
        workload::WorkloadGenerator generator{sim::Rng(kSeed)};
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-excerpt-smoke";
        return trace;
    }
    if (!profile.empty()) {
        workload::GeneratorOptions options;
        options.makespan = 17 * sim::kHour + 30 * sim::kMinute;
        options.max_sessions = 90;
        options.sessions_survive_trace = true;
        return profile_trace(profile, options, "-excerpt");
    }
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    return generator.adobe_excerpt_17_5h();
}

/** The 90-day summer trace used by the simulation studies (regenerated
 *  through NBOS_BENCH_PROFILE when set; profile runs keep the profile's
 *  own calibration rather than the summer re-parameterization, so
 *  scenarios compare like against like across benches). */
inline workload::Trace
summer_trace()
{
    const std::string profile = bench_profile();
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 7 * sim::kDay;
        options.max_sessions = 40;
        if (!profile.empty()) {
            return profile_trace(profile, options, "-summer-smoke");
        }
        workload::WorkloadGenerator generator{sim::Rng(kSeed)};
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-summer-smoke";
        return trace;
    }
    if (!profile.empty()) {
        workload::GeneratorOptions options;
        options.makespan = 90 * sim::kDay;
        return profile_trace(profile, options, "-summer");
    }
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    return generator.adobe_summer_90d();
}

/** Seed count for statistical sweeps (`NBOS_BENCH_SEEDS=N`): when N > 1,
 *  run_policies / run_specs_or_exit fan every experiment out over N
 *  consecutive seeds and print a `mean ± ci95` summary table in addition
 *  to the usual single-seed figures (which keep using the first seed, so
 *  they stay byte-identical). Unset or empty means 1; malformed or
 *  out-of-range values are a hard error (options_or_exit). */
inline std::size_t
bench_seeds()
{
    return options_or_exit().seeds;
}

/** Shard count for the fast analytic engine (`NBOS_BENCH_SHARDS=N`):
 *  run_policies applies it to every spec's scheduler config, so any
 *  bench row using a fast engine partitions its sessions over N
 *  analytic shards (one thread each). Discrete-event engines ignore it
 *  only in the sense that their sharding is already config-driven; the
 *  value is set uniformly either way. Unset or empty means 1 (the
 *  monolithic fast path, byte-identical to the pre-shard outputs);
 *  malformed or out-of-range values are a hard error (options_or_exit). */
inline std::int32_t
bench_shards()
{
    return options_or_exit().shards;
}

/** Routing policy for sharded runs (`NBOS_BENCH_ROUTING=least_loaded`):
 *  run_policies applies it to every spec's scheduler config alongside
 *  NBOS_BENCH_SHARDS, so any bench row can be rerun under a different
 *  session -> shard policy (routing smoke tier in CI). Unset or empty
 *  means static_hash — the pre-routing hash, byte-identical outputs;
 *  unknown names are a hard error (options_or_exit) so a typo cannot
 *  silently pass as a measurement of the default. */
inline sched::RoutingPolicyKind
bench_routing()
{
    return options_or_exit().routing;
}

/**
 * Gate self-test hook (`NBOS_BENCH_INJECT_SLOWDOWN_PCT=25`): on scope
 * exit, sleep for the given percentage of the scope's measured wall time,
 * simulating a proportional performance regression in every experiment
 * run. Used to prove the CI bench-regression gate goes red without
 * committing an actual slowdown; unset (the default) it is a no-op.
 */
class InjectedSlowdown
{
  public:
    InjectedSlowdown() : start_(std::chrono::steady_clock::now()) {}

    InjectedSlowdown(const InjectedSlowdown&) = delete;
    InjectedSlowdown& operator=(const InjectedSlowdown&) = delete;

    ~InjectedSlowdown()
    {
        const char* raw = std::getenv("NBOS_BENCH_INJECT_SLOWDOWN_PCT");
        if (raw == nullptr || raw[0] == '\0') {
            return;
        }
        char* end = nullptr;
        const double pct = std::strtod(raw, &end);
        if (end == raw || pct <= 0.0) {
            return;
        }
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                elapsed * (pct / 100.0)));
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Pure core of the NBOS_BENCH_POLICIES filter (testable without touching
 *  the environment): true when @p filter is null/empty or one of its
 *  comma-separated tokens equals the engine name or the policy name. */
inline bool
policy_filter_allows(const char* filter, const std::string& engine,
                     const std::string& policy_name = {})
{
    if (filter == nullptr || filter[0] == '\0') {
        return true;
    }
    std::istringstream stream{std::string(filter)};
    std::string token;
    while (std::getline(stream, token, ',')) {
        token.erase(0, token.find_first_not_of(" \t"));
        const std::size_t last = token.find_last_not_of(" \t");
        token.erase(last == std::string::npos ? 0 : last + 1);
        if (token == engine ||
            (!policy_name.empty() && token == policy_name)) {
            return true;
        }
    }
    return false;
}

/** Engine filter (`NBOS_BENCH_POLICIES=notebookos,batch`): when set, the
 *  run_policy/run_policies helpers skip engines whose registry name and
 *  policy name are both absent from the comma-separated list, so a bench
 *  binary reruns only the engines under study. */
inline bool
engine_enabled(const std::string& engine,
               const std::string& policy_name = {})
{
    return policy_filter_allows(options_or_exit().policies.c_str(), engine,
                                policy_name);
}

/** One canonical-settings policy run for run_policies(). Field order
 *  matches test::EngineRun (policy, seed, fast) so positional
 *  initializers mean the same thing in both; call sites setting `fast`
 *  use designated initializers. */
struct PolicyRun
{
    core::Policy policy = core::Policy::kNotebookOS;
    std::uint64_t seed = kSeed;
    bool fast = false;
};

/** One run_policies() row: the single-seed results the figure tables
 *  print, plus an explicit skip marker. A row filtered out by
 *  NBOS_BENCH_POLICIES keeps its identifying fields (policy, trace) but
 *  holds no samples — the flag is what distinguishes it from a real
 *  all-zero run. */
struct PolicyResult : core::ExperimentResults
{
    bool skipped = false;
};

inline void banner(const std::string& title);

/** Print one sweep aggregate's per-metric `mean ± ci95` block. */
inline void
print_sweep_aggregate(const core::SweepAggregate& aggregate)
{
    std::printf("# engine=%s seeds=%llu..%llu n=%zu\n",
                aggregate.label.c_str(),
                static_cast<unsigned long long>(aggregate.seeds.front()),
                static_cast<unsigned long long>(aggregate.seeds.back()),
                aggregate.seeds.size());
    std::printf("%-24s %14s %12s %12s %12s %12s\n", "metric", "mean",
                "ci95", "stddev", "min", "max");
    for (const core::MetricSummary& metric : aggregate.metrics) {
        const metrics::Summary& s = metric.summary;
        std::printf("%-24s %14.4f %12.4f %12.4f %12.4f %12.4f\n",
                    metric.name.c_str(), s.mean, s.ci95, s.stddev, s.min,
                    s.max);
    }
}

/** Print the statistical summary of a multi-seed sweep (one block per
 *  swept experiment). Emitted by run_policies / run_specs_or_exit when
 *  NBOS_BENCH_SEEDS > 1, ahead of the usual single-seed figures. */
inline void
print_sweep_summary(const std::vector<core::SweepOutcome>& sweeps,
                    std::size_t seeds)
{
    if (sweeps.empty()) {
        return;
    }
    banner("Seed sweep: mean +/- ci95 over " + std::to_string(seeds) +
           " seeds (NBOS_BENCH_SEEDS)");
    for (const core::SweepOutcome& sweep : sweeps) {
        print_sweep_aggregate(sweep.aggregate);
    }
}

/** Run every spec through a seed sweep (seeds first..first+n-1 derived
 *  from each spec's own seed) or die. @return the base-seed outcome per
 *  spec, in spec order — identical to what a single-seed run returns. */
inline std::vector<core::ExperimentOutcome>
run_sweeps_or_exit(const std::vector<core::ExperimentSpec>& specs,
                   std::size_t seeds)
{
    std::vector<core::SweepSpec> sweeps;
    sweeps.reserve(specs.size());
    for (const core::ExperimentSpec& spec : specs) {
        core::SweepSpec sweep;
        sweep.base = spec;
        sweep.seeds = core::seed_range(spec.seed, seeds);
        sweeps.push_back(std::move(sweep));
    }
    auto sweep_outcomes = core::SeedSweep().run(sweeps);
    for (const core::SweepOutcome& outcome : sweep_outcomes) {
        if (!outcome.ok) {
            const std::string& label = sweeps[outcome.index].base.label;
            std::fprintf(stderr, "[bench] sweep %s failed: %s\n",
                         label.empty()
                             ? sweeps[outcome.index].base.engine.c_str()
                             : label.c_str(),
                         outcome.error.c_str());
            std::exit(1);
        }
    }
    print_sweep_summary(sweep_outcomes, seeds);
    std::vector<core::ExperimentOutcome> outcomes(specs.size());
    for (std::size_t j = 0; j < specs.size(); ++j) {
        outcomes[j].index = j;
        outcomes[j].engine = specs[j].engine;
        outcomes[j].label = specs[j].label.empty() ? specs[j].engine
                                                   : specs[j].label;
        outcomes[j].ok = true;
        // The first sweep seed is the spec's own seed, so this is exactly
        // the single-seed result the figure tables always printed.
        outcomes[j].results =
            std::move(sweep_outcomes[j].per_seed.front());
    }
    return outcomes;
}

/** Run the requested policies concurrently on the ExperimentRunner.
 *  Results come back in request order, so tables printed from them are
 *  byte-identical to the pre-runner serial runs. Engines disabled by
 *  NBOS_BENCH_POLICIES are not executed: their rows carry
 *  PolicyResult::skipped, a note goes to stderr, and the skipped names
 *  are listed on stdout so tables with zero rows are not mistaken for
 *  real measurements. With NBOS_BENCH_SEEDS=N (N > 1) every enabled
 *  policy is swept over N seeds and a mean ± ci95 summary is printed
 *  first. */
inline std::vector<PolicyResult>
run_policies(const workload::Trace& trace,
             const std::vector<PolicyRun>& runs)
{
    const InjectedSlowdown slowdown_hook;
    std::vector<PolicyResult> results(runs.size());
    std::vector<core::ExperimentSpec> specs;
    std::vector<std::size_t> positions;
    std::vector<std::string> skipped;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const char* engine =
            core::engine_name(runs[i].policy, runs[i].fast);
        results[i].policy = runs[i].policy;
        results[i].trace_name = trace.name;
        results[i].makespan = trace.makespan;
        if (!engine_enabled(engine, core::to_string(runs[i].policy))) {
            results[i].skipped = true;
            skipped.emplace_back(engine);
            std::fprintf(stderr,
                         "[bench] skipping engine %s (NBOS_BENCH_POLICIES)\n",
                         engine);
            continue;
        }
        core::ExperimentSpec spec;
        spec.engine = engine;
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.config.scheduler.shards = bench_shards();
        spec.config.scheduler.routing = bench_routing();
        spec.seed = runs[i].seed;
        specs.push_back(std::move(spec));
        positions.push_back(i);
    }
    const std::size_t seeds = bench_seeds();
    auto outcomes = seeds > 1 ? run_sweeps_or_exit(specs, seeds)
                              : core::ExperimentRunner().run(specs);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        if (!outcomes[j].ok) {
            std::fprintf(stderr, "[bench] engine %s failed: %s\n",
                         outcomes[j].engine.c_str(),
                         outcomes[j].error.c_str());
            std::exit(1);
        }
        static_cast<core::ExperimentResults&>(results[positions[j]]) =
            std::move(outcomes[j].results);
    }
    if (!skipped.empty()) {
        std::printf("# skipped engines (NBOS_BENCH_POLICIES):");
        for (const std::string& name : skipped) {
            std::printf(" %s", name.c_str());
        }
        std::printf("\n");
    }
    return results;
}

/** Run one policy over a trace with canonical settings. */
inline core::ExperimentResults
run_policy(core::Policy policy, const workload::Trace& trace,
           bool fast_mode = false)
{
    auto results =
        run_policies(trace, {PolicyRun{policy, kSeed, fast_mode}});
    return std::move(static_cast<core::ExperimentResults&>(
        results.front()));
}

/** Print the sweep's outcomes or die: shared guard for benches that
 *  drive the ExperimentRunner directly with custom configs. With
 *  NBOS_BENCH_SEEDS=N (N > 1) every spec is additionally swept over N
 *  seeds (mean ± ci95 summary printed first); the returned outcomes are
 *  always the base-seed runs. */
inline std::vector<core::ExperimentOutcome>
run_specs_or_exit(const std::vector<core::ExperimentSpec>& specs)
{
    const InjectedSlowdown slowdown_hook;
    const std::size_t seeds = bench_seeds();
    if (seeds > 1) {
        return run_sweeps_or_exit(specs, seeds);
    }
    auto outcomes = core::ExperimentRunner().run(specs);
    for (const core::ExperimentOutcome& outcome : outcomes) {
        if (!outcome.ok) {
            std::fprintf(stderr, "[bench] %s failed: %s\n",
                         outcome.label.c_str(), outcome.error.c_str());
            std::exit(1);
        }
    }
    return outcomes;
}

/** Print a header banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/** Print percentile rows of a distribution. */
inline void
print_percentiles(const std::string& label,
                  const metrics::Percentiles& dist,
                  const std::string& unit)
{
    std::printf("%-24s n=%-7zu", label.c_str(), dist.count());
    for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
        std::printf(" p%-2.0f=%-10.3f", p, dist.percentile(p));
    }
    std::printf(" max=%-10.3f [%s]\n", dist.max(), unit.c_str());
}

/** Print a CDF as value/fraction rows (gnuplot-ready). */
inline void
print_cdf(const std::string& label, const metrics::Percentiles& dist,
          std::size_t points = 20)
{
    std::printf("# CDF %s (value fraction)\n", label.c_str());
    for (const auto& point : dist.cdf(points)) {
        std::printf("%-14.4f %.4f\n", point.value, point.fraction);
    }
}

/** Print a timeline series resampled to @p buckets rows. */
inline void
print_series(const std::string& label, const metrics::TimeSeries& series,
             sim::Time t0, sim::Time t1, std::size_t buckets,
             const std::string& time_unit = "hour")
{
    const double divisor = time_unit == "day"
                               ? static_cast<double>(sim::kDay)
                               : static_cast<double>(sim::kHour);
    std::printf("# SERIES %s (time[%s] value)\n", label.c_str(),
                time_unit.c_str());
    for (const auto& sample : series.resample(t0, t1, buckets)) {
        std::printf("%-10.3f %.3f\n",
                    static_cast<double>(sample.time) / divisor,
                    sample.value);
    }
}

}  // namespace nbos::bench

#endif  // NBOS_BENCH_COMMON_HPP
