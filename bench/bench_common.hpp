/**
 * @file
 * Shared helpers for the figure-reproduction benches: canonical workloads,
 * policy runners, and table printers. Each bench binary regenerates the
 * rows/series of one paper table or figure (see DESIGN.md §3 for the
 * experiment index and EXPERIMENTS.md for paper-vs-measured results).
 */
#ifndef NBOS_BENCH_COMMON_HPP
#define NBOS_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "core/results.hpp"
#include "workload/generator.hpp"

namespace nbos::bench {

/** Fixed seed so every bench is reproducible run-to-run. */
inline constexpr std::uint64_t kSeed = 2026;

/** Smoke mode (`NBOS_BENCH_SMOKE=1`, set by the `ctest -L smoke` entries)
 *  shrinks every canonical workload so all bench binaries together finish
 *  in well under a minute while still exercising their full code paths.
 *  Numbers printed under smoke mode are NOT the paper's figures. */
inline bool
smoke_mode()
{
    const char* flag = std::getenv("NBOS_BENCH_SMOKE");
    return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/** Clamp self-built workload options when running under smoke mode. */
inline workload::GeneratorOptions
apply_smoke(workload::GeneratorOptions options)
{
    if (smoke_mode()) {
        options.makespan = std::min(options.makespan, 1 * sim::kHour);
        if (options.max_sessions < 0 || options.max_sessions > 10) {
            options.max_sessions = 10;
        }
    }
    return options;
}

/** The 17.5-hour AdobeTrace excerpt used by the prototype evaluation. */
inline workload::Trace
excerpt_trace()
{
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 90 * sim::kMinute;
        options.max_sessions = 12;
        options.sessions_survive_trace = true;
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-excerpt-smoke";
        return trace;
    }
    return generator.adobe_excerpt_17_5h();
}

/** The 90-day summer trace used by the simulation studies. */
inline workload::Trace
summer_trace()
{
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 7 * sim::kDay;
        options.max_sessions = 40;
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-summer-smoke";
        return trace;
    }
    return generator.adobe_summer_90d();
}

/** Run one policy over a trace with canonical settings. */
inline core::ExperimentResults
run_policy(core::Policy policy, const workload::Trace& trace,
           bool fast_mode = false)
{
    core::PlatformConfig config = core::PlatformConfig::prototype_defaults();
    config.policy = policy;
    config.fast_mode = fast_mode;
    config.seed = kSeed;
    core::Platform platform(config);
    return platform.run(trace);
}

/** Print a header banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/** Print percentile rows of a distribution. */
inline void
print_percentiles(const std::string& label,
                  const metrics::Percentiles& dist,
                  const std::string& unit)
{
    std::printf("%-24s n=%-7zu", label.c_str(), dist.count());
    for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
        std::printf(" p%-2.0f=%-10.3f", p, dist.percentile(p));
    }
    std::printf(" max=%-10.3f [%s]\n", dist.max(), unit.c_str());
}

/** Print a CDF as value/fraction rows (gnuplot-ready). */
inline void
print_cdf(const std::string& label, const metrics::Percentiles& dist,
          std::size_t points = 20)
{
    std::printf("# CDF %s (value fraction)\n", label.c_str());
    for (const auto& point : dist.cdf(points)) {
        std::printf("%-14.4f %.4f\n", point.value, point.fraction);
    }
}

/** Print a timeline series resampled to @p buckets rows. */
inline void
print_series(const std::string& label, const metrics::TimeSeries& series,
             sim::Time t0, sim::Time t1, std::size_t buckets,
             const std::string& time_unit = "hour")
{
    const double divisor = time_unit == "day"
                               ? static_cast<double>(sim::kDay)
                               : static_cast<double>(sim::kHour);
    std::printf("# SERIES %s (time[%s] value)\n", label.c_str(),
                time_unit.c_str());
    for (const auto& sample : series.resample(t0, t1, buckets)) {
        std::printf("%-10.3f %.3f\n",
                    static_cast<double>(sample.time) / divisor,
                    sample.value);
    }
}

}  // namespace nbos::bench

#endif  // NBOS_BENCH_COMMON_HPP
