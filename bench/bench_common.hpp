/**
 * @file
 * Shared helpers for the figure-reproduction benches: canonical workloads,
 * policy runners, and table printers. Each bench binary regenerates the
 * rows/series of one paper table or figure (see DESIGN.md §3 for the
 * experiment index and EXPERIMENTS.md for paper-vs-measured results).
 */
#ifndef NBOS_BENCH_COMMON_HPP
#define NBOS_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/platform.hpp"
#include "core/results.hpp"
#include "core/runner.hpp"
#include "workload/generator.hpp"

namespace nbos::bench {

/** Fixed seed so every bench is reproducible run-to-run. */
inline constexpr std::uint64_t kSeed = 2026;

/** Smoke mode (`NBOS_BENCH_SMOKE=1`, set by the `ctest -L smoke` entries)
 *  shrinks every canonical workload so all bench binaries together finish
 *  in well under a minute while still exercising their full code paths.
 *  Numbers printed under smoke mode are NOT the paper's figures. */
inline bool
smoke_mode()
{
    const char* flag = std::getenv("NBOS_BENCH_SMOKE");
    return flag != nullptr && flag[0] != '\0' && flag[0] != '0';
}

/** Clamp self-built workload options when running under smoke mode. */
inline workload::GeneratorOptions
apply_smoke(workload::GeneratorOptions options)
{
    if (smoke_mode()) {
        options.makespan = std::min(options.makespan, 1 * sim::kHour);
        if (options.max_sessions < 0 || options.max_sessions > 10) {
            options.max_sessions = 10;
        }
    }
    return options;
}

/** The 17.5-hour AdobeTrace excerpt used by the prototype evaluation. */
inline workload::Trace
excerpt_trace()
{
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 90 * sim::kMinute;
        options.max_sessions = 12;
        options.sessions_survive_trace = true;
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-excerpt-smoke";
        return trace;
    }
    return generator.adobe_excerpt_17_5h();
}

/** The 90-day summer trace used by the simulation studies. */
inline workload::Trace
summer_trace()
{
    workload::WorkloadGenerator generator{sim::Rng(kSeed)};
    if (smoke_mode()) {
        workload::GeneratorOptions options;
        options.makespan = 7 * sim::kDay;
        options.max_sessions = 40;
        workload::Trace trace =
            generator.generate(workload::TraceProfile::adobe(), options);
        trace.name = "adobe-summer-smoke";
        return trace;
    }
    return generator.adobe_summer_90d();
}

/** Engine filter (`NBOS_BENCH_POLICIES=notebookos,batch`): when set, the
 *  run_policy/run_policies helpers skip engines whose registry name and
 *  policy name are both absent from the comma-separated list, so a bench
 *  binary reruns only the engines under study. */
inline bool
engine_enabled(const std::string& engine,
               const std::string& policy_name = {})
{
    const char* filter = std::getenv("NBOS_BENCH_POLICIES");
    if (filter == nullptr || filter[0] == '\0') {
        return true;
    }
    std::istringstream stream{std::string(filter)};
    std::string token;
    while (std::getline(stream, token, ',')) {
        token.erase(0, token.find_first_not_of(" \t"));
        const std::size_t last = token.find_last_not_of(" \t");
        token.erase(last == std::string::npos ? 0 : last + 1);
        if (token == engine ||
            (!policy_name.empty() && token == policy_name)) {
            return true;
        }
    }
    return false;
}

/** One canonical-settings policy run for run_policies(). Field order
 *  matches test::EngineRun (policy, seed, fast) so positional
 *  initializers mean the same thing in both; call sites setting `fast`
 *  use designated initializers. */
struct PolicyRun
{
    core::Policy policy = core::Policy::kNotebookOS;
    std::uint64_t seed = kSeed;
    bool fast = false;
};

/** Run the requested policies concurrently on the ExperimentRunner.
 *  Results come back in request order, so tables printed from them are
 *  byte-identical to the pre-runner serial runs. Engines disabled by
 *  NBOS_BENCH_POLICIES are not executed and yield empty (all-zero)
 *  results; a note goes to stderr. */
inline std::vector<core::ExperimentResults>
run_policies(const workload::Trace& trace,
             const std::vector<PolicyRun>& runs)
{
    std::vector<core::ExperimentResults> results(runs.size());
    std::vector<core::ExperimentSpec> specs;
    std::vector<std::size_t> positions;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const char* engine =
            core::engine_name(runs[i].policy, runs[i].fast);
        results[i].policy = runs[i].policy;
        results[i].trace_name = trace.name;
        results[i].makespan = trace.makespan;
        if (!engine_enabled(engine, core::to_string(runs[i].policy))) {
            std::fprintf(stderr,
                         "[bench] skipping engine %s (NBOS_BENCH_POLICIES)\n",
                         engine);
            continue;
        }
        core::ExperimentSpec spec;
        spec.engine = engine;
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.seed = runs[i].seed;
        specs.push_back(std::move(spec));
        positions.push_back(i);
    }
    auto outcomes = core::ExperimentRunner().run(specs);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        if (!outcomes[j].ok) {
            std::fprintf(stderr, "[bench] engine %s failed: %s\n",
                         outcomes[j].engine.c_str(),
                         outcomes[j].error.c_str());
            std::exit(1);
        }
        results[positions[j]] = std::move(outcomes[j].results);
    }
    return results;
}

/** Run one policy over a trace with canonical settings. */
inline core::ExperimentResults
run_policy(core::Policy policy, const workload::Trace& trace,
           bool fast_mode = false)
{
    auto results =
        run_policies(trace, {PolicyRun{policy, kSeed, fast_mode}});
    return std::move(results.front());
}

/** Print the sweep's outcomes or die: shared guard for benches that
 *  drive the ExperimentRunner directly with custom configs. */
inline std::vector<core::ExperimentOutcome>
run_specs_or_exit(const std::vector<core::ExperimentSpec>& specs)
{
    auto outcomes = core::ExperimentRunner().run(specs);
    for (const core::ExperimentOutcome& outcome : outcomes) {
        if (!outcome.ok) {
            std::fprintf(stderr, "[bench] %s failed: %s\n",
                         outcome.label.c_str(), outcome.error.c_str());
            std::exit(1);
        }
    }
    return outcomes;
}

/** Print a header banner. */
inline void
banner(const std::string& title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

/** Print percentile rows of a distribution. */
inline void
print_percentiles(const std::string& label,
                  const metrics::Percentiles& dist,
                  const std::string& unit)
{
    std::printf("%-24s n=%-7zu", label.c_str(), dist.count());
    for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
        std::printf(" p%-2.0f=%-10.3f", p, dist.percentile(p));
    }
    std::printf(" max=%-10.3f [%s]\n", dist.max(), unit.c_str());
}

/** Print a CDF as value/fraction rows (gnuplot-ready). */
inline void
print_cdf(const std::string& label, const metrics::Percentiles& dist,
          std::size_t points = 20)
{
    std::printf("# CDF %s (value fraction)\n", label.c_str());
    for (const auto& point : dist.cdf(points)) {
        std::printf("%-14.4f %.4f\n", point.value, point.fraction);
    }
}

/** Print a timeline series resampled to @p buckets rows. */
inline void
print_series(const std::string& label, const metrics::TimeSeries& series,
             sim::Time t0, sim::Time t1, std::size_t buckets,
             const std::string& time_unit = "hour")
{
    const double divisor = time_unit == "day"
                               ? static_cast<double>(sim::kDay)
                               : static_cast<double>(sim::kHour);
    std::printf("# SERIES %s (time[%s] value)\n", label.c_str(),
                time_unit.c_str());
    for (const auto& sample : series.resample(t0, t1, buckets)) {
        std::printf("%-10.3f %.3f\n",
                    static_cast<double>(sample.time) / divisor,
                    sample.value);
    }
}

}  // namespace nbos::bench

#endif  // NBOS_BENCH_COMMON_HPP
