/**
 * @file
 * scale_profiles: the workload-profile generator family on the streamed
 * scale path (ROADMAP item 3).
 *
 * Phase 1 (memory proof, run first because ru_maxrss is monotonic):
 * stream-generate the `flash_crowd` profile at the million-session tier
 * straight into a counting/FNV-hashing sink — no trace, no file, O(live
 * session) memory — and report the byte count, content hash, and peak
 * RSS. The acceptance bar: the full tier's peak RSS stays within 2x of
 * the 20k-session smoke tier's, because memory tracks the live session
 * population, not the trace length (measured on the reference runner:
 * smoke ≈ 4.1 MB, full tier ≈ 7.8 MB for 1.0M sessions / 238 MB of
 * trace bytes — 1.9x).
 *
 * Phase 2: the profile × routing grid at shards = 8 through the fast
 * engine's streamed driver (core::run with a SessionSource) — every named
 * profile under static_hash / least_loaded / rebalance on one table.
 *
 * Phase 3: a small streamed prototype-engine spot check (diurnal at
 * shards = 2 under rebalance), pinning the discrete-event streamed
 * driver into the hashed output as well.
 *
 * Output convention: table rows are fully deterministic and hashed by
 * bench/check_bench.py; wall-clock and memory figures go on `# TIMING`
 * lines, which the gate strips before hashing.
 *
 * Full tier: 1,000,000 streamed sessions in phase 1, 5,000-session grid
 * cells in phase 2. Smoke tier (NBOS_BENCH_SMOKE=1, what `ctest -L
 * scale` and the CI bench gate run): 20,000 / 300, same shape.
 */
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine_api.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace nbos;

/** Peak RSS of this process in MB (Linux ru_maxrss is in KB). */
double
peak_rss_mb()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0.0;
    }
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

double
elapsed_seconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

/** Null sink that FNV-1a-hashes and counts every byte written — the
 *  streamed generation "file" without any disk or memory footprint. */
class HashingSink : public std::streambuf
{
  public:
    std::uint64_t hash() const { return hash_; }
    std::uint64_t bytes() const { return bytes_; }

  protected:
    int_type overflow(int_type ch) override
    {
        if (ch != traits_type::eof()) {
            mix(static_cast<unsigned char>(ch));
        }
        return ch;
    }

    std::streamsize xsputn(const char* data, std::streamsize count) override
    {
        for (std::streamsize i = 0; i < count; ++i) {
            mix(static_cast<unsigned char>(data[i]));
        }
        return count;
    }

  private:
    void mix(unsigned char byte)
    {
        hash_ ^= byte;
        hash_ *= 1099511628211ULL;
        ++bytes_;
    }

    std::uint64_t hash_ = 14695981039346656037ULL;
    std::uint64_t bytes_ = 0;
};

/** Phase 1: stream the flash_crowd profile at the scale tier into the
 *  hashing sink, counting with a first pass exactly like
 *  generate_trace_stream does (so the emitted bytes are its bytes). */
void
run_streaming_phase(bool smoke)
{
    workload::GeneratorOptions options;
    options.makespan = 2 * sim::kHour;
    options.max_sessions = smoke ? 20000 : 1000000;
    options.arrival_rate_scale = smoke ? 2000.0 : 100000.0;

    const auto profile =
        workload::ProfileRegistry::instance().create(
            workload::kProfileFlashCrowd);

    bench::banner("scale_profiles phase 1: streamed generation of '" +
                  profile->name() + "' at " +
                  std::to_string(options.max_sessions) + " sessions" +
                  (smoke ? " [smoke tier]" : ""));

    const auto wall_start = std::chrono::steady_clock::now();
    std::uint64_t sessions = 0;
    std::uint64_t tasks = 0;
    {
        const auto source = profile->open(bench::kSeed, options);
        workload::SessionSpec session;
        while (source->next(session)) {
            ++sessions;
            tasks += session.tasks.size();
        }
    }
    HashingSink sink;
    {
        std::ostream out(&sink);
        const auto source = profile->open(bench::kSeed, options);
        workload::TraceWriter writer(out, source->trace_name(),
                                     source->makespan(), sessions);
        workload::SessionSpec session;
        while (source->next(session)) {
            writer.write_session(session);
        }
        writer.finish();
    }
    const double seconds = elapsed_seconds(wall_start);

    std::printf("%-12s %10s %10s %14s %18s\n", "profile", "sessions",
                "tasks", "bytes", "fnv1a");
    std::printf("%-12s %10llu %10llu %14llu %018llx\n",
                profile->name().c_str(),
                static_cast<unsigned long long>(sessions),
                static_cast<unsigned long long>(tasks),
                static_cast<unsigned long long>(sink.bytes()),
                static_cast<unsigned long long>(sink.hash()));
    std::printf("# TIMING phase=stream seconds=%.4f sessions_per_sec=%.0f "
                "peak_rss_mb=%.1f\n",
                seconds,
                seconds > 0.0 ? static_cast<double>(sessions) / seconds
                              : 0.0,
                peak_rss_mb());
}

/** Phase 2: every registered profile under every routing policy on the
 *  streamed fast engine at shards = 8. */
void
run_grid_phase(bool smoke)
{
    workload::GeneratorOptions options;
    options.makespan = smoke ? 6 * sim::kHour : 24 * sim::kHour;
    options.max_sessions = smoke ? 300 : 5000;
    options.arrival_rate_scale = 8.0;

    bench::banner(
        "scale_profiles phase 2: profile x routing grid, streamed fast "
        "engine, shards=8" +
        std::string(smoke ? " [smoke tier]" : ""));
    std::printf("%-18s %-12s %9s %10s %9s %11s %11s %12s\n", "profile",
                "routing", "tasks", "completed", "aborted", "migrations",
                "rebalanced", "sim_events");

    const workload::ProfileRegistry& registry =
        workload::ProfileRegistry::instance();
    for (const std::string& name : registry.names()) {
        const auto profile = registry.create(name);
        for (const sched::RoutingPolicyKind routing :
             {sched::RoutingPolicyKind::kStaticHash,
              sched::RoutingPolicyKind::kLeastLoaded,
              sched::RoutingPolicyKind::kRebalance}) {
            core::RunRequest request;
            request.engine = core::kEngineFast;
            request.config = core::PlatformConfig::prototype_defaults();
            request.config.scheduler.shards = 8;
            request.config.scheduler.shard_parallel = true;
            request.seed = bench::kSeed;
            request.routing = routing;

            const auto wall_start = std::chrono::steady_clock::now();
            const auto source = profile->open(bench::kSeed, options);
            request.source = source.get();
            const core::RunResponse run = core::run(request);
            const double seconds = elapsed_seconds(wall_start);

            const sched::SchedulerStats& stats = run.results.sched_stats;
            std::printf(
                "%-18s %-12s %9zu %10llu %9zu %11llu %11llu %12llu\n",
                name.c_str(), sched::to_string(routing),
                run.results.tasks.size(),
                static_cast<unsigned long long>(
                    stats.executions_completed),
                run.results.aborted_count(),
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(run.sessions_rebalanced),
                static_cast<unsigned long long>(run.events_executed));
            std::printf("# TIMING profile=%s routing=%s seconds=%.4f "
                        "imbalance=%.3f peak_rss_mb=%.1f\n",
                        name.c_str(), sched::to_string(routing), seconds,
                        stats.shard_imbalance(), peak_rss_mb());
        }
    }
}

/** Phase 3: the prototype engine's streamed driver on a small diurnal
 *  stream (shards = 2, rebalance). */
void
run_prototype_phase(bool smoke)
{
    workload::GeneratorOptions options;
    options.makespan = 2 * sim::kHour;
    options.max_sessions = smoke ? 40 : 120;
    options.arrival_rate_scale = 8.0;

    bench::banner(
        "scale_profiles phase 3: streamed prototype engine, diurnal, "
        "shards=2, rebalance" +
        std::string(smoke ? " [smoke tier]" : ""));

    core::RunRequest request;
    request.engine = core::kEnginePrototype;
    request.config = core::PlatformConfig::prototype_defaults();
    request.seed = bench::kSeed;
    request.shards = 2;
    request.routing = sched::RoutingPolicyKind::kRebalance;

    const auto profile = workload::ProfileRegistry::instance().create(
        workload::kProfileDiurnal);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto source = profile->open(bench::kSeed, options);
    request.source = source.get();
    const core::ExperimentResults results =
        core::run(request).results;
    const double seconds = elapsed_seconds(wall_start);

    std::printf("%-12s %9s %10s %9s %11s\n", "profile", "tasks",
                "completed", "aborted", "migrations");
    std::printf("%-12s %9zu %10llu %9zu %11llu\n", "diurnal",
                results.tasks.size(),
                static_cast<unsigned long long>(
                    results.sched_stats.executions_completed),
                results.aborted_count(),
                static_cast<unsigned long long>(
                    results.sched_stats.migrations));
    std::printf("# TIMING phase=prototype seconds=%.4f peak_rss_mb=%.1f\n",
                seconds, peak_rss_mb());
}

}  // namespace

int
main()
{
    const bench::InjectedSlowdown slowdown_hook;
    const bool smoke = bench::smoke_mode();
    run_streaming_phase(smoke);
    run_grid_phase(smoke);
    run_prototype_phase(smoke);
    return 0;
}
