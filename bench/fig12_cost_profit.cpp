/**
 * @file
 * Fig. 12: provider cost, revenue, and profit margin of NotebookOS vs
 * Reservation over the 90-day simulated trace (§5.5.1: NotebookOS cuts
 * provider cost by up to ~70% while earning a higher margin).
 */
#include "bench_common.hpp"

#include "billing/billing.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::summer_trace();

    // Both policies run concurrently on the ExperimentRunner.
    const auto results = bench::run_policies(
        trace, {{.policy = core::Policy::kReservation},
                {.policy = core::Policy::kNotebookOS, .fast = true}});
    const auto& reservation = results[0];
    const auto& nbos = results[1];

    billing::BillingConfig config;

    // Reservation: sessions pay for every reserved GPU.
    const auto reserved = core::reserved_gpu_series(trace);
    metrics::TimeSeries none;
    const auto res_billing = billing::compute_billing(
        config, reservation.provisioned_gpus, reserved, none,
        /*standby_rate=*/false, trace.makespan, 6 * sim::kHour);

    // NotebookOS: idle replicas pay the standby rate; the executor pays
    // proportional to the GPUs in use. Standby replica-equivalents =
    // 3 x active sessions minus the replicas actively executing.
    const auto sessions = core::active_sessions_series(trace);
    const auto trainings = nbos.active_trainings_series();
    metrics::TimeSeries standby;
    for (sim::Time t = 0; t <= trace.makespan; t += 6 * sim::kHour) {
        standby.record(t, std::max(0.0, 3.0 * sessions.value_at(t) -
                                            trainings.value_at(t)));
    }
    const auto nbos_billing = billing::compute_billing(
        config, nbos.provisioned_gpus, standby, nbos.committed_gpus,
        /*standby_rate=*/true, trace.makespan, 6 * sim::kHour);

    bench::banner("Fig. 12(a): cumulative provider cost & revenue (M$)");
    std::printf("%-6s %-12s %-12s %-12s %-12s\n", "day", "res-cost",
                "res-revenue", "nbos-cost", "nbos-revenue");
    for (int day = 0; day <= 90; day += 10) {
        const sim::Time t = day * sim::kDay;
        std::printf("%-6d %-12.3f %-12.3f %-12.3f %-12.3f\n", day,
                    res_billing.provider_cost.value_at(t) / 1e6,
                    res_billing.revenue.value_at(t) / 1e6,
                    nbos_billing.provider_cost.value_at(t) / 1e6,
                    nbos_billing.revenue.value_at(t) / 1e6);
    }

    bench::banner("Fig. 12(b): profit margin (%)");
    std::printf("%-6s %-14s %-14s\n", "day", "reservation", "notebookos");
    for (int day = 10; day <= 90; day += 10) {
        const sim::Time t = day * sim::kDay;
        std::printf("%-6d %-14.2f %-14.2f\n", day,
                    res_billing.profit_margin_pct.value_at(t),
                    nbos_billing.profit_margin_pct.value_at(t));
    }

    const double cost_cut = 100.0 * (res_billing.final_cost() -
                                     nbos_billing.final_cost()) /
                            res_billing.final_cost();
    std::printf("\nprovider cost reduction: %.1f%% (paper: up to 69.87%%)\n",
                cost_cut);
    std::printf("final margins: reservation %.1f%%, notebookos %.1f%% "
                "(paper: NotebookOS higher)\n",
                res_billing.final_margin_pct(),
                nbos_billing.final_margin_pct());
    return 0;
}
