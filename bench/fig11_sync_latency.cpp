/**
 * @file
 * Fig. 11: CDFs of large-object read/write latencies and small-object
 * Raft sync latencies, compared against event inter-arrival times — the
 * overheads must fit inside IATs so state replication stays invisible
 * (§5.4: sync p90/p95/p99 = 54.79/66.69/268.25 ms; 99% of reads/writes
 * within ~3.95/7.07 s; min event IAT 240 s).
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::excerpt_trace();
    const auto results =
        bench::run_policy(core::Policy::kNotebookOS, trace);

    metrics::Percentiles iats_ms;
    for (const double s : trace.iats_seconds().sorted()) {
        iats_ms.add(s * 1000.0);
    }

    bench::banner("Fig. 11: state synchronization overheads (ms)");
    bench::print_percentiles("raft sync (small state)", results.sync_ms,
                             "ms");
    bench::print_percentiles("datastore writes", results.write_ms, "ms");
    bench::print_percentiles("datastore reads", results.read_ms, "ms");
    bench::print_percentiles("event IATs", iats_ms, "ms");

    bench::print_cdf("sync-ms", results.sync_ms);
    bench::print_cdf("write-ms", results.write_ms);

    bench::banner("Containment check (§5.4)");
    std::printf("sync    p99 = %10.2f ms   (paper 268.25 ms)\n",
                results.sync_ms.percentile(99));
    std::printf("writes  p99 = %10.2f ms   (paper ~7070 ms)\n",
                results.write_ms.percentile(99));
    std::printf("reads   p99 = %10.2f ms   (paper ~3950 ms)\n",
                results.read_ms.percentile(99));
    std::printf("min IAT     = %10.2f ms   (paper 240000 ms)\n",
                iats_ms.min());
    const bool hidden = results.write_ms.percentile(99) < iats_ms.min() &&
                        results.read_ms.percentile(99) < iats_ms.min();
    std::printf("replication overhead fully contained within IATs: %s\n",
                hidden ? "YES" : "NO");
    return 0;
}
