/**
 * @file
 * micro_sched: simulation-event throughput of the sharded Global
 * Scheduler at shards ∈ {1, 2, 4, 8}.
 *
 * An identical synthetic session workload (dense session ids, so the
 * ShardRouter spreads them) is run at each shard count; the timed phase
 * is one big lockstep window over the cell-execution horizon, during
 * which each shard's event loop runs on its own thread. On a multi-core
 * host the events/sec rate should scale with the shard count (the
 * sharding PR's acceptance bar is >= 1.5x at shards=4).
 *
 * Output convention: the table rows are fully deterministic (same seed ->
 * same kernels/executions/event counts) and are hashed by the CI bench
 * gate; wall-clock figures are emitted on `# TIMING` lines, which
 * bench/check_bench.py strips before hashing.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/sharded_scheduler.hpp"

namespace {

using namespace nbos;

struct ShardRunResult
{
    std::uint64_t kernels = 0;
    std::uint64_t executions = 0;
    std::uint64_t timed_events = 0;
    double seconds = 0.0;
    double imbalance = 0.0;
};

ShardRunResult
run_at(std::int32_t shards, std::int64_t sessions, std::int64_t cells)
{
    sched::SchedulerConfig config;
    // 24 initial servers: divisible shares down to 3 servers at shards=8,
    // so every shard slice hosts 3-replica kernels without scale-outs.
    config.initial_servers = 24;
    config.enable_autoscaler = false;
    config.shards = shards;
    // Fast Raft timers (as in the scheduler test fixtures): heartbeats
    // every 50 ms are what generate the event volume being measured.
    config.kernel.raft.election_timeout_min = 150 * sim::kMillisecond;
    config.kernel.raft.election_timeout_max = 300 * sim::kMillisecond;
    config.kernel.raft.heartbeat_interval = 50 * sim::kMillisecond;
    config.kernel.raft.snapshot_threshold = 16;

    sched::ShardedGlobalScheduler scheduler(config, bench::kSeed);
    scheduler.start();

    // Kernel creation phase (untimed). Callbacks may fire on shard
    // threads, so each writes only its own pre-sized slot.
    std::vector<cluster::KernelId> kernels(
        static_cast<std::size_t>(sessions), cluster::kNoKernel);
    const cluster::ResourceSpec spec{4000, 16384, 1, 16.0};
    for (std::int64_t session = 0; session < sessions; ++session) {
        const auto slot = static_cast<std::size_t>(session);
        scheduler.start_kernel(session + 1, spec,
                               [&kernels, slot](cluster::KernelId id,
                                                bool ok) {
                                   kernels[slot] =
                                       ok ? id : cluster::kNoKernel;
                               });
    }
    scheduler.run_until(300 * sim::kSecond);

    // Cell schedule: staggered GPU cells, spaced so a session's cells
    // never overlap. Completion is read from the merged stats afterwards
    // (no shared counters across shard threads).
    sim::Time horizon = 300 * sim::kSecond;
    for (std::int64_t session = 0; session < sessions; ++session) {
        const auto slot = static_cast<std::size_t>(session);
        if (kernels[slot] == cluster::kNoKernel) {
            continue;
        }
        const std::size_t shard = scheduler.shard_of(session + 1);
        for (std::int64_t cell = 0; cell < cells; ++cell) {
            const sim::Time at = 300 * sim::kSecond +
                                 cell * 45 * sim::kSecond +
                                 (session % 7) * 3 * sim::kSecond;
            horizon = std::max(horizon, at);
            const cluster::KernelId kernel_id = kernels[slot];
            sched::ShardedGlobalScheduler* sched_ptr = &scheduler;
            scheduler.simulation(shard).schedule_at(
                at, [sched_ptr, kernel_id] {
                    sched_ptr->submit_execute(
                        kernel_id, "gpu_compute(4)", true,
                        sched_ptr
                            ->simulation(sched_ptr->shard_of_kernel(
                                kernel_id))
                            .now(),
                        [](const kernel::ExecutionResult&,
                           const sched::RequestTrace&) {});
                });
        }
    }

    // Timed phase: one lockstep window across the whole execution
    // horizon plus a drain tail — the multi-core hot loop.
    const std::uint64_t events_before = scheduler.events_executed();
    const auto wall_start = std::chrono::steady_clock::now();
    scheduler.run_until(horizon + 300 * sim::kSecond);
    const auto wall_end = std::chrono::steady_clock::now();

    ShardRunResult result;
    result.kernels = scheduler.stats().kernels_created;
    result.executions = scheduler.stats().executions_completed;
    result.timed_events = scheduler.events_executed() - events_before;
    result.seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.imbalance = scheduler.stats().shard_imbalance();
    return result;
}

}  // namespace

int
main()
{
    const bool smoke = bench::smoke_mode();
    const std::int64_t sessions = smoke ? 12 : 48;
    const std::int64_t cells = smoke ? 4 : 12;

    bench::banner("micro_sched: sharded GlobalScheduler event throughput "
                  "(sessions=" +
                  std::to_string(sessions) +
                  " cells/session=" + std::to_string(cells) + ")");
    std::printf("%-8s %10s %12s %14s\n", "shards", "kernels", "executions",
                "timed_events");

    double base_rate = 0.0;
    for (const std::int32_t shards : {1, 2, 4, 8}) {
        const ShardRunResult result = run_at(shards, sessions, cells);
        std::printf("%-8d %10llu %12llu %14llu\n", shards,
                    static_cast<unsigned long long>(result.kernels),
                    static_cast<unsigned long long>(result.executions),
                    static_cast<unsigned long long>(result.timed_events));
        const double rate =
            result.seconds > 0.0
                ? static_cast<double>(result.timed_events) / result.seconds
                : 0.0;
        if (shards == 1) {
            base_rate = rate;
        }
        // Wall-clock lines: stripped from the CI gate's stdout hash.
        // imbalance is max/mean of per-shard events (routing telemetry;
        // 0.0 at shards=1, which has no per-shard view).
        std::printf("# TIMING shards=%d seconds=%.4f events_per_sec=%.0f "
                    "speedup_vs_1=%.2f imbalance=%.3f\n",
                    shards, result.seconds, rate,
                    base_rate > 0.0 ? rate / base_rate : 0.0,
                    result.imbalance);
    }
    return 0;
}
