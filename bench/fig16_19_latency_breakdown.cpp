/**
 * @file
 * Figs. 16-19 (Appendix E): detailed end-to-end latency breakdown of
 * execute requests per policy, over the Fig. 15 step numbering:
 *   (1)  GS preprocessing (queueing, provisioning, placement)
 *   (2-4) network hops GS -> LS -> replica
 *   (6)  executor-election protocol (NotebookOS only)
 *   (7)  election end -> execution start (GPU bind, page-in)
 *   (8)  user-code execution
 *   (9)  post-processing before the reply (sync/unbind/writeback)
 *   (10) reply path back to the client
 */
#include "bench_common.hpp"

namespace {

using namespace nbos;

void
breakdown(const char* name, const core::ExperimentResults& results)
{
    metrics::Percentiles gs_pre;
    metrics::Percentiles hops;
    metrics::Percentiles election;
    metrics::Percentiles pre_exec;
    metrics::Percentiles exec;
    metrics::Percentiles post;
    metrics::Percentiles reply;
    metrics::Percentiles e2e;
    for (const auto& task : results.tasks) {
        if (task.aborted || !task.is_gpu) {
            continue;
        }
        const auto& t = task.trace;
        e2e.add(sim::to_millis(task.reply - task.submit));
        exec.add(sim::to_millis(task.exec_end - task.exec_start));
        post.add(sim::to_millis(task.reply > t.replica_replied &&
                                        t.replica_replied > 0
                                    ? t.replica_replied - task.exec_end
                                    : task.reply - task.exec_end));
        if (t.gs_received > 0) {  // prototype engines fill the full trace
            gs_pre.add(sim::to_millis(t.gs_dispatched - t.gs_received));
            hops.add(sim::to_millis(t.replica_received - t.gs_dispatched));
            election.add(sim::to_millis(t.election_latency));
            pre_exec.add(sim::to_millis(t.execution_started -
                                        t.replica_received -
                                        t.election_latency));
            reply.add(sim::to_millis(t.client_replied - t.replica_replied));
        } else {
            // Baselines: everything before execution is step 1.
            gs_pre.add(sim::to_millis(task.exec_start - task.submit));
        }
    }
    std::printf("\n--- %s ---\n", name);
    bench::print_percentiles("(1) GS preprocess", gs_pre, "ms");
    if (hops.count() > 0) {
        bench::print_percentiles("(2-4) hops+LS", hops, "ms");
        bench::print_percentiles("(6) election", election, "ms");
        bench::print_percentiles("(7) bind/page-in", pre_exec, "ms");
    }
    bench::print_percentiles("(8) execution", exec, "ms");
    bench::print_percentiles("(9) post-process", post, "ms");
    if (reply.count() > 0) {
        bench::print_percentiles("(10) reply path", reply, "ms");
    }
    bench::print_percentiles("E2E", e2e, "ms");
}

}  // namespace

int
main()
{
    const auto trace = bench::excerpt_trace();
    bench::banner("Figs. 16-19: per-step latency breakdown (ms)");

    // The four policies run concurrently on the ExperimentRunner;
    // results come back in request order.
    const auto results =
        bench::run_policies(trace, {{core::Policy::kReservation},
                                    {core::Policy::kBatch},
                                    {core::Policy::kNotebookOS},
                                    {core::Policy::kNotebookOSLCP}});
    breakdown("Fig. 16: Reservation", results[0]);
    breakdown("Fig. 17: Batch", results[1]);
    breakdown("Fig. 18: NotebookOS", results[2]);
    breakdown("Fig. 19: NotebookOS (LCP)", results[3]);

    std::printf("\nShape checks: Batch spends its time in step (1) "
                "(on-demand provisioning + queueing);\n"
                "NotebookOS adds a small step (6) election cost "
                "(tens of ms) that does not dominate E2E.\n");
    return 0;
}
