#!/usr/bin/env python3
"""Bench-regression gate for the smoke bench tier.

Runs every bench binary under NBOS_BENCH_SMOKE=1, parses its stdout
tables (percentile rows and key=value columns) into JSON, and checks two
things against the committed bench/baseline.json:

  * correctness: the deterministic stdout (minus "# TIMING" wall-clock
    lines) must hash to the baseline value — the benches are seeded and
    the engines are bit-deterministic, so any drift is a behaviour
    change and needs a deliberate `--update`;
  * throughput: each bench's wall time must stay inside the tolerance
    band (relative tolerance plus a small absolute guard so millisecond
    jitter on tiny benches cannot trip the gate).

Modes:
  compare (default)  exit 1 on any regression; writes --out JSON either way
  --update           re-measure and rewrite the baseline file

The NBOS_BENCH_INJECT_SLOWDOWN_PCT env hook in bench_common.hpp slows
every run_policies/run_specs_or_exit scope proportionally, so the gate's
red path is testable without committing a slowdown:

  NBOS_BENCH_INJECT_SLOWDOWN_PCT=25 check_bench.py --build build  # red
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import subprocess
import sys
import time

TIMING_PREFIX = "# TIMING"

# Google Benchmark binaries: their whole stdout is wall-clock measurement
# (no deterministic figure tables) and they self-calibrate their run
# time, so neither the hash nor the seconds comparison is meaningful.
# Their bench-rot coverage stays in the `ctest -L smoke` tier.
SKIP_BENCHES = {"micro_raft", "micro_simcore"}

# Percentile-table rows printed by bench_common's print_percentiles:
#   label n=123  p10=1.0 p25=... max=... [unit]
ROW_RE = re.compile(r"^(?P<label>\S.*?)\s+n=(?P<n>\d+)\s+(?P<rest>p10=.*)$")
PAIR_RE = re.compile(r"(p\d+|max)=([-+0-9.eE]+)")


def discover_benches(build_dir: str) -> list[str]:
    bench_dir = os.path.join(build_dir, "bench")
    if not os.path.isdir(bench_dir):
        sys.exit(f"error: {bench_dir} not found (build the benches first)")
    benches = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if (
            os.path.isfile(path)
            and os.access(path, os.X_OK)
            and name not in SKIP_BENCHES
        ):
            benches.append(name)
    if not benches:
        sys.exit(f"error: no bench executables in {bench_dir}")
    return benches


def parse_metrics(stdout: str) -> dict:
    """Extract the numeric figure rows (the run_policies tables) as JSON."""
    metrics: dict[str, dict] = {}
    for line in stdout.splitlines():
        match = ROW_RE.match(line.rstrip())
        if not match:
            continue
        label = match.group("label").strip()
        row = {"n": int(match.group("n"))}
        for key, value in PAIR_RE.findall(match.group("rest")):
            row[key] = float(value)
        # Benches print one table per engine; repeated labels get suffixed
        # so every row survives into the artifact.
        key = label
        suffix = 2
        while key in metrics:
            key = f"{label}#{suffix}"
            suffix += 1
        metrics[key] = row
    return metrics


def deterministic_hash(stdout: str) -> str:
    """SHA-256 of stdout minus the wall-clock '# TIMING' lines."""
    lines = [
        line
        for line in stdout.splitlines()
        if not line.startswith(TIMING_PREFIX)
    ]
    digest = hashlib.sha256("\n".join(lines).encode("utf-8"))
    return digest.hexdigest()


def run_bench(build_dir: str, name: str) -> dict:
    env = dict(os.environ)
    env["NBOS_BENCH_SMOKE"] = "1"
    # The gate measures the deterministic single-seed, monolithic,
    # statically routed tier.
    env.pop("NBOS_BENCH_SEEDS", None)
    env.pop("NBOS_BENCH_POLICIES", None)
    env.pop("NBOS_BENCH_SHARDS", None)
    env.pop("NBOS_BENCH_ROUTING", None)
    env.pop("NBOS_BENCH_PROFILE", None)
    path = os.path.join(build_dir, "bench", name)
    start = time.monotonic()
    proc = subprocess.run(
        [path], env=env, capture_output=True, text=True, timeout=600
    )
    seconds = time.monotonic() - start
    if proc.returncode != 0:
        sys.exit(
            f"error: {name} exited with {proc.returncode}\n{proc.stderr}"
        )
    return {
        "seconds": round(seconds, 4),
        "stdout_sha256": deterministic_hash(proc.stdout),
        "metrics": parse_metrics(proc.stdout),
    }


def compare(
    baseline: dict, measured: dict, tolerance: float, abs_guard: float
) -> list[str]:
    failures = []
    for name, base in sorted(baseline["benches"].items()):
        got = measured.get(name)
        if got is None:
            failures.append(f"{name}: bench missing from this build")
            continue
        if got["stdout_sha256"] != base["stdout_sha256"]:
            diffs = []
            for label, row in base.get("metrics", {}).items():
                new_row = got["metrics"].get(label)
                if new_row != row:
                    diffs.append(label)
            detail = f" (changed rows: {', '.join(diffs)})" if diffs else ""
            failures.append(
                f"{name}: deterministic output drifted from baseline"
                f"{detail} — a behaviour change; rerun with --update if "
                "intended"
            )
        limit = base["seconds"] * (1.0 + tolerance)
        if (
            got["seconds"] > limit
            and got["seconds"] - base["seconds"] > abs_guard
        ):
            failures.append(
                f"{name}: {got['seconds']:.3f}s vs baseline "
                f"{base['seconds']:.3f}s exceeds the +{tolerance:.0%} band"
            )
    for name in sorted(set(measured) - set(baseline["benches"])):
        print(
            f"note: {name} has no baseline entry (new bench?) — "
            "run --update to pin it"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build", help="build directory")
    parser.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(__file__), "baseline.json"),
    )
    parser.add_argument("--out", default="", help="write measured JSON here")
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline file"
    )
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=None,
        help="relative wall-time band (default: baseline file's value, "
        "overridable via NBOS_BENCH_TIME_TOLERANCE)",
    )
    args = parser.parse_args()

    measured = {}
    for name in discover_benches(args.build):
        measured[name] = run_bench(args.build, name)
        print(
            f"measured {name}: {measured[name]['seconds']:.3f}s "
            f"sha={measured[name]['stdout_sha256'][:12]}"
        )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as out:
            json.dump({"benches": measured}, out, indent=1, sort_keys=True)
        print(f"wrote {args.out}")

    if args.update:
        # Preserve a previously configured tolerance band; only the
        # measurements are re-pinned.
        tolerance = 0.15
        if os.path.exists(args.baseline):
            try:
                with open(args.baseline, encoding="utf-8") as handle:
                    tolerance = json.load(handle).get(
                        "time_tolerance", tolerance
                    )
            except (OSError, ValueError):
                pass
        payload = {"time_tolerance": tolerance, "benches": measured}
        with open(args.baseline, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=1, sort_keys=True)
            out.write("\n")
        print(f"updated {args.baseline}")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    tolerance = baseline.get("time_tolerance", 0.15)
    if os.environ.get("NBOS_BENCH_TIME_TOLERANCE"):
        tolerance = float(os.environ["NBOS_BENCH_TIME_TOLERANCE"])
    if args.time_tolerance is not None:
        tolerance = args.time_tolerance

    failures = compare(baseline, measured, tolerance, abs_guard=0.1)
    if failures:
        print("\nbench-regression gate: RED")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(
        f"\nbench-regression gate: green "
        f"({len(baseline['benches'])} benches within +{tolerance:.0%})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
