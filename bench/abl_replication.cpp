/**
 * @file
 * Ablation: replication factor R. The paper fixes R=3 (§3.1: R=5 costs
 * substantially more without performance benefit; R=2 is unsupported by
 * Raft). This bench sweeps R over {1, 3, 5} to quantify the trade-off
 * between provisioning cost and interactivity/fault-tolerance.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 6 * sim::kHour;
    options.max_sessions = 40;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(),
                           bench::apply_smoke(options));

    bench::banner("Ablation: replicas per kernel (6 h, 40 sessions)");
    std::printf("%-4s %-12s %-12s %-12s %-12s %-12s\n", "R", "gpu-hours",
                "delay-p50-s", "delay-p99-s", "migrations", "sync-p90-ms");
    // The replication sweep runs concurrently on the ExperimentRunner.
    const std::vector<std::int32_t> replica_counts{1, 3, 5};
    std::vector<core::ExperimentSpec> specs;
    for (const std::int32_t replicas : replica_counts) {
        core::ExperimentSpec spec;
        spec.engine = core::kEnginePrototype;
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.config.scheduler.kernel.replica_count = replicas;
        spec.seed = bench::kSeed;
        spec.label = "R=" + std::to_string(replicas);
        specs.push_back(std::move(spec));
    }
    const auto outcomes = bench::run_specs_or_exit(specs);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& results = outcomes[i].results;
        const auto delays = results.interactivity_delays_seconds();
        std::printf("%-4d %-12.1f %-12.3f %-12.3f %-12llu %-12.2f\n",
                    replica_counts[i], results.gpu_hours_provisioned(),
                    delays.percentile(50), delays.percentile(99),
                    static_cast<unsigned long long>(
                        results.sched_stats.migrations),
                    results.sync_ms.percentile(90));
    }
    std::printf("\nExpectation: R=1 provisions least but loses failover "
                "and executor choice;\nR=5 adds subscription pressure "
                "(more servers) for little latency benefit.\n");
    return 0;
}
