/**
 * @file
 * Fig. 7: number of active user sessions and active user-submitted
 * training tasks during the 17.5-hour AdobeTrace excerpt running on
 * NotebookOS.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::excerpt_trace();
    const auto results =
        bench::run_policy(core::Policy::kNotebookOS, trace);

    const auto sessions = core::active_sessions_series(trace);
    const auto trainings = results.active_trainings_series();

    bench::banner("Fig. 7: active sessions & trainings (17.5 h excerpt)");
    std::printf("%-8s %-10s %-10s\n", "hour", "trainings", "sessions");
    for (double hour = 0.0; hour <= 17.5; hour += 0.5) {
        const sim::Time t = sim::from_seconds(hour * 3600.0);
        std::printf("%-8.1f %-10.0f %-10.0f\n", hour,
                    trainings.value_at(t), sessions.value_at(t));
    }

    metrics::Percentiles training_samples;
    for (sim::Time t = 0; t < trace.makespan; t += 5 * sim::kMinute) {
        training_samples.add(trainings.value_at(t));
    }
    std::printf("\nactive trainings: mean=%.1f median=%.0f max=%.0f "
                "(paper: mean 19.5, median 19, max 34)\n",
                training_samples.mean(), training_samples.median(),
                trainings.max_value());
    std::printf("active sessions at end: %.0f (paper: 87; max 90)\n",
                sessions.value_at(trace.makespan - 1));
    return 0;
}
