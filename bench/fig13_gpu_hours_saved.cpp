/**
 * @file
 * Fig. 13: GPU-hours NotebookOS saves by avoiding re-execution of
 * notebook cells after idle-session reclamations, for reclamation
 * intervals of 15/30/60/90/120 minutes over the 90-day trace. Shorter
 * intervals reclaim more aggressively, so NotebookOS's state persistence
 * saves the most there.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::summer_trace();

    const std::vector<int> intervals_min = {15, 30, 60, 90, 120};
    std::vector<metrics::TimeSeries> saved;
    saved.reserve(intervals_min.size());
    for (const int minutes : intervals_min) {
        saved.push_back(core::reexecution_saved_series(
            trace, minutes * sim::kMinute, 12 * sim::kHour));
    }

    bench::banner("Fig. 13: cumulative GPU-hours saved vs reclamation "
                  "interval");
    std::printf("%-6s", "day");
    for (const int minutes : intervals_min) {
        std::printf(" %10d-min", minutes);
    }
    std::printf("\n");
    for (int day = 0; day <= 90; day += 10) {
        const sim::Time t = day * sim::kDay;
        std::printf("%-6d", day);
        for (const auto& series : saved) {
            std::printf(" %14.0f", series.value_at(t));
        }
        std::printf("\n");
    }

    std::printf("\nOrdering check (shorter interval saves more): ");
    bool ordered = true;
    for (std::size_t i = 1; i < saved.size(); ++i) {
        if (saved[i - 1].current() < saved[i].current()) {
            ordered = false;
        }
    }
    std::printf("%s\n", ordered ? "PASS" : "FAIL");
    std::printf("15-min total: %.0f GPU-hours saved across %zu sessions "
                "(superlinear growth, as in the paper)\n",
                saved.front().current(), trace.sessions.size());
    return 0;
}
