/**
 * @file
 * Micro-benchmarks (google-benchmark) for the Raft substrate: election
 * convergence, proposal-commit latency, and replication throughput at
 * different cluster sizes.
 */
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "raft/raft.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace nbos;

struct Group
{
    sim::Simulation simulation;
    net::Network network{simulation, sim::Rng(7)};
    std::vector<std::unique_ptr<raft::RaftNode>> nodes;
    std::uint64_t applied = 0;

    explicit Group(int n)
    {
        std::vector<net::NodeId> members;
        for (int i = 0; i < n; ++i) {
            members.push_back(i + 1);
        }
        for (int i = 0; i < n; ++i) {
            auto node = std::make_unique<raft::RaftNode>(
                simulation, network, members[i], members,
                raft::RaftConfig{}, sim::Rng(100 + i));
            node->set_apply([this](const raft::LogEntry&) { ++applied; });
            nodes.push_back(std::move(node));
        }
        for (auto& node : nodes) {
            node->start();
        }
    }

    raft::RaftNode*
    leader()
    {
        for (auto& node : nodes) {
            if (node->role() == raft::Role::kLeader) {
                return node.get();
            }
        }
        return nullptr;
    }
};

void
BM_RaftElection(benchmark::State& state)
{
    for (auto _ : state) {
        Group group(static_cast<int>(state.range(0)));
        group.simulation.run_until(5 * sim::kSecond);
        benchmark::DoNotOptimize(group.leader());
    }
}
BENCHMARK(BM_RaftElection)->Arg(3)->Arg(5)->Arg(7);

void
BM_RaftProposalCommit(benchmark::State& state)
{
    Group group(static_cast<int>(state.range(0)));
    group.simulation.run_until(5 * sim::kSecond);
    for (auto _ : state) {
        raft::RaftNode* leader = group.leader();
        const std::uint64_t before = group.applied;
        leader->propose("x");
        // Advance simulated time until every node applied the entry.
        while (group.applied <
               before + static_cast<std::uint64_t>(state.range(0))) {
            group.simulation.step();
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RaftProposalCommit)->Arg(3)->Arg(5);

void
BM_RaftReplicationThroughput(benchmark::State& state)
{
    for (auto _ : state) {
        Group group(3);
        group.simulation.run_until(5 * sim::kSecond);
        raft::RaftNode* leader = group.leader();
        const int batch = 1000;
        for (int i = 0; i < batch; ++i) {
            leader->propose("payload-" + std::to_string(i));
        }
        group.simulation.run_until(group.simulation.now() +
                                   30 * sim::kSecond);
        if (group.applied < static_cast<std::uint64_t>(batch) * 3) {
            state.SkipWithError("entries not fully replicated");
        }
        state.SetItemsProcessed(state.items_processed() + batch);
    }
}
BENCHMARK(BM_RaftReplicationThroughput)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
