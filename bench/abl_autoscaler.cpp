/**
 * @file
 * Ablation: auto-scaler aggressiveness f (§3.4.2 sets f = 1.05). Sweeps
 * the multiplier and the scaling buffer to expose the provisioning-cost
 * vs migration-frequency trade-off.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 6 * sim::kHour;
    options.max_sessions = 40;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(),
                           bench::apply_smoke(options));

    bench::banner("Ablation: auto-scaler multiplier f (6 h, 40 sessions)");
    std::printf("%-6s %-8s %-12s %-12s %-12s %-12s\n", "f", "buffer",
                "gpu-hours", "delay-p99-s", "migrations", "scale-outs");
    // The whole (f, buffer) sweep runs concurrently on the
    // ExperimentRunner; outcomes come back in sweep order.
    struct Point
    {
        double f;
        std::int32_t buffer;
    };
    std::vector<Point> points;
    std::vector<core::ExperimentSpec> specs;
    for (const double f : {1.0, 1.05, 1.25, 1.5}) {
        for (const std::int32_t buffer : {0, 2}) {
            core::ExperimentSpec spec;
            spec.engine = core::kEnginePrototype;
            spec.trace = &trace;
            spec.config = core::PlatformConfig::prototype_defaults();
            spec.config.scheduler.autoscaler.multiplier = f;
            spec.config.scheduler.autoscaler.buffer_servers = buffer;
            spec.seed = bench::kSeed;
            char label[32];
            std::snprintf(label, sizeof(label), "f=%.2f buffer=%d", f,
                          buffer);
            spec.label = label;
            points.push_back(Point{f, buffer});
            specs.push_back(std::move(spec));
        }
    }
    const auto outcomes = bench::run_specs_or_exit(specs);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& results = outcomes[i].results;
        std::printf("%-6.2f %-8d %-12.1f %-12.3f %-12llu %-12llu\n",
                    points[i].f, points[i].buffer,
                    results.gpu_hours_provisioned(),
                    results.interactivity_delays_seconds().percentile(99),
                    static_cast<unsigned long long>(
                        results.sched_stats.migrations),
                    static_cast<unsigned long long>(
                        results.sched_stats.scale_outs));
    }
    std::printf("\nExpectation: larger f / buffer -> more GPU-hours but "
                "fewer migrations and shorter tails.\n");
    return 0;
}
