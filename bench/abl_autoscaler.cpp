/**
 * @file
 * Ablation: auto-scaler aggressiveness f (§3.4.2 sets f = 1.05). Sweeps
 * the multiplier and the scaling buffer to expose the provisioning-cost
 * vs migration-frequency trade-off.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 6 * sim::kHour;
    options.max_sessions = 40;
    options.sessions_survive_trace = true;
    const auto trace =
        generator.generate(workload::TraceProfile::adobe(),
                           bench::apply_smoke(options));

    bench::banner("Ablation: auto-scaler multiplier f (6 h, 40 sessions)");
    std::printf("%-6s %-8s %-12s %-12s %-12s %-12s\n", "f", "buffer",
                "gpu-hours", "delay-p99-s", "migrations", "scale-outs");
    for (const double f : {1.0, 1.05, 1.25, 1.5}) {
        for (const std::int32_t buffer : {0, 2}) {
            core::PlatformConfig config =
                core::PlatformConfig::prototype_defaults();
            config.policy = core::Policy::kNotebookOS;
            config.seed = bench::kSeed;
            config.scheduler.autoscaler.multiplier = f;
            config.scheduler.autoscaler.buffer_servers = buffer;
            core::Platform platform(config);
            const auto results = platform.run(trace);
            std::printf("%-6.2f %-8d %-12.1f %-12.3f %-12llu %-12llu\n", f,
                        buffer, results.gpu_hours_provisioned(),
                        results.interactivity_delays_seconds().percentile(
                            99),
                        static_cast<unsigned long long>(
                            results.sched_stats.migrations),
                        static_cast<unsigned long long>(
                            results.sched_stats.scale_outs));
        }
    }
    std::printf("\nExpectation: larger f / buffer -> more GPU-hours but "
                "fewer migrations and shorter tails.\n");
    return 0;
}
