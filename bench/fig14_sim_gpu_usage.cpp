/**
 * @file
 * Fig. 14: 90-day simulation study — (a) cluster-wide allocatable GPUs
 * per policy vs the Oracle/Reservation references, and (b) the GPU usage
 * ratio (actively-utilized fraction of allocatable GPUs). NotebookOS
 * oversubscribes servers and thus provisions far fewer GPUs at a much
 * higher usage ratio than Reservation.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::summer_trace();

    const auto oracle = core::oracle_gpu_series(trace);
    // The three policies run concurrently on the ExperimentRunner.
    const auto results = bench::run_policies(
        trace, {{.policy = core::Policy::kReservation},
                {.policy = core::Policy::kNotebookOS, .fast = true},
                {.policy = core::Policy::kNotebookOSLCP}});
    const auto& reservation = results[0];
    const auto& nbos = results[1];
    const auto& lcp = results[2];

    bench::banner("Fig. 14(a): allocatable GPUs over 90 days");
    std::printf("%-6s %-8s %-12s %-8s %-8s\n", "day", "oracle",
                "reservation", "nbos", "lcp");
    for (int day = 0; day <= 90; day += 6) {
        const sim::Time t = day * sim::kDay;
        std::printf("%-6d %-8.0f %-12.0f %-8.0f %-8.0f\n", day,
                    oracle.value_at(t),
                    reservation.provisioned_gpus.value_at(t),
                    nbos.provisioned_gpus.value_at(t),
                    lcp.provisioned_gpus.value_at(t));
    }

    bench::banner("Fig. 14(b): GPU usage ratio (committed/allocatable)");
    std::printf("%-6s %-12s %-8s %-8s\n", "day", "reservation", "nbos",
                "lcp");
    auto ratio = [](const core::ExperimentResults& results, sim::Time t0,
                    sim::Time t1) {
        const double provisioned =
            results.provisioned_gpus.integrate_hours(t0, t1);
        // For Reservation the "actively used" GPUs are the oracle demand;
        // committed equals reserved by construction.
        return provisioned;
    };
    (void)ratio;
    for (int day = 6; day <= 90; day += 6) {
        const sim::Time t0 = (day - 6) * sim::kDay;
        const sim::Time t1 = day * sim::kDay;
        const double demand = oracle.integrate_hours(t0, t1);
        const double res_cap =
            reservation.provisioned_gpus.integrate_hours(t0, t1);
        const double nbos_cap =
            nbos.provisioned_gpus.integrate_hours(t0, t1);
        const double nbos_used = nbos.committed_gpus.integrate_hours(t0, t1);
        const double lcp_cap =
            lcp.provisioned_gpus.integrate_hours(t0, t1);
        const double lcp_used = lcp.committed_gpus.integrate_hours(t0, t1);
        std::printf("%-6d %-12.3f %-8.3f %-8.3f\n", day,
                    res_cap > 0 ? demand / res_cap : 0.0,
                    nbos_cap > 0 ? nbos_used / nbos_cap : 0.0,
                    lcp_cap > 0 ? lcp_used / lcp_cap : 0.0);
    }

    const double res_total =
        reservation.provisioned_gpus.integrate_hours(0, trace.makespan);
    const double nbos_total =
        nbos.provisioned_gpus.integrate_hours(0, trace.makespan);
    std::printf("\n90-day GPU-hours: reservation=%.0f notebookos=%.0f "
                "(%.1f%% fewer; paper: significantly fewer servers)\n",
                res_total, nbos_total,
                100.0 * (res_total - nbos_total) / res_total);
    return 0;
}
