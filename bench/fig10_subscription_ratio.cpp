/**
 * @file
 * Fig. 10: timeline of major scheduler events (kernel creations,
 * migrations, scale-outs) against the cluster-wide subscription ratio
 * while executing the 17.5-hour workload on NotebookOS.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::excerpt_trace();
    const auto results =
        bench::run_policy(core::Policy::kNotebookOS, trace);

    bench::banner("Fig. 10: events vs subscription ratio (hourly buckets)");
    std::printf("%-6s %-10s %-11s %-10s %-9s %-6s\n", "hour", "creations",
                "migrations", "scaleouts", "scaleins", "SR");
    const int buckets = 18;
    int creations[buckets] = {};
    int migrations[buckets] = {};
    int scale_outs[buckets] = {};
    int scale_ins[buckets] = {};
    for (const auto& event : results.events) {
        const int bucket = static_cast<int>(sim::to_hours(event.time));
        if (bucket < 0 || bucket >= buckets) {
            continue;
        }
        switch (event.kind) {
          case sched::SchedulerEvent::Kind::kKernelCreated:
            ++creations[bucket];
            break;
          case sched::SchedulerEvent::Kind::kMigration:
            ++migrations[bucket];
            break;
          case sched::SchedulerEvent::Kind::kScaleOut:
            ++scale_outs[bucket];
            break;
          case sched::SchedulerEvent::Kind::kScaleIn:
            ++scale_ins[bucket];
            break;
        }
    }
    for (int hour = 0; hour < buckets; ++hour) {
        const sim::Time t = (hour + 1) * sim::kHour;
        std::printf("%-6d %-10d %-11d %-10d %-9d %-6.2f\n", hour,
                    creations[hour], migrations[hour], scale_outs[hour],
                    scale_ins[hour],
                    results.subscription_ratio.value_at(t));
    }
    std::printf("\nSR max=%.2f (paper peaks near 3.0); total events: "
                "%zu creations, %llu migrations, %llu scale-outs\n",
                results.subscription_ratio.max_value(),
                static_cast<std::size_t>(
                    results.sched_stats.kernels_created),
                static_cast<unsigned long long>(
                    results.sched_stats.migrations),
                static_cast<unsigned long long>(
                    results.sched_stats.scale_outs));
    return 0;
}
