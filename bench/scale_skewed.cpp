/**
 * @file
 * scale_skewed: routing-policy comparison of the sharded fast analytic
 * engine (core::ShardedFastSim) on a hot-tenant skewed trace, at
 * shards ∈ {1, 2, 4, 8} × routing ∈ {static_hash, least_loaded,
 * rebalance}.
 *
 * The trace is the scale_sessions background (short-lived uniform
 * sessions, one GPU cell each) plus eight whale sessions that live the
 * whole 24-hour day and together submit ~3x the background's cells.
 * Whale ids are chosen deterministically so that under the static hash
 * at shards=8 four whales collide on one shard — the worst case the
 * routing layer exists to fix: `least_loaded` spreads them at admission,
 * `rebalance` migrates them off the hot shard at the first window
 * boundaries.
 *
 * Throughput is compared on the *critical path*: every run is serial
 * (shard_parallel off) and each shard's event loop is timed alone, so
 * total events / max per-shard busy seconds is what an N-core host
 * would see — independent of how many cores this host has. The
 * acceptance bar of the routing PR is rebalance >= 2x static_hash on
 * that figure at shards=8.
 *
 * Full tier: 1,000,000 background sessions (4M cells). Smoke tier
 * (NBOS_BENCH_SMOKE=1, what `ctest -L scale` and the CI bench gate
 * run): 20,000 background sessions, same shape.
 *
 * Output convention: table rows (including the event-share imbalance,
 * a pure function of the deterministic per-shard event counts) are
 * hashed by bench/check_bench.py; wall-clock figures go on `# TIMING`
 * lines, which the gate strips before hashing.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/sharded_fastsim.hpp"
#include "sched/routing.hpp"
#include "sched/shard_router.hpp"

namespace {

using namespace nbos;

/** splitmix64 start-time spreader, as in scale_sessions. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::int64_t kWhales = 8;

/** Whale session ids, starting at @p base: the first four share one
 *  shard under the static hash at shards=8 (a guaranteed worst-case
 *  collision, not a lucky draw), the other four land on distinct other
 *  shards. Pure function of @p base via the stable router hash. */
std::vector<std::int64_t>
whale_ids(std::int64_t base)
{
    const sched::ShardRouter router(8);
    std::vector<std::int64_t> ids;
    const std::size_t hot = router.shard_of(base);
    std::int64_t next = base;
    while (ids.size() < 4) {
        if (router.shard_of(next) == hot) {
            ids.push_back(next);
        }
        ++next;
    }
    std::vector<char> used(8, 0);
    used[hot] = 1;
    while (ids.size() < kWhales) {
        const std::size_t shard = router.shard_of(next);
        if (!used[shard]) {
            used[shard] = 1;
            ids.push_back(next);
        }
        ++next;
    }
    return ids;
}

/** Skewed scale workload: @p light_count uniform 15-minute sessions
 *  with one GPU cell each, plus eight day-long whales that together
 *  submit 3x the background cell volume (each whale's cells are evenly
 *  spaced and strictly serial). */
workload::Trace
skewed_trace(std::int64_t light_count)
{
    workload::Trace trace;
    trace.name = "skewed-" + std::to_string(light_count);
    trace.makespan = 24 * sim::kHour;
    const sim::Time lifetime = 15 * sim::kMinute;
    const auto window =
        static_cast<std::uint64_t>(trace.makespan - lifetime);
    trace.sessions.reserve(
        static_cast<std::size_t>(light_count + kWhales));
    for (std::int64_t id = 0; id < light_count; ++id) {
        workload::SessionSpec session;
        session.id = id;
        session.start_time = static_cast<sim::Time>(
            mix64(static_cast<std::uint64_t>(id)) % window);
        session.end_time = session.start_time + lifetime;
        session.resources = cluster::ResourceSpec{4000, 16384, 1, 16.0};
        session.model = "scale";
        session.dataset = "synthetic";
        workload::CellTask task;
        task.session = id;
        task.seq = 0;
        task.submit_time = session.start_time + 60 * sim::kSecond;
        task.duration = 90 * sim::kSecond;
        task.is_gpu = true;
        session.tasks.push_back(std::move(task));
        trace.sessions.push_back(std::move(session));
    }
    // Whales: 3x the background volume split over eight sessions.
    const std::int64_t cells_per_whale = 3 * light_count / kWhales;
    const sim::Time period = trace.makespan / (cells_per_whale + 1);
    for (const std::int64_t id : whale_ids(light_count)) {
        workload::SessionSpec session;
        session.id = id;
        session.start_time = 0;
        session.end_time = trace.makespan;
        session.resources = cluster::ResourceSpec{4000, 16384, 1, 16.0};
        session.model = "scale";
        session.dataset = "synthetic-hot";
        for (std::int64_t cell = 0; cell < cells_per_whale; ++cell) {
            workload::CellTask task;
            task.session = id;
            task.seq = static_cast<std::int32_t>(cell);
            task.submit_time = (cell + 1) * period;
            task.duration = period / 2;  // serial: done before the next
            task.is_gpu = true;
            session.tasks.push_back(std::move(task));
        }
        trace.sessions.push_back(std::move(session));
    }
    return trace;
}

struct SkewRunResult
{
    core::ExperimentResults results;
    std::uint64_t sim_events = 0;
    std::uint64_t rebalanced = 0;
    double wall_seconds = 0.0;
    /** Slowest shard's serial event-loop seconds — the critical path an
     *  N-core host would be bound by (wall seconds for shards == 1). */
    double critical_seconds = 0.0;
};

SkewRunResult
run_at(const workload::Trace& trace, std::int32_t shards,
       sched::RoutingPolicyKind routing)
{
    core::PlatformConfig config = core::PlatformConfig::prototype_defaults();
    config.policy = core::Policy::kNotebookOS;
    config.fast_mode = true;
    config.seed = bench::kSeed;
    // Fixed ample fleet, autoscaler off — as in scale_sessions, the
    // bench measures routing, not capacity policy.
    const std::int64_t sessions =
        static_cast<std::int64_t>(trace.sessions.size());
    const auto servers =
        std::max<std::int64_t>(64, (sessions / 500 + 7) / 8 * 8);
    config.scheduler.initial_servers = static_cast<std::int32_t>(servers);
    config.scheduler.enable_autoscaler = false;
    config.scheduler.shards = shards;
    // Serial on purpose: each shard's loop is timed alone, so the
    // per-shard busy seconds are uncontended and their max is a valid
    // critical path whatever this host's core count is.
    config.scheduler.shard_parallel = false;
    config.scheduler.routing = routing;

    const auto wall_start = std::chrono::steady_clock::now();
    core::ShardedFastSim sim(trace, config);
    SkewRunResult run;
    run.results = sim.run();
    const auto wall_end = std::chrono::steady_clock::now();
    run.sim_events = sim.events_executed();
    run.rebalanced = sim.sessions_rebalanced();
    run.wall_seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    const std::vector<double>& busy = sim.shard_busy_seconds();
    run.critical_seconds =
        busy.empty() ? run.wall_seconds
                     : *std::max_element(busy.begin(), busy.end());
    return run;
}

}  // namespace

int
main()
{
    const bench::InjectedSlowdown slowdown_hook;
    const bool smoke = bench::smoke_mode();
    const std::int64_t light = smoke ? 20000 : 1000000;
    const workload::Trace trace = skewed_trace(light);

    std::int64_t cells = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        cells += static_cast<std::int64_t>(session.tasks.size());
    }
    bench::banner(
        "scale_skewed: routing policies on a hot-tenant trace, " +
        std::to_string(trace.sessions.size()) + " sessions / " +
        std::to_string(cells) + " cells over 24h (8 whales carry 3x the "
        "background load)" + (smoke ? " [smoke tier]" : ""));
    std::printf("%-12s %-7s %10s %10s %9s %9s %11s %10s\n", "policy",
                "shards", "tasks", "completed", "aborted", "kernels",
                "rebalanced", "imbalance");

    // critical_seconds per (policy, shards) for the summary ratio.
    double static8 = 0.0, rebalance8 = 0.0;
    for (const sched::RoutingPolicyKind routing :
         {sched::RoutingPolicyKind::kStaticHash,
          sched::RoutingPolicyKind::kLeastLoaded,
          sched::RoutingPolicyKind::kRebalance}) {
        for (const std::int32_t shards : {1, 2, 4, 8}) {
            const SkewRunResult run = run_at(trace, shards, routing);
            const sched::SchedulerStats& stats = run.results.sched_stats;
            std::printf(
                "%-12s %-7d %10zu %10llu %9zu %9llu %11llu %10.3f\n",
                sched::to_string(routing), shards,
                run.results.tasks.size(),
                static_cast<unsigned long long>(stats.executions_completed),
                run.results.aborted_count(),
                static_cast<unsigned long long>(stats.kernels_created),
                static_cast<unsigned long long>(run.rebalanced),
                stats.shard_imbalance());
            const double rate =
                run.critical_seconds > 0.0
                    ? static_cast<double>(run.sim_events) /
                          run.critical_seconds
                    : 0.0;
            if (shards == 8) {
                if (routing == sched::RoutingPolicyKind::kStaticHash) {
                    static8 = rate;
                } else if (routing ==
                           sched::RoutingPolicyKind::kRebalance) {
                    rebalance8 = rate;
                }
            }
            // Wall-clock lines: stripped from the CI gate's hash.
            std::printf("# TIMING policy=%s shards=%d wall_seconds=%.4f "
                        "critical_seconds=%.4f events_per_sec=%.0f\n",
                        sched::to_string(routing), shards,
                        run.wall_seconds, run.critical_seconds, rate);
        }
    }
    // The routing PR's acceptance figure (also a # TIMING line: the
    // ratio is wall-clock-derived and host-dependent).
    std::printf("# TIMING rebalance_vs_static_hash_at_8=%.2f\n",
                static8 > 0.0 ? rebalance8 / static8 : 0.0);
    return 0;
}
