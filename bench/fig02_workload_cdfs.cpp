/**
 * @file
 * Fig. 2: workload characteristics of the three traces.
 *  (a) task-duration CDFs    — Adobe p50 ~120 s vs Philly 621 s / Alibaba 957 s
 *  (b) inter-arrival-time CDFs — Adobe p50 ~300 s vs Philly 44 s / Alibaba 38 s
 *  (c) GPU utilization CDFs (Adobe)
 *  (d) reserved vs utilized GPUs over the 90-day window
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    using workload::TraceProfile;

    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 40 * sim::kHour;
    options.max_sessions = 250;
    options.sessions_survive_trace = true;
    options = bench::apply_smoke(options);

    const auto adobe = generator.generate(TraceProfile::adobe(), options);
    const auto philly = generator.generate(TraceProfile::philly(), options);
    const auto alibaba =
        generator.generate(TraceProfile::alibaba(), options);

    bench::banner("Fig. 2(a): task duration CDFs (seconds)");
    bench::print_percentiles("adobe", adobe.durations_seconds(), "s");
    bench::print_percentiles("philly", philly.durations_seconds(), "s");
    bench::print_percentiles("alibaba", alibaba.durations_seconds(), "s");
    bench::print_cdf("adobe-duration", adobe.durations_seconds());

    bench::banner("Fig. 2(b): within-session IAT CDFs (seconds)");
    bench::print_percentiles("adobe", adobe.iats_seconds(), "s");
    bench::print_percentiles("philly", philly.iats_seconds(), "s");
    bench::print_percentiles("alibaba", alibaba.iats_seconds(), "s");
    bench::print_cdf("adobe-iat", adobe.iats_seconds());

    bench::banner("Fig. 2(c): Adobe GPU utilization (Reservation platform)");
    const auto summer = bench::summer_trace();
    // Fraction of each session's lifetime with GPUs actively used.
    const auto busy = summer.session_busy_fractions();
    bench::print_percentiles("session active fraction", busy, "fraction");
    std::printf("sessions using GPUs <=5%% of lifetime: %.1f%% "
                "(paper: 74-75%%)\n",
                busy.cdf_at(0.05) * 100.0);
    // Cluster-wide utilization of reserved GPUs sampled over the trace.
    const auto reserved = core::reserved_gpu_series(summer);
    const auto oracle = core::oracle_gpu_series(summer);
    metrics::Percentiles cluster_util;
    for (sim::Time t = sim::kHour; t < summer.makespan;
         t += 6 * sim::kHour) {
        const double res = reserved.value_at(t);
        if (res > 0) {
            cluster_util.add(oracle.value_at(t) / res);
        }
    }
    bench::print_percentiles("cluster GPU util", cluster_util, "fraction");
    std::printf("mean reserved-GPU idleness: %.1f%% (paper: >81%% idle)\n",
                (1.0 - cluster_util.mean()) * 100.0);

    bench::banner("Fig. 2(d): reserved vs utilized GPUs (90-day window)");
    std::printf("%-8s %-14s %-14s %-12s\n", "day", "reserved-gpus",
                "utilized-gpus", "util-ratio");
    for (int day = 0; day <= 90; day += 6) {
        const sim::Time t = day * sim::kDay;
        const double res = reserved.value_at(t);
        const double used = oracle.value_at(t);
        std::printf("%-8d %-14.0f %-14.0f %-12.3f\n", day, res, used,
                    res > 0 ? used / res : 0.0);
    }
    const double reserved_hours =
        reserved.integrate_hours(0, summer.makespan);
    const double used_hours = oracle.integrate_hours(0, summer.makespan);
    std::printf("\nGPU-hours reserved=%.0f utilized=%.0f -> %.1f%% of "
                "reserved GPUs actively utilized (paper: ~15%%)\n",
                reserved_hours, used_hours,
                100.0 * used_hours / reserved_hours);
    return 0;
}
