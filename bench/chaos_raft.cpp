/**
 * @file
 * Chaos tier bench: fault-rate sweep x policies over the Raft-replicated
 * prototype. Each row runs one policy under a scaled chaos plan (message
 * drop bursts, partitions + heals, replica crash/restart, clock skew,
 * latency spikes) and prints completed/aborted work, GPU-hours against the
 * clairvoyant oracle, and the per-fault-class network drop breakdown. The
 * analytic baselines have no network to break, so their rows double as the
 * chaos-free reference at every rate.
 *
 * Env knobs (see README "Chaos tier"):
 *   NBOS_CHAOS_SEED=<u64>    chaos plan seed (0 = derive from engine seed)
 *   NBOS_CHAOS_RATE=<f>      multiply every fault-class rate
 *   NBOS_CHAOS_RECORD=<path> run only the canonical chaos row and save its
 *                            injected schedule to <path>
 *   NBOS_CHAOS_REPLAY=<path> run only the canonical chaos row, re-executing
 *                            the schedule at <path> byte-identically
 *
 * RECORD and REPLAY print identical tables (mode details go on `# TIMING`
 * lines, which the bench gate and the CI determinism diff both strip), so
 * `diff <(record run) <(replay run)` is the replay-fidelity check.
 */
#include <chrono>
#include <cinttypes>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "chaos/config.hpp"
#include "chaos/env.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/generator.hpp"

namespace {

struct SweepRow
{
    nbos::core::Policy policy;
    double rate_scale;
};

}  // namespace

int
main()
{
    using namespace nbos;
    const auto wall_start = std::chrono::steady_clock::now();
    const chaos::EnvKnobs knobs = chaos::read_env_knobs();
    const bool record_mode = !knobs.record_path.empty();
    const bool replay_mode = !knobs.replay_path.empty();

    workload::WorkloadGenerator generator{sim::Rng(bench::kSeed)};
    workload::GeneratorOptions options;
    options.makespan = 4 * sim::kHour;
    options.max_sessions = 24;
    options.sessions_survive_trace = true;
    const auto trace = generator.generate(workload::TraceProfile::adobe(),
                                          bench::apply_smoke(options));

    // The chaos window covers the bulk of the trace with a settle margin.
    chaos::ChaosOptions chaos_options;
    chaos_options.start = trace.makespan / 8;
    chaos_options.horizon = trace.makespan - trace.makespan / 4;
    chaos_options.rates = chaos::ChaosRates{3.0, 2.0, 1.0, 1.0, 1.0};

    const double canonical_scale = 1.0 * knobs.rate_scale;
    std::vector<SweepRow> rows;
    if (record_mode || replay_mode) {
        // RECORD/REPLAY pin down one canonical run; the schedule file is
        // the artifact, not the sweep.
        rows.push_back({core::Policy::kNotebookOS, canonical_scale});
    } else {
        for (const double scale : {0.0, 1.0, 2.0}) {
            for (const core::Policy policy :
                 {core::Policy::kReservation, core::Policy::kBatch,
                  core::Policy::kNotebookOS, core::Policy::kNotebookOSLCP}) {
                rows.push_back({policy, scale * knobs.rate_scale});
            }
        }
    }

    std::shared_ptr<const chaos::ScheduleFile> replay_schedule;
    if (replay_mode) {
        replay_schedule = std::make_shared<const chaos::ScheduleFile>(
            chaos::load_schedule_file(knobs.replay_path));
    }

    // One record sink per chaos-enabled run; the canonical row's schedule
    // is what NBOS_CHAOS_RECORD saves.
    std::vector<std::shared_ptr<chaos::RecordSink>> sinks(rows.size());
    std::vector<core::ExperimentSpec> specs;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& row = rows[i];
        core::ExperimentSpec spec;
        spec.engine = core::engine_name(row.policy, /*fast_mode=*/false);
        spec.trace = &trace;
        spec.config = core::PlatformConfig::prototype_defaults();
        spec.seed = bench::kSeed;
        spec.label = std::string(core::to_string(row.policy)) + "@x" +
                     std::to_string(row.rate_scale);
        // Chaos drives the prototype's network and replicas; the analytic
        // baselines have neither, so only NotebookOS rows enable it.
        if (row.policy == core::Policy::kNotebookOS &&
            (row.rate_scale > 0.0 || replay_mode)) {
            chaos::ChaosConfig& chaos_config = spec.config.scheduler.chaos;
            chaos_config.enabled = true;
            chaos_config.seed = knobs.seed;
            chaos_config.options = chaos_options;
            chaos_config.options.rates =
                chaos_options.rates.scaled(row.rate_scale);
            chaos_config.replay = replay_schedule;
            sinks[i] = std::make_shared<chaos::RecordSink>();
            chaos_config.record = sinks[i];
        }
        specs.push_back(std::move(spec));
    }

    bench::banner("Chaos: fault-rate sweep x policies (" + trace.name +
                  ", seed " + std::to_string(bench::kSeed) + ")");
    const double oracle = core::oracle_gpu_series(trace).integrate_hours(
        0, trace.makespan);
    std::printf("# oracle gpu-hours (clairvoyant floor): %.2f\n", oracle);

    const auto outcomes = bench::run_specs_or_exit(specs);

    std::printf("%-14s %-6s %-10s %-10s %-8s %-8s %-8s %-8s %-8s %-8s\n",
                "policy", "rate", "gpu-hours", "vs-oracle", "done",
                "aborted", "sent", "chaos", "dropped", "blocked");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const core::ExperimentResults& results = outcomes[i].results;
        std::size_t done = 0;
        for (const core::TaskOutcome& task : results.tasks) {
            done += !task.aborted && task.reply >= task.submit ? 1 : 0;
        }
        const net::NetworkStats& net = results.net_stats;
        std::printf("%-14s %-6.1f %-10.2f %-10.3f %-8zu %-8zu %-8" PRIu64
                    " %-8" PRIu64 " %-8" PRIu64 " %-8" PRIu64 "\n",
                    core::to_string(results.policy), rows[i].rate_scale,
                    results.gpu_hours_provisioned(),
                    results.gpu_hours_provisioned() / oracle, done,
                    results.aborted_count(), net.sent, net.dropped_chaos,
                    net.dropped,
                    static_cast<std::uint64_t>(net.blocked_partition));
    }
    std::printf("\nInvariant: every policy's gpu-hours stay >= the oracle "
                "floor at every fault rate,\nand chaos drops appear only "
                "on chaos-enabled NotebookOS rows.\n");

    if (record_mode) {
        chaos::ScheduleFile schedule;
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (sinks[i] != nullptr) {
                schedule = sinks[i]->merged();
            }
        }
        if (!chaos::save_schedule_file(knobs.record_path, schedule)) {
            std::fprintf(stderr, "[bench] cannot write schedule to %s\n",
                         knobs.record_path.c_str());
            return 1;
        }
        std::printf("# TIMING mode=record schedule=%s\n",
                    knobs.record_path.c_str());
    }
    if (replay_mode) {
        std::printf("# TIMING mode=replay schedule=%s\n",
                    knobs.replay_path.c_str());
    }

    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    std::printf("# TIMING seconds=%.4f rows=%zu\n", seconds, rows.size());
    return 0;
}
