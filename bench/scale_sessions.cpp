/**
 * @file
 * scale_sessions: million-session scale tier for the sharded fast
 * analytic engine (core::ShardedFastSim) at shards ∈ {1, 2, 4, 8}.
 *
 * A synthetic 24-hour trace of short-lived notebook sessions (15-minute
 * lifetime, 3 cells each, arrival times hashed from the session id so
 * load is uniform across the day) is run through the fast engine at each
 * shard count. The fleet is fixed and the autoscaler is off, so every
 * shard slice commits its kernels outright and the merged totals are
 * identical at every shard count — the table doubles as a determinism
 * check for the sharded merge. The timed phase is the whole run
 * (partition + per-shard analytic pass + merge).
 *
 * Full tier: 1,000,000 sessions (3M cells) — the ROADMAP open-item-1
 * scale bar. Smoke tier (NBOS_BENCH_SMOKE=1, what `ctest -L scale` and
 * the CI bench gate run): 20,000 sessions, same shape.
 *
 * Output convention: table rows are fully deterministic and hashed by
 * bench/check_bench.py; wall-clock and memory figures go on `# TIMING`
 * lines, which the gate strips before hashing. Peak RSS comes from
 * getrusage(ru_maxrss), which is monotonic over the process lifetime —
 * shard counts run largest-allocation-first would mask each other, but
 * the figure is still reported per row for the operator's eyeball.
 */
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "core/sharded_fastsim.hpp"

namespace {

using namespace nbos;

/** splitmix64: spreads session start times uniformly over the day
 *  without an RNG stream (start time is a pure function of the id, so
 *  the trace is identical however it is built or partitioned). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The canonical scale workload: @p count sessions over a 24-hour day,
 *  each alive 15 minutes with three staggered cells (GPU, CPU, GPU)
 *  that never overlap. */
workload::Trace
scale_trace(std::int64_t count)
{
    workload::Trace trace;
    trace.name = "scale-" + std::to_string(count);
    trace.makespan = 24 * sim::kHour;
    const sim::Time lifetime = 15 * sim::kMinute;
    const auto window =
        static_cast<std::uint64_t>(trace.makespan - lifetime);
    trace.sessions.reserve(static_cast<std::size_t>(count));
    for (std::int64_t id = 0; id < count; ++id) {
        workload::SessionSpec session;
        session.id = id;
        session.start_time = static_cast<sim::Time>(
            mix64(static_cast<std::uint64_t>(id)) % window);
        session.end_time = session.start_time + lifetime;
        session.resources = cluster::ResourceSpec{4000, 16384, 1, 16.0};
        session.model = "scale";
        session.dataset = "synthetic";
        const struct
        {
            sim::Time offset;
            sim::Time duration;
            bool gpu;
        } cells[] = {
            {60 * sim::kSecond, 90 * sim::kSecond, true},
            {5 * sim::kMinute, 30 * sim::kSecond, false},
            {10 * sim::kMinute, 120 * sim::kSecond, true},
        };
        std::int32_t seq = 0;
        for (const auto& cell : cells) {
            workload::CellTask task;
            task.session = id;
            task.seq = seq++;
            task.submit_time = session.start_time + cell.offset;
            task.duration = cell.duration;
            task.is_gpu = cell.gpu;
            session.tasks.push_back(std::move(task));
        }
        trace.sessions.push_back(std::move(session));
    }
    return trace;
}

/** Peak RSS of this process in MB (Linux ru_maxrss is in KB). */
double
peak_rss_mb()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) {
        return 0.0;
    }
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleRunResult
{
    core::ExperimentResults results;
    std::uint64_t sim_events = 0;
    double seconds = 0.0;
};

ScaleRunResult
run_at(const workload::Trace& trace, std::int32_t shards)
{
    core::PlatformConfig config = core::PlatformConfig::prototype_defaults();
    config.policy = core::Policy::kNotebookOS;
    config.fast_mode = true;
    config.seed = bench::kSeed;
    // Fixed, ample fleet (2 sessions per GPU-hour of headroom at the
    // full tier): the bench measures engine throughput, not autoscaler
    // policy, and a capacity-unconstrained fleet is what makes the
    // merged totals shard-count-invariant.
    const std::int64_t sessions =
        static_cast<std::int64_t>(trace.sessions.size());
    const auto servers =
        std::max<std::int64_t>(64, (sessions / 500 + 7) / 8 * 8);
    config.scheduler.initial_servers = static_cast<std::int32_t>(servers);
    config.scheduler.enable_autoscaler = false;
    config.scheduler.shards = shards;
    config.scheduler.shard_parallel = true;

    const auto wall_start = std::chrono::steady_clock::now();
    core::ShardedFastSim sim(trace, config);
    ScaleRunResult run;
    run.results = sim.run();
    const auto wall_end = std::chrono::steady_clock::now();
    run.sim_events = sim.events_executed();
    run.seconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    return run;
}

}  // namespace

int
main()
{
    const bench::InjectedSlowdown slowdown_hook;
    const bool smoke = bench::smoke_mode();
    const std::int64_t sessions = smoke ? 20000 : 1000000;
    const workload::Trace trace = scale_trace(sessions);

    std::int64_t cells = 0;
    for (const workload::SessionSpec& session : trace.sessions) {
        cells += static_cast<std::int64_t>(session.tasks.size());
    }
    bench::banner(
        "scale_sessions: sharded fast engine at " +
        std::to_string(sessions) + " sessions / " + std::to_string(cells) +
        " cells over 24h" + (smoke ? " [smoke tier]" : ""));
    std::printf("%-8s %10s %10s %10s %9s %11s %11s %12s\n", "shards",
                "sessions", "tasks", "completed", "aborted", "migrations",
                "scale_outs", "sim_events");

    double base_seconds = 0.0;
    for (const std::int32_t shards : {1, 2, 4, 8}) {
        const ScaleRunResult run = run_at(trace, shards);
        const sched::SchedulerStats& stats = run.results.sched_stats;
        std::printf(
            "%-8d %10lld %10zu %10llu %9zu %11llu %11llu %12llu\n", shards,
            static_cast<long long>(sessions), run.results.tasks.size(),
            static_cast<unsigned long long>(stats.executions_completed),
            run.results.aborted_count(),
            static_cast<unsigned long long>(stats.migrations),
            static_cast<unsigned long long>(stats.scale_outs),
            static_cast<unsigned long long>(run.sim_events));
        if (shards == 1) {
            base_seconds = run.seconds;
        }
        // Wall-clock/memory lines: stripped from the CI gate's hash.
        // imbalance is max/mean of per-shard events (routing telemetry;
        // 0.0 for the monolithic shards=1 run, which has no shard view).
        std::printf("# TIMING shards=%d seconds=%.4f events_per_sec=%.0f "
                    "sessions_per_sec=%.0f speedup_vs_1=%.2f "
                    "peak_rss_mb=%.1f imbalance=%.3f\n",
                    shards, run.seconds,
                    run.seconds > 0.0
                        ? static_cast<double>(run.sim_events) / run.seconds
                        : 0.0,
                    run.seconds > 0.0
                        ? static_cast<double>(sessions) / run.seconds
                        : 0.0,
                    run.seconds > 0.0 && base_seconds > 0.0
                        ? base_seconds / run.seconds
                        : 0.0,
                    peak_rss_mb(), stats.shard_imbalance());
    }
    return 0;
}
