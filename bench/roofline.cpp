/**
 * @file
 * roofline: a CARM-style cache-aware characterization of the three hot
 * loops this codebase spends its cycles in, anchoring the cache-conscious
 * hot-path work (timer wheel, SoA scheduler tables, arena reuse) to
 * measured numbers instead of folklore.
 *
 * For each loop the bench prints a deterministic characterization row —
 * events, a bytes-touched-per-event model derived from the data-structure
 * layout, a structural-ops-per-event model, and the resulting arithmetic
 * intensity (ops/byte) — followed by `# TIMING` lines carrying the
 * measured ns/event, events/sec, and effective bandwidth. The table rows
 * are hashed by bench/check_bench.py; the TIMING lines are stripped
 * before hashing, so re-runs on different hardware only move the timings.
 *
 * Loops under study:
 *
 *  0. stream — a read+write triad over a buffer far larger than LLC,
 *     measuring the memory-bandwidth ceiling the other rows sit under.
 *  1. sim-dispatch — the Simulation event loop under the Raft election
 *     churn mix (heartbeats cancelling and rescheduling far-future
 *     election timers), the dominant loop of the prototype engine. Run
 *     twice in-binary, hierarchical timer wheel on vs off (pure binary
 *     heap), and the TIMING line reports the measured speedup; both runs
 *     must execute identical event counts (asserted, printed).
 *  2. window-scan — the per-shard scheduler window harvest: streaming the
 *     SoA SessionTable columns (id, weight, flag) versus chasing an
 *     equivalent std::map's nodes; the TIMING line reports the SoA-vs-map
 *     speedup.
 *  3. fast-tick — the fast analytic engine end to end through the
 *     unified run API (core::run, streamed, static_hash x 2 shards):
 *     events/sec over the whole engine, the figure the scale benches
 *     track.
 *
 * Full tier ~1-2 s; smoke tier (NBOS_BENCH_SMOKE=1, what `ctest -L
 * smoke` and the CI bench gate run) shrinks every loop, same shape.
 */
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/engine_api.hpp"
#include "sched/session_table.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace nbos;

double
elapsed_seconds(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         since)
        .count();
}

/** One deterministic characterization row. The bytes/ops columns are
 *  layout-derived models (documented per loop), not measurements — that
 *  is what keeps them bit-stable under the bench gate's hash. */
void
print_row(const char* loop, std::uint64_t events, double bytes_per_event,
          double ops_per_event)
{
    std::printf("%-14s %12llu %10.1f %8.1f %10.4f\n", loop,
                static_cast<unsigned long long>(events), bytes_per_event,
                ops_per_event,
                bytes_per_event > 0.0 ? ops_per_event / bytes_per_event
                                      : 0.0);
}

void
print_header()
{
    std::printf("%-14s %12s %10s %8s %10s\n", "loop", "events", "bytes/ev",
                "ops/ev", "ai");
}

/* ------------------------------------------------------------------ */
/* 0. stream: the bandwidth ceiling                                    */
/* ------------------------------------------------------------------ */

void
run_stream(bool smoke)
{
    // 64 MB (full) is far past any LLC here; the triad streams one read
    // and one write array of uint64.
    const std::size_t words = (smoke ? 8u : 64u) * 1024u * 1024u / 8u;
    const int passes = smoke ? 4 : 8;
    std::vector<std::uint64_t> src(words), dst(words);
    for (std::size_t i = 0; i < words; ++i) {
        src[i] = i * 0x9e3779b97f4a7c15ULL;
    }
    const auto wall_start = std::chrono::steady_clock::now();
    std::uint64_t checksum = 0;
    for (int pass = 0; pass < passes; ++pass) {
        for (std::size_t i = 0; i < words; ++i) {
            dst[i] = src[i] + static_cast<std::uint64_t>(pass);
        }
        checksum ^= dst[words - 1];
    }
    const double seconds = elapsed_seconds(wall_start);

    const std::uint64_t events =
        static_cast<std::uint64_t>(words) * static_cast<std::uint64_t>(passes);
    // Model: one 8-byte load + one 8-byte store per word, one add.
    print_row("stream", events, 16.0, 1.0);
    std::printf("# checksum stream=%016llx\n",
                static_cast<unsigned long long>(checksum));
    std::printf("# TIMING loop=stream seconds=%.4f gb_per_sec=%.2f\n",
                seconds,
                seconds > 0.0 ? static_cast<double>(events) * 16.0 /
                                    (seconds * 1e9)
                              : 0.0);
}

/* ------------------------------------------------------------------ */
/* 1. sim-dispatch: election churn, wheel on vs off                    */
/* ------------------------------------------------------------------ */

struct DispatchRun
{
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t elections_fired = 0;
    double seconds = 0.0;
};

/** The Raft election pattern: every kernel holds a far-future election
 *  timer that each heartbeat cancels and rebuilds, so almost every timer
 *  dies staged — the exact case the hierarchical wheel makes O(1). */
DispatchRun
run_dispatch(bool wheel, int kernels, int rounds)
{
    sim::Simulation::Options options;
    options.timer_wheel = wheel;
    options.recycle = nullptr;
    sim::Simulation simulation(options);
    sim::Rng rng(bench::kSeed);

    DispatchRun run;
    std::vector<sim::EventId> election(static_cast<std::size_t>(kernels), 0);
    const sim::Time heartbeat = 1 * sim::kSecond;

    const auto arm_election = [&](std::size_t k) {
        const sim::Time timeout = static_cast<sim::Time>(
            rng.uniform(2.0 * sim::kSecond, 4.0 * sim::kSecond));
        election[k] = simulation.schedule_after(timeout, [&run] {
            ++run.elections_fired;
        });
    };
    for (std::size_t k = 0; k < election.size(); ++k) {
        arm_election(k);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    for (int round = 1; round <= rounds; ++round) {
        const sim::Time tick = round * heartbeat;
        for (std::size_t k = 0; k < election.size(); ++k) {
            const sim::Time jitter =
                static_cast<sim::Time>(rng.uniform_int(0, sim::kMillisecond));
            simulation.schedule_at(tick + jitter, [&, k] {
                if (simulation.cancel(election[k])) {
                    ++run.cancelled;
                }
                arm_election(k);
            });
        }
        simulation.run_until(tick + heartbeat / 2);
    }
    // Drain: let the final round's election timers fire.
    simulation.run_until((rounds + 6) * heartbeat);
    run.seconds = elapsed_seconds(wall_start);
    run.executed = simulation.events_executed();
    return run;
}

void
run_dispatch_section(bool smoke)
{
    const int kernels = smoke ? 1000 : 10000;
    const int rounds = smoke ? 10 : 40;

    const DispatchRun heap_run = run_dispatch(false, kernels, rounds);
    const DispatchRun wheel_run = run_dispatch(true, kernels, rounds);

    // The wheel is a staging structure in front of the same heap order:
    // both variants must execute the identical event sequence.
    const bool identical = heap_run.executed == wheel_run.executed &&
                           heap_run.cancelled == wheel_run.cancelled &&
                           heap_run.elections_fired ==
                               wheel_run.elections_fired;

    // Model (per executed event, binary-heap variant): the popped ticket
    // plus a sift-down touching 2 tickets per level of a ~kernels-deep
    // heap (24 B tickets), one 64 B slot write-back, and the callback's
    // own cache line; comparisons dominate the structural ops.
    double levels = 1.0;
    for (int n = kernels; n > 1; n /= 2) {
        levels += 1.0;
    }
    const double ticket_bytes = 24.0;
    const double slot_bytes = 64.0;
    const double bytes_per_event =
        ticket_bytes * (1.0 + 2.0 * levels) + slot_bytes;
    const double ops_per_event = 2.0 * levels + 8.0;

    print_row("sim-dispatch", wheel_run.executed, bytes_per_event,
              ops_per_event);
    std::printf("# sim-dispatch cancelled=%llu elections_fired=%llu "
                "wheel_heap_identical=%s\n",
                static_cast<unsigned long long>(wheel_run.cancelled),
                static_cast<unsigned long long>(wheel_run.elections_fired),
                identical ? "yes" : "NO");
    const double heap_rate =
        heap_run.seconds > 0.0
            ? static_cast<double>(heap_run.executed) / heap_run.seconds
            : 0.0;
    const double wheel_rate =
        wheel_run.seconds > 0.0
            ? static_cast<double>(wheel_run.executed) / wheel_run.seconds
            : 0.0;
    std::printf("# TIMING loop=sim-dispatch heap_seconds=%.4f "
                "wheel_seconds=%.4f heap_events_per_sec=%.0f "
                "wheel_events_per_sec=%.0f wheel_speedup=%.2fx\n",
                heap_run.seconds, wheel_run.seconds, heap_rate, wheel_rate,
                heap_rate > 0.0 ? wheel_rate / heap_rate : 0.0);
}

/* ------------------------------------------------------------------ */
/* 2. window-scan: SoA columns vs map nodes                            */
/* ------------------------------------------------------------------ */

struct ScanResult
{
    std::uint64_t weight_sum = 0;
    std::uint64_t live = 0;
    double seconds = 0.0;
};

void
run_window_scan(bool smoke)
{
    const std::int32_t rows = smoke ? 4096 : 131072;
    const int scans = smoke ? 64 : 256;
    constexpr std::uint8_t kEnded = 4;  // sched::SchedulerShard's flag bit

    struct Cold
    {
        std::int64_t kernel = -1;
        std::uint64_t pad[3] = {0, 0, 0};
    };

    // The SoA table under test, and the layout it replaced: one map node
    // per session with the hot fields embedded next to the cold ones.
    sched::SessionTable<Cold> table;
    struct MapRecord
    {
        std::uint64_t weight = 0;
        std::uint8_t flags = 0;
        Cold cold{};
    };
    std::map<std::int64_t, MapRecord> map_table;

    sim::Rng rng(bench::kSeed);
    for (std::int32_t i = 0; i < rows; ++i) {
        const std::int64_t id = i * 7 + 1;
        const std::int32_t row = table.insert(id);
        const std::uint64_t weight =
            static_cast<std::uint64_t>(rng.uniform_int(0, 16));
        const std::uint8_t flags = rng.bernoulli(0.125) ? kEnded : 0;
        table.weight_at(row) = weight;
        table.flags_at(row) = flags;
        map_table.emplace(id, MapRecord{weight, flags, {}});
    }

    const auto scan_soa = [&] {
        ScanResult result;
        const auto wall_start = std::chrono::steady_clock::now();
        const auto& flags = table.flags();
        const auto& weights = table.weights();
        for (int pass = 0; pass < scans; ++pass) {
            for (std::size_t i = 0; i < weights.size(); ++i) {
                if ((flags[i] & kEnded) == 0) {
                    ++result.live;
                }
                result.weight_sum += weights[i];
            }
        }
        result.seconds = elapsed_seconds(wall_start);
        return result;
    };
    const auto scan_map = [&] {
        ScanResult result;
        const auto wall_start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < scans; ++pass) {
            for (const auto& [id, record] : map_table) {
                if ((record.flags & kEnded) == 0) {
                    ++result.live;
                }
                result.weight_sum += record.weight;
            }
        }
        result.seconds = elapsed_seconds(wall_start);
        return result;
    };

    const ScanResult map_result = scan_map();
    const ScanResult soa_result = scan_soa();
    const bool identical =
        map_result.weight_sum == soa_result.weight_sum &&
        map_result.live == soa_result.live;

    const std::uint64_t events =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(scans);
    // Model (per row, SoA): 8 B weight + 1 B flag streamed from two dense
    // columns; flag test, weight add, live increment.
    print_row("window-scan", events, 9.0, 3.0);
    std::printf("# window-scan weight_sum=%llu live=%llu "
                "soa_map_identical=%s\n",
                static_cast<unsigned long long>(soa_result.weight_sum),
                static_cast<unsigned long long>(soa_result.live),
                identical ? "yes" : "NO");
    const double soa_rate =
        soa_result.seconds > 0.0
            ? static_cast<double>(events) / soa_result.seconds
            : 0.0;
    std::printf("# TIMING loop=window-scan map_seconds=%.4f "
                "soa_seconds=%.4f rows_per_sec=%.0f gb_per_sec=%.2f "
                "soa_speedup=%.2fx\n",
                map_result.seconds, soa_result.seconds, soa_rate,
                soa_rate * 9.0 / 1e9,
                soa_result.seconds > 0.0
                    ? map_result.seconds / soa_result.seconds
                    : 0.0);
}

/* ------------------------------------------------------------------ */
/* 3. fast-tick: the analytic engine end to end                        */
/* ------------------------------------------------------------------ */

void
run_fast_tick(bool smoke)
{
    workload::GeneratorOptions options;
    options.makespan = smoke ? 6 * sim::kHour : 24 * sim::kHour;
    options.max_sessions = smoke ? 300 : 2000;
    options.arrival_rate_scale = 8.0;

    const auto profile = workload::ProfileRegistry::instance().create(
        workload::kProfileDiurnal);

    core::RunRequest request;
    request.engine = core::kEngineFast;
    request.config = core::PlatformConfig::prototype_defaults();
    request.config.scheduler.shard_parallel = false;
    request.seed = bench::kSeed;
    request.shards = 2;
    request.routing = sched::RoutingPolicyKind::kStaticHash;

    const auto wall_start = std::chrono::steady_clock::now();
    const auto source = profile->open(bench::kSeed, options);
    request.source = source.get();
    const core::RunResponse run = core::run(request);
    const double seconds = elapsed_seconds(wall_start);

    // Model (per simulation event): one 24 B ticket + 64 B slot through
    // the event loop, one ~96 B kernel-table row, one server probe (~64 B
    // line); ~40 structural ops covering the placement arithmetic.
    print_row("fast-tick", run.events_executed, 248.0, 40.0);
    std::printf("# fast-tick sessions=%d tasks=%zu completed=%llu\n",
                options.max_sessions, run.results.tasks.size(),
                static_cast<unsigned long long>(
                    run.results.sched_stats.executions_completed));
    std::printf("# TIMING loop=fast-tick seconds=%.4f "
                "events_per_sec=%.0f\n",
                seconds,
                seconds > 0.0
                    ? static_cast<double>(run.events_executed) / seconds
                    : 0.0);
}

}  // namespace

int
main()
{
    const bench::InjectedSlowdown slowdown_hook;
    const bool smoke = bench::smoke_mode();
    bench::banner(std::string("roofline: hot-loop characterization") +
                  (smoke ? " [smoke tier]" : ""));
    print_header();
    run_stream(smoke);
    run_dispatch_section(smoke);
    run_window_scan(smoke);
    run_fast_tick(smoke);
    return 0;
}
