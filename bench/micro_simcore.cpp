/**
 * @file
 * Micro-benchmarks (google-benchmark) for the simulation substrate: event
 * queue throughput, RNG sampling, percentile extraction, and NbLang
 * parse/execute cost (these bound how fast whole-trace experiments run).
 */
#include <benchmark/benchmark.h>

#include <functional>

#include "metrics/percentiles.hpp"
#include "nblang/interpreter.hpp"
#include "sim/rng.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace nbos;

void
BM_EventQueueThroughput(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation simulation;
        const int events = static_cast<int>(state.range(0));
        for (int i = 0; i < events; ++i) {
            simulation.schedule_at(i, [] {});
        }
        simulation.run();
        benchmark::DoNotOptimize(simulation.events_executed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void
BM_SelfSchedulingChain(benchmark::State& state)
{
    for (auto _ : state) {
        sim::Simulation simulation;
        int remaining = static_cast<int>(state.range(0));
        std::function<void()> hop = [&] {
            if (--remaining > 0) {
                simulation.schedule_after(1, hop);
            }
        };
        simulation.schedule_at(0, hop);
        simulation.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfSchedulingChain)->Arg(10000);

void
BM_RngLognormal(benchmark::State& state)
{
    sim::Rng rng(11);
    double sum = 0.0;
    for (auto _ : state) {
        sum += rng.lognormal(4.787, 1.7);
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngLognormal);

void
BM_PercentileExtraction(benchmark::State& state)
{
    sim::Rng rng(13);
    metrics::Percentiles dist;
    for (int i = 0; i < state.range(0); ++i) {
        dist.add(rng.lognormal(4.0, 1.5));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(dist.percentile(99));
        dist.add(1.0);  // force re-sort each iteration
    }
}
BENCHMARK(BM_PercentileExtraction)->Arg(100000);

void
BM_NbLangParseExecute(benchmark::State& state)
{
    const std::string cell =
        "step = step + 1\n"
        "loss_7 = 0.125\n"
        "gpu_compute(120.0, vram_mb=2048)\n"
        "weights = tensor(45.0)\n";
    for (auto _ : state) {
        nblang::Namespace ns;
        ns["step"] = nblang::Value::number_of(6);
        const auto effect = nblang::execute_source(cell, ns);
        benchmark::DoNotOptimize(effect.gpu_seconds);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NbLangParseExecute);

}  // namespace

BENCHMARK_MAIN();
