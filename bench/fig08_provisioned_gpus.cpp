/**
 * @file
 * Fig. 8: provisioned-GPU timelines for Batch, NotebookOS, and
 * NotebookOS (LCP) against the Oracle and Reservation references, plus
 * the headline GPU-hours-saved numbers (§5.3.1: NotebookOS saves
 * 1,187.66 GPU-hours and LCP 1,662.53 vs Reservation; LCP provisions
 * ~23.5% fewer GPUs than NotebookOS but ~18% more than Batch).
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::excerpt_trace();

    const auto oracle = core::oracle_gpu_series(trace);
    // The four policies run concurrently on the ExperimentRunner;
    // results come back in request order.
    const auto results =
        bench::run_policies(trace, {{core::Policy::kReservation},
                                    {core::Policy::kBatch},
                                    {core::Policy::kNotebookOS},
                                    {core::Policy::kNotebookOSLCP}});
    const auto& reservation = results[0];
    const auto& batch = results[1];
    const auto& nbos = results[2];
    const auto& lcp = results[3];

    bench::banner("Fig. 8: provisioned GPUs over the 17.5 h excerpt");
    std::printf("%-6s %-8s %-12s %-8s %-8s %-8s\n", "hour", "oracle",
                "reservation", "batch", "nbos", "lcp");
    for (double hour = 0.0; hour <= 17.5; hour += 0.5) {
        const sim::Time t = sim::from_seconds(hour * 3600.0);
        std::printf("%-6.1f %-8.0f %-12.0f %-8.0f %-8.0f %-8.0f\n", hour,
                    oracle.value_at(t),
                    reservation.provisioned_gpus.value_at(t),
                    batch.provisioned_gpus.value_at(t),
                    nbos.provisioned_gpus.value_at(t),
                    lcp.provisioned_gpus.value_at(t));
    }

    const double res_h = reservation.gpu_hours_provisioned();
    const double batch_h = batch.gpu_hours_provisioned();
    const double nbos_h = nbos.gpu_hours_provisioned();
    const double lcp_h = lcp.gpu_hours_provisioned();
    const double oracle_h = oracle.integrate_hours(0, trace.makespan);

    bench::banner("GPU-hours over the excerpt");
    std::printf("%-14s %10s %16s %18s\n", "policy", "GPU-hours",
                "saved-vs-resv", "over-provisioned");
    auto row = [&](const char* name, double hours) {
        std::printf("%-14s %10.1f %16.1f %18.1f\n", name, hours,
                    res_h - hours, hours - oracle_h);
    };
    std::printf("%-14s %10.1f\n", "oracle", oracle_h);
    row("reservation", res_h);
    row("batch", batch_h);
    row("notebookos", nbos_h);
    row("nbos-lcp", lcp_h);

    std::printf("\npaper: NotebookOS saved 1187.66 GPU-hours and LCP "
                "1662.53 vs Reservation;\n"
                "       LCP provisioned 23.52%% fewer GPUs than NotebookOS "
                "and 18.18%% more than Batch.\n");
    std::printf("measured: NotebookOS saved %.1f, LCP saved %.1f;\n"
                "          LCP provisioned %.1f%% fewer than NotebookOS, "
                "%.1f%% more than Batch.\n",
                res_h - nbos_h, res_h - lcp_h,
                100.0 * (nbos_h - lcp_h) / nbos_h,
                100.0 * (lcp_h - batch_h) / batch_h);
    return 0;
}
