/**
 * @file
 * Fig. 20 (Appendix E.1): active user sessions and active user-submitted
 * trainings over the full 90-day summer portion of the trace.
 */
#include "bench_common.hpp"

int
main()
{
    using namespace nbos;
    const auto trace = bench::summer_trace();
    const auto nbos =
        bench::run_policy(core::Policy::kNotebookOS, trace, /*fast=*/true);

    const auto sessions = core::active_sessions_series(trace);
    const auto trainings = nbos.active_trainings_series();

    bench::banner("Fig. 20: sessions & trainings over the 90-day summer");
    std::printf("%-6s %-10s %-10s\n", "day", "trainings", "sessions");
    for (int day = 0; day <= 90; day += 3) {
        const sim::Time t = day * sim::kDay;
        std::printf("%-6d %-10.0f %-10.0f\n", day, trainings.value_at(t),
                    sessions.value_at(t));
    }

    // Monthly means (paper: sessions mean 115/233/379 for June/July/Aug;
    // trainings mean 31/65/105 — our trace is scaled down ~3x, so shapes
    // rather than magnitudes should match).
    bench::banner("Monthly summary");
    const char* months[3] = {"month-1", "month-2", "month-3"};
    for (int m = 0; m < 3; ++m) {
        const sim::Time t0 = m * 30 * sim::kDay;
        const sim::Time t1 = (m + 1) * 30 * sim::kDay;
        std::printf("%-8s sessions mean=%-8.1f trainings mean=%-8.2f\n",
                    months[m], sessions.mean_over(t0, t1),
                    trainings.mean_over(t0, t1));
    }
    std::printf("\nmax sessions=%.0f; max concurrent trainings=%.0f "
                "(growth shape as in Fig. 20)\n",
                sessions.max_value(), trainings.max_value());
    return 0;
}
