/**
 * @file
 * Tests for NbLang: lexer, parser, interpreter, AST analysis, catalog.
 */
#include <gtest/gtest.h>

#include "nblang/analysis.hpp"
#include "nblang/catalog.hpp"
#include "nblang/interpreter.hpp"
#include "nblang/lexer.hpp"
#include "nblang/parser.hpp"

namespace nbos::nblang {
namespace {

TEST(LexerTest, TokenizesAssignment)
{
    const auto tokens = tokenize("x = 42");
    ASSERT_GE(tokens.size(), 4u);
    EXPECT_EQ(tokens[0].type, TokenType::kIdent);
    EXPECT_EQ(tokens[0].text, "x");
    EXPECT_EQ(tokens[1].type, TokenType::kAssign);
    EXPECT_EQ(tokens[2].type, TokenType::kNumber);
    EXPECT_DOUBLE_EQ(tokens[2].number, 42.0);
}

TEST(LexerTest, RecognizesAugmentedOperators)
{
    const auto tokens = tokenize("x += 1; y -= 2; z *= 3");
    EXPECT_EQ(tokens[1].type, TokenType::kPlusAssign);
    EXPECT_EQ(tokens[5].type, TokenType::kMinusAssign);
    EXPECT_EQ(tokens[9].type, TokenType::kStarAssign);
}

TEST(LexerTest, StringsBothQuoteStyles)
{
    const auto tokens = tokenize("a = \"hi\"\nb = 'there'");
    EXPECT_EQ(tokens[2].type, TokenType::kString);
    EXPECT_EQ(tokens[2].text, "hi");
    EXPECT_EQ(tokens[6].text, "there");
}

TEST(LexerTest, CommentsIgnored)
{
    const auto tokens = tokenize("x = 1  # the answer\n# whole line\ny = 2");
    int idents = 0;
    for (const auto& t : tokens) {
        if (t.type == TokenType::kIdent) {
            ++idents;
        }
    }
    EXPECT_EQ(idents, 2);
}

TEST(LexerTest, ScientificNotation)
{
    const auto tokens = tokenize("x = 1.5e3");
    EXPECT_DOUBLE_EQ(tokens[2].number, 1500.0);
}

TEST(LexerTest, DelKeyword)
{
    const auto tokens = tokenize("del x");
    EXPECT_EQ(tokens[0].type, TokenType::kDel);
}

TEST(LexerTest, UnterminatedStringThrows)
{
    EXPECT_THROW(tokenize("x = \"oops"), Error);
}

TEST(LexerTest, UnknownCharacterThrows)
{
    EXPECT_THROW(tokenize("x = 1 @ 2"), Error);
}

TEST(LexerTest, LineNumbersTracked)
{
    const auto tokens = tokenize("a = 1\nb = 2\nc = 3");
    EXPECT_EQ(tokens[0].line, 1u);
    EXPECT_EQ(tokens[4].line, 2u);
    EXPECT_EQ(tokens[8].line, 3u);
}

TEST(ParserTest, ParsesMultipleStatements)
{
    const Program program = parse("x = 1\ny = 2\nprint(x)");
    EXPECT_EQ(program.statements.size(), 3u);
}

TEST(ParserTest, EmptySourceYieldsEmptyProgram)
{
    EXPECT_TRUE(parse("").statements.empty());
    EXPECT_TRUE(parse("\n\n  \n").statements.empty());
    EXPECT_TRUE(parse("# only a comment\n").statements.empty());
}

TEST(ParserTest, OperatorPrecedence)
{
    Namespace ns;
    execute_source("x = 2 + 3 * 4", ns);
    EXPECT_DOUBLE_EQ(ns["x"].number, 14.0);
    execute_source("y = (2 + 3) * 4", ns);
    EXPECT_DOUBLE_EQ(ns["y"].number, 20.0);
}

TEST(ParserTest, KeywordArguments)
{
    const Program program = parse("gpu_compute(5, vram_mb=2048)");
    ASSERT_EQ(program.statements.size(), 1u);
    const auto& stmt =
        std::get<ExprStmt>(program.statements[0].node);
    const auto& call = std::get<CallExpr>(stmt.expr->node);
    EXPECT_EQ(call.args.size(), 1u);
    ASSERT_EQ(call.kwargs.size(), 1u);
    EXPECT_EQ(call.kwargs[0].first, "vram_mb");
}

TEST(ParserTest, MissingParenThrows)
{
    EXPECT_THROW(parse("x = (1 + 2"), Error);
    EXPECT_THROW(parse("print(1, 2"), Error);
}

TEST(ParserTest, DanglingOperatorThrows)
{
    EXPECT_THROW(parse("x = 1 +"), Error);
}

TEST(InterpreterTest, Arithmetic)
{
    Namespace ns;
    execute_source("a = 10\nb = a / 4\nc = -b", ns);
    EXPECT_DOUBLE_EQ(ns["b"].number, 2.5);
    EXPECT_DOUBLE_EQ(ns["c"].number, -2.5);
}

TEST(InterpreterTest, DivisionByZeroThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("x = 1 / 0", ns), Error);
}

TEST(InterpreterTest, UndefinedVariableThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("x = ghost + 1", ns), Error);
}

TEST(InterpreterTest, StringConcat)
{
    Namespace ns;
    execute_source("s = \"foo\" + \"bar\"", ns);
    EXPECT_EQ(ns["s"].text, "foobar");
}

TEST(InterpreterTest, AugmentedAssignment)
{
    Namespace ns;
    execute_source("x = 5\nx += 3\nx *= 2\nx -= 1", ns);
    EXPECT_DOUBLE_EQ(ns["x"].number, 15.0);
}

TEST(InterpreterTest, AugmentedAssignmentToUndefinedThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("x += 1", ns), Error);
}

TEST(InterpreterTest, DelRemovesVariable)
{
    Namespace ns;
    const Effect effect = execute_source("x = 1\ndel x", ns);
    EXPECT_EQ(ns.count("x"), 0u);
    ASSERT_EQ(effect.deleted.size(), 1u);
    EXPECT_EQ(effect.deleted[0], "x");
}

TEST(InterpreterTest, DelUndefinedThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("del ghost", ns), Error);
}

TEST(InterpreterTest, TensorCreation)
{
    Namespace ns;
    execute_source("t = tensor(256)", ns);
    EXPECT_EQ(ns["t"].kind, ValueKind::kTensor);
    EXPECT_EQ(ns["t"].size_bytes, 256ULL * 1024 * 1024);
}

TEST(InterpreterTest, TensorArithmeticKeepsFootprint)
{
    Namespace ns;
    execute_source("a = tensor(100)\nb = tensor(50)\nc = a + b\nd = a * 2",
                   ns);
    EXPECT_EQ(ns["c"].size_bytes, 100ULL * 1024 * 1024);
    EXPECT_EQ(ns["d"].size_bytes, 100ULL * 1024 * 1024);
}

TEST(InterpreterTest, LoadModelFromCatalog)
{
    Namespace ns;
    execute_source("m = load_model(\"resnet18\")", ns);
    EXPECT_EQ(ns["m"].kind, ValueKind::kModel);
    EXPECT_EQ(ns["m"].text, "resnet18");
    EXPECT_EQ(ns["m"].size_bytes, 45ULL * 1024 * 1024);
}

TEST(InterpreterTest, UnknownModelThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("m = load_model(\"alexnet9000\")", ns),
                 Error);
}

TEST(InterpreterTest, TrainProducesGpuEffect)
{
    Namespace ns;
    const Effect effect = execute_source(
        "m = load_model(\"resnet18\")\n"
        "d = load_dataset(\"cifar10\")\n"
        "m = train(m, d, epochs=2)",
        ns);
    EXPECT_TRUE(effect.used_gpu());
    // resnet18 compute factor 1.0 * cifar10 epoch 40 s * 2 epochs.
    EXPECT_DOUBLE_EQ(effect.gpu_seconds, 80.0);
    EXPECT_GT(effect.gpu_bytes, 0u);
    // One version bump per assignment of the (re)trained model.
    EXPECT_EQ(ns["m"].version, 1u);
}

TEST(InterpreterTest, TrainTypeMismatchThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("x = train(1, 2)", ns), Error);
}

TEST(InterpreterTest, EvaluateReturnsAccuracy)
{
    Namespace ns;
    execute_source(
        "m = load_model(\"bert\")\n"
        "d = load_dataset(\"cola\")\n"
        "acc = evaluate(m, d)",
        ns);
    EXPECT_EQ(ns["acc"].kind, ValueKind::kNumber);
    EXPECT_GT(ns["acc"].number, 0.0);
    EXPECT_LE(ns["acc"].number, 1.0);
}

TEST(InterpreterTest, GpuComputeAccumulates)
{
    Namespace ns;
    const Effect effect =
        execute_source("gpu_compute(10)\ngpu_compute(5, vram_mb=4096)", ns);
    EXPECT_DOUBLE_EQ(effect.gpu_seconds, 15.0);
    EXPECT_EQ(effect.gpu_bytes, 4096ULL * 1024 * 1024);
}

TEST(InterpreterTest, CpuComputeSeparateFromGpu)
{
    Namespace ns;
    const Effect effect = execute_source("cpu_compute(30)\nsleep(15)", ns);
    EXPECT_DOUBLE_EQ(effect.cpu_seconds, 45.0);
    EXPECT_FALSE(effect.used_gpu());
}

TEST(InterpreterTest, PrintCapturesOutput)
{
    Namespace ns;
    const Effect effect =
        execute_source("x = 3\nprint(\"val\", x)\nprint(x * 2)", ns);
    EXPECT_EQ(effect.output, "val 3\n6\n");
}

TEST(InterpreterTest, SizeMbBuiltin)
{
    Namespace ns;
    execute_source("t = tensor(128)\ns = size_mb(t)", ns);
    EXPECT_DOUBLE_EQ(ns["s"].number, 128.0);
}

TEST(InterpreterTest, AssignedNamesTracked)
{
    Namespace ns;
    const Effect effect = execute_source("a = 1\nb = 2\na = 3", ns);
    ASSERT_EQ(effect.assigned.size(), 3u);
    EXPECT_EQ(effect.assigned[0], "a");
    EXPECT_EQ(effect.assigned[1], "b");
    EXPECT_EQ(effect.assigned[2], "a");
}

TEST(InterpreterTest, VersionBumpsOnReassign)
{
    Namespace ns;
    execute_source("x = 1", ns);
    EXPECT_EQ(ns["x"].version, 0u);
    execute_source("x = 2", ns);
    EXPECT_EQ(ns["x"].version, 1u);
}

TEST(InterpreterTest, NamespacePersistsAcrossCells)
{
    Namespace ns;
    execute_source("counter = 0", ns);
    execute_source("counter = counter + 1", ns);
    execute_source("counter = counter + 1", ns);
    EXPECT_DOUBLE_EQ(ns["counter"].number, 2.0);
}

TEST(InterpreterTest, UnknownFunctionThrows)
{
    Namespace ns;
    EXPECT_THROW(execute_source("mystery(1)", ns), Error);
}

TEST(AnalysisTest, AssignedAndReferencedSets)
{
    const CellAnalysis analysis =
        analyze_source("y = x + 1\nz = y * 2\nprint(w)");
    EXPECT_TRUE(analysis.assigned.count("y"));
    EXPECT_TRUE(analysis.assigned.count("z"));
    EXPECT_TRUE(analysis.referenced.count("x"));
    EXPECT_TRUE(analysis.referenced.count("w"));
    // y is bound before its use in the second statement.
    EXPECT_FALSE(analysis.referenced.count("y"));
}

TEST(AnalysisTest, AugmentedAssignmentReadsTarget)
{
    const CellAnalysis analysis = analyze_source("x += 1");
    EXPECT_TRUE(analysis.assigned.count("x"));
    EXPECT_TRUE(analysis.referenced.count("x"));
}

TEST(AnalysisTest, DeletedTracked)
{
    const CellAnalysis analysis = analyze_source("x = 1\ndel x");
    EXPECT_TRUE(analysis.deleted.count("x"));
    EXPECT_FALSE(analysis.assigned.count("x"));
}

TEST(AnalysisTest, GpuCallDetection)
{
    EXPECT_TRUE(analyze_source("gpu_compute(5)").calls_gpu);
    EXPECT_TRUE(analyze_source("m = train(m, d)").calls_gpu);
    EXPECT_TRUE(analyze_source("a = evaluate(m, d)").calls_gpu);
    EXPECT_FALSE(analyze_source("x = 1 + 2\ncpu_compute(9)").calls_gpu);
}

TEST(AnalysisTest, KwargExpressionsVisited)
{
    const CellAnalysis analysis =
        analyze_source("gpu_compute(5, vram_mb=budget)");
    EXPECT_TRUE(analysis.referenced.count("budget"));
}

TEST(CatalogTest, TableOneComplete)
{
    EXPECT_EQ(model_catalog().size(), 6u);
    EXPECT_EQ(dataset_catalog().size(), 6u);
}

TEST(CatalogTest, DomainsPartitionTableOne)
{
    // Table 1: CV has 3 models/3 datasets, NLP 2/2, Speech 1/1.
    EXPECT_EQ(models_in_domain(Domain::kComputerVision).size(), 3u);
    EXPECT_EQ(datasets_in_domain(Domain::kComputerVision).size(), 3u);
    EXPECT_EQ(models_in_domain(Domain::kNaturalLanguage).size(), 2u);
    EXPECT_EQ(datasets_in_domain(Domain::kNaturalLanguage).size(), 2u);
    EXPECT_EQ(models_in_domain(Domain::kSpeechRecognition).size(), 1u);
    EXPECT_EQ(datasets_in_domain(Domain::kSpeechRecognition).size(), 1u);
}

TEST(CatalogTest, LookupsWork)
{
    EXPECT_TRUE(find_model("gpt2").has_value());
    EXPECT_FALSE(find_model("nonexistent").has_value());
    EXPECT_TRUE(find_dataset("librispeech").has_value());
    EXPECT_FALSE(find_dataset("nonexistent").has_value());
}

TEST(CatalogTest, AllEntriesHavePositiveSizes)
{
    for (const auto& model : model_catalog()) {
        EXPECT_GT(model.param_bytes, 0u) << model.name;
        EXPECT_GT(model.compute_factor, 0.0) << model.name;
    }
    for (const auto& dataset : dataset_catalog()) {
        EXPECT_GT(dataset.bytes, 0u) << dataset.name;
        EXPECT_GT(dataset.epoch_gpu_seconds, 0.0) << dataset.name;
    }
}

/** Round-trip property: every catalog model trains on every same-domain
 *  dataset without error. */
class CatalogPairProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CatalogPairProperty, SameDomainPairsTrain)
{
    const auto& model = model_catalog()[std::get<0>(GetParam())];
    const auto& dataset = dataset_catalog()[std::get<1>(GetParam())];
    if (model.domain != dataset.domain) {
        GTEST_SKIP() << "cross-domain pair";
    }
    Namespace ns;
    const Effect effect = execute_source(
        "m = load_model(\"" + model.name + "\")\n" +
            "d = load_dataset(\"" + dataset.name + "\")\n" +
            "m = train(m, d)",
        ns);
    EXPECT_GT(effect.gpu_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Pairs, CatalogPairProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

}  // namespace
}  // namespace nbos::nblang
