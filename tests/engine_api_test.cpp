/**
 * @file
 * Tests for the unified engine-run API (core/engine_api.hpp): request
 * validation, exact legacy error strings, the adapter equivalences
 * (Platform::run / ExperimentRunner / the streamed drivers all produce
 * byte-identical results through core::run), and the per-run override
 * fields.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/engine_api.hpp"
#include "core/protosim.hpp"
#include "core/sharded_fastsim.hpp"
#include "harness.hpp"
#include "workload/session_source.hpp"

namespace nbos::core {
namespace {

/** Run @p request and return the what() of the expected throw. */
std::string
run_error(const RunRequest& request)
{
    try {
        run(request);
    } catch (const std::invalid_argument& error) {
        return error.what();
    }
    ADD_FAILURE() << "core::run did not throw";
    return {};
}

TEST(RunRequestValidationTest, RequiresExactlyOneInput)
{
    const auto trace = test::tiny_trace();
    workload::TraceSessionSource source(trace);

    RunRequest neither;
    EXPECT_EQ(run_error(neither),
              "RunRequest: set exactly one of trace and source");

    RunRequest both;
    both.trace = &trace;
    both.source = &source;
    EXPECT_EQ(run_error(both),
              "RunRequest: set exactly one of trace and source");
}

TEST(RunRequestValidationTest, ModeMustMatchTheInputKind)
{
    const auto trace = test::tiny_trace();
    workload::TraceSessionSource source(trace);

    RunRequest streamed_without_source;
    streamed_without_source.trace = &trace;
    streamed_without_source.mode = RunMode::kStreamed;
    EXPECT_EQ(run_error(streamed_without_source),
              "RunRequest: streamed mode requires a SessionSource");

    RunRequest materialized_without_trace;
    materialized_without_trace.source = &source;
    materialized_without_trace.mode = RunMode::kMaterialized;
    EXPECT_EQ(run_error(materialized_without_trace),
              "RunRequest: materialized mode requires a trace");
}

TEST(RunRequestValidationTest, UnknownEngineKeepsTheLegacyMessage)
{
    const auto trace = test::tiny_trace();
    RunRequest request;
    request.engine = "no-such-engine";
    request.trace = &trace;
    // The exact string the ExperimentRunner has always surfaced.
    EXPECT_EQ(run_error(request), "unknown engine 'no-such-engine'");
}

TEST(RunRequestValidationTest, InvalidConfigKeepsThePlatformMessage)
{
    const auto trace = test::tiny_trace();
    RunRequest request;
    request.trace = &trace;
    request.config = test::platform_config(Policy::kReservation);
    request.config.fast_mode = true;  // baselines have no fast engine
    const std::string error = run_error(request);
    EXPECT_EQ(error.rfind("PlatformConfig: ", 0), 0u) << error;

    // The same inconsistency through a *named* engine is repaired from
    // the engine (runner semantics), so it runs instead of throwing.
    request.engine = kEngineReservation;
    EXPECT_NO_THROW(run(request));
}

TEST(RunRequestValidationTest, OnlyNotebookEnginesStream)
{
    const auto trace = test::tiny_trace();
    workload::TraceSessionSource source(trace);
    RunRequest request;
    request.engine = kEngineBatch;
    request.source = &source;
    EXPECT_EQ(run_error(request),
              "engine 'batch' has no streamed driver");
}

TEST(RunRequestValidationTest, ChaosOverrideIsValidatedAgainstTheEngine)
{
    const auto trace = test::tiny_trace();
    RunRequest request;
    request.engine = kEngineFast;
    request.trace = &trace;
    chaos::ChaosConfig chaos;
    chaos.enabled = true;
    request.chaos = chaos;
    // chaos + the analytic engine is the config error validate_config
    // already rejects; the override must flow through that check.
    const std::string error = run_error(request);
    EXPECT_EQ(error.rfind("PlatformConfig: ", 0), 0u) << error;
    EXPECT_NE(error.find("chaos"), std::string::npos) << error;
}

TEST(RunApiEquivalenceTest, MatchesPlatformRunForDerivedEngines)
{
    const auto trace = test::tiny_trace();
    for (const bool fast : {false, true}) {
        const PlatformConfig config =
            test::platform_config(Policy::kNotebookOS, 17, fast);
        const ExperimentResults legacy = Platform(config).run(trace);

        RunRequest request;
        request.config = config;
        request.trace = &trace;
        const RunResponse response = run(request);
        test::expect_results_identical(legacy, response.results);
    }
}

TEST(RunApiEquivalenceTest, MatchesTheRunnerPathForNamedEngines)
{
    const auto trace = test::tiny_trace();
    ExperimentSpec spec;
    spec.engine = kEngineLcp;
    spec.trace = &trace;
    spec.config = PlatformConfig::prototype_defaults();
    spec.seed = 29;
    const auto outcomes = ExperimentRunner().run({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok) << outcomes[0].error;

    RunRequest request;
    request.engine = kEngineLcp;
    request.trace = &trace;
    request.config = PlatformConfig::prototype_defaults();
    request.seed = 29;
    const RunResponse response = run(request);
    test::expect_results_identical(outcomes[0].results, response.results);
}

TEST(RunApiEquivalenceTest, StreamedFastMatchesTheLegacyEntryPoint)
{
    const auto trace = test::tiny_trace();
    PlatformConfig config =
        test::platform_config(Policy::kNotebookOS, 17, true);
    config.scheduler.shards = 2;
    config.scheduler.routing = sched::RoutingPolicyKind::kRebalance;

    workload::TraceSessionSource legacy_source(trace);
    const StreamedFastRun legacy = run_fast_streamed(legacy_source, config);

    workload::TraceSessionSource source(trace);
    RunRequest request;
    request.engine = kEngineFast;
    request.config = PlatformConfig::prototype_defaults();
    request.config.scheduler.shard_parallel =
        config.scheduler.shard_parallel;
    request.source = &source;
    request.seed = 17;
    request.shards = 2;
    request.routing = sched::RoutingPolicyKind::kRebalance;
    const RunResponse response = run(request);

    test::expect_results_identical(legacy.results, response.results);
    EXPECT_EQ(legacy.events_executed, response.events_executed);
    EXPECT_EQ(legacy.shard_events, response.shard_events);
    EXPECT_EQ(legacy.sessions_rebalanced, response.sessions_rebalanced);
}

TEST(RunApiEquivalenceTest, StreamedPrototypeMatchesTheLegacyEntryPoint)
{
    const auto trace = test::tiny_trace(6);
    PlatformConfig config = test::platform_config(Policy::kNotebookOS, 17);
    config.scheduler.shards = 2;
    config.scheduler.routing = sched::RoutingPolicyKind::kLeastLoaded;

    workload::TraceSessionSource legacy_source(trace);
    const ExperimentResults legacy =
        run_prototype_streamed(legacy_source, config);

    workload::TraceSessionSource source(trace);
    RunRequest request;
    request.config = config;
    request.source = &source;
    request.mode = RunMode::kStreamed;
    const RunResponse response = run(request);

    test::expect_results_identical(legacy, response.results);
    // The prototype driver reports no fast-shard telemetry.
    EXPECT_EQ(response.events_executed, 0u);
    EXPECT_TRUE(response.shard_events.empty());
}

TEST(RunApiEquivalenceTest, SeedOverrideBeatsTheConfigSeed)
{
    const auto trace = test::tiny_trace();

    RunRequest request;
    request.engine = kEngineFast;
    request.trace = &trace;
    request.config = test::platform_config(Policy::kNotebookOS, 999, true);
    request.seed = 17;
    const RunResponse overridden = run(request);

    const ExperimentResults direct = test::run_policy(
        trace, Policy::kNotebookOS, 17, /*fast=*/true);
    test::expect_results_identical(direct, overridden.results);
}

}  // namespace
}  // namespace nbos::core
