/**
 * @file
 * Tests for the shared bench helpers (bench/bench_common.hpp): the
 * NBOS_BENCH_POLICIES filter, explicit skip marking in run_policies, and
 * NBOS_BENCH_SEEDS parsing. The bench layer is plain inline helpers, so
 * the suite includes it directly.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "harness.hpp"

namespace nbos::bench {
namespace {

/** Scoped environment variable: sets on construction, restores the
 *  previous value (or unsets) on destruction, so suites stay isolated. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) {
            previous_ = previous;
        }
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }

    ~ScopedEnv()
    {
        if (had_previous_) {
            ::setenv(name_.c_str(), previous_.c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }

    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    std::string name_;
    std::string previous_;
    bool had_previous_ = false;
};

TEST(PolicyFilterTest, EmptyFilterAllowsEverything)
{
    EXPECT_TRUE(policy_filter_allows(nullptr, "notebookos-fast"));
    EXPECT_TRUE(policy_filter_allows("", "reservation"));
}

TEST(PolicyFilterTest, MatchesEngineName)
{
    EXPECT_TRUE(policy_filter_allows("notebookos-fast", "notebookos-fast"));
    EXPECT_FALSE(policy_filter_allows("notebookos-fast", "reservation"));
}

TEST(PolicyFilterTest, MatchesPolicyNameForBothEngines)
{
    // "notebookos" is the policy name shared by the prototype and fast
    // engines: the token must enable both.
    EXPECT_TRUE(
        policy_filter_allows("notebookos", "notebookos", "notebookos"));
    EXPECT_TRUE(policy_filter_allows("notebookos", "notebookos-fast",
                                     "notebookos"));
    EXPECT_FALSE(policy_filter_allows("notebookos", "batch", "batch"));
}

TEST(PolicyFilterTest, TrimsWhitespaceAroundTokens)
{
    EXPECT_TRUE(policy_filter_allows(" batch ,\treservation", "batch"));
    EXPECT_TRUE(
        policy_filter_allows(" batch ,\treservation ", "reservation"));
    EXPECT_FALSE(policy_filter_allows(" batch , reservation ", "bat"));
}

TEST(PolicyFilterTest, UnknownTokensMatchNothing)
{
    EXPECT_FALSE(policy_filter_allows("nope,also-nope", "notebookos",
                                      "notebookos"));
}

TEST(BenchSeedsTest, ParsesAndClampsEnvironment)
{
    {
        const ScopedEnv env("NBOS_BENCH_SEEDS", nullptr);
        EXPECT_EQ(bench_seeds(), 1u);
    }
    {
        const ScopedEnv env("NBOS_BENCH_SEEDS", "8");
        EXPECT_EQ(bench_seeds(), 8u);
    }
    {
        const ScopedEnv env("NBOS_BENCH_SEEDS", "1");
        EXPECT_EQ(bench_seeds(), 1u);
    }
    // Garbage, zero, and negative values fall back to single-seed.
    for (const char* bad : {"", "0", "-3", "abc", "8x"}) {
        const ScopedEnv env("NBOS_BENCH_SEEDS", bad);
        EXPECT_EQ(bench_seeds(), 1u) << "value '" << bad << "'";
    }
    {
        const ScopedEnv env("NBOS_BENCH_SEEDS", "9999");
        EXPECT_EQ(bench_seeds(), 64u);
    }
}

TEST(RunPoliciesTest, FilteredEnginesAreExplicitlyMarkedSkipped)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", "reservation");
    const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
    const auto trace = test::tiny_trace();
    const auto results = run_policies(
        trace, {{core::Policy::kReservation}, {core::Policy::kBatch}});
    ASSERT_EQ(results.size(), 2u);

    EXPECT_FALSE(results[0].skipped);
    EXPECT_FALSE(results[0].tasks.empty());

    // The skipped row is explicit — not an all-zero run masquerading as a
    // measurement — and keeps its identifying fields.
    EXPECT_TRUE(results[1].skipped);
    EXPECT_TRUE(results[1].tasks.empty());
    EXPECT_EQ(results[1].policy, core::Policy::kBatch);
    EXPECT_EQ(results[1].trace_name, trace.name);
    EXPECT_EQ(results[1].makespan, trace.makespan);
}

TEST(RunPoliciesTest, NoFilterRunsEverythingUnskipped)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", nullptr);
    const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
    const auto trace = test::tiny_trace();
    const auto results = run_policies(
        trace, {{core::Policy::kReservation}, {core::Policy::kBatch}});
    ASSERT_EQ(results.size(), 2u);
    for (const PolicyResult& result : results) {
        EXPECT_FALSE(result.skipped);
        EXPECT_FALSE(result.tasks.empty());
    }
}

TEST(RunPoliciesTest, SweepModeKeepsBaseSeedRowsIdentical)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", nullptr);
    const auto trace = test::tiny_trace();
    std::vector<PolicyResult> single;
    {
        const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
        single = run_policies(trace, {{core::Policy::kReservation}});
    }
    std::vector<PolicyResult> swept;
    {
        const ScopedEnv seeds("NBOS_BENCH_SEEDS", "3");
        swept = run_policies(trace, {{core::Policy::kReservation}});
    }
    ASSERT_EQ(single.size(), 1u);
    ASSERT_EQ(swept.size(), 1u);
    // The figure tables read the base-seed row; a sweep only adds the
    // statistics block, it never changes the single-seed numbers.
    test::expect_results_identical(single[0], swept[0]);
}

}  // namespace
}  // namespace nbos::bench
