/**
 * @file
 * Tests for the shared bench helpers (bench/bench_common.hpp): the
 * NBOS_BENCH_POLICIES filter, explicit skip marking in run_policies, and
 * NBOS_BENCH_SEEDS parsing. The bench layer is plain inline helpers, so
 * the suite includes it directly.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "harness.hpp"

namespace nbos::bench {
namespace {

/** Scoped environment variable: sets on construction, restores the
 *  previous value (or unsets) on destruction, so suites stay isolated. */
class ScopedEnv
{
  public:
    ScopedEnv(const char* name, const char* value) : name_(name)
    {
        const char* previous = std::getenv(name);
        had_previous_ = previous != nullptr;
        if (had_previous_) {
            previous_ = previous;
        }
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }

    ~ScopedEnv()
    {
        if (had_previous_) {
            ::setenv(name_.c_str(), previous_.c_str(), 1);
        } else {
            ::unsetenv(name_.c_str());
        }
    }

    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;

  private:
    std::string name_;
    std::string previous_;
    bool had_previous_ = false;
};

TEST(PolicyFilterTest, EmptyFilterAllowsEverything)
{
    EXPECT_TRUE(policy_filter_allows(nullptr, "notebookos-fast"));
    EXPECT_TRUE(policy_filter_allows("", "reservation"));
}

TEST(PolicyFilterTest, MatchesEngineName)
{
    EXPECT_TRUE(policy_filter_allows("notebookos-fast", "notebookos-fast"));
    EXPECT_FALSE(policy_filter_allows("notebookos-fast", "reservation"));
}

TEST(PolicyFilterTest, MatchesPolicyNameForBothEngines)
{
    // "notebookos" is the policy name shared by the prototype and fast
    // engines: the token must enable both.
    EXPECT_TRUE(
        policy_filter_allows("notebookos", "notebookos", "notebookos"));
    EXPECT_TRUE(policy_filter_allows("notebookos", "notebookos-fast",
                                     "notebookos"));
    EXPECT_FALSE(policy_filter_allows("notebookos", "batch", "batch"));
}

TEST(PolicyFilterTest, TrimsWhitespaceAroundTokens)
{
    EXPECT_TRUE(policy_filter_allows(" batch ,\treservation", "batch"));
    EXPECT_TRUE(
        policy_filter_allows(" batch ,\treservation ", "reservation"));
    EXPECT_FALSE(policy_filter_allows(" batch , reservation ", "bat"));
}

TEST(PolicyFilterTest, UnknownTokensMatchNothing)
{
    EXPECT_FALSE(policy_filter_allows("nope,also-nope", "notebookos",
                                      "notebookos"));
}

TEST(BenchOptionsTest, DefaultsWhenEverythingUnset)
{
    BenchOptions options;
    std::string error;
    ASSERT_TRUE(parse_bench_options(BenchEnv{}, options, error)) << error;
    EXPECT_FALSE(options.smoke);
    EXPECT_TRUE(options.profile.empty());
    EXPECT_EQ(options.seeds, 1u);
    EXPECT_EQ(options.shards, 1);
    EXPECT_EQ(options.routing, sched::RoutingPolicyKind::kStaticHash);
    EXPECT_TRUE(options.policies.empty());
}

TEST(BenchOptionsTest, ParsesEveryKnob)
{
    BenchEnv env;
    env.smoke = "1";
    env.profile = workload::kProfileFlashCrowd;
    env.seeds = "8";
    env.shards = "4";
    env.routing = "rebalance";
    env.policies = "notebookos,batch";
    BenchOptions options;
    std::string error;
    ASSERT_TRUE(parse_bench_options(env, options, error)) << error;
    EXPECT_TRUE(options.smoke);
    EXPECT_EQ(options.profile, workload::kProfileFlashCrowd);
    EXPECT_EQ(options.seeds, 8u);
    EXPECT_EQ(options.shards, 4);
    EXPECT_EQ(options.routing, sched::RoutingPolicyKind::kRebalance);
    EXPECT_EQ(options.policies, "notebookos,batch");
}

TEST(BenchOptionsTest, EmptyValuesMeanUnset)
{
    BenchEnv env;
    env.smoke = "";
    env.profile = "";
    env.seeds = "";
    env.shards = "";
    env.routing = "";
    BenchOptions options;
    std::string error;
    ASSERT_TRUE(parse_bench_options(env, options, error)) << error;
    EXPECT_FALSE(options.smoke);
    EXPECT_EQ(options.seeds, 1u);
    EXPECT_EQ(options.shards, 1);
}

TEST(BenchOptionsTest, MalformedCountsAreRejectedWithTheVariableNamed)
{
    // Historically a bad NBOS_BENCH_SHARDS silently atoi'd to 1 and a bad
    // seed count fell back to single-seed; both are hard errors now.
    for (const char* bad : {"0", "-3", "abc", "8x", "9999"}) {
        BenchEnv env;
        env.shards = bad;
        BenchOptions options;
        std::string error;
        EXPECT_FALSE(parse_bench_options(env, options, error))
            << "value '" << bad << "'";
        EXPECT_NE(error.find("NBOS_BENCH_SHARDS"), std::string::npos)
            << error;
        EXPECT_NE(error.find(bad), std::string::npos) << error;
    }
    BenchEnv env;
    env.seeds = "65";
    BenchOptions options;
    std::string error;
    EXPECT_FALSE(parse_bench_options(env, options, error));
    EXPECT_NE(error.find("NBOS_BENCH_SEEDS"), std::string::npos) << error;
}

TEST(BenchOptionsTest, UnknownProfileAndRoutingAreRejected)
{
    {
        BenchEnv env;
        env.profile = "no-such-profile";
        BenchOptions options;
        std::string error;
        EXPECT_FALSE(parse_bench_options(env, options, error));
        EXPECT_NE(error.find("NBOS_BENCH_PROFILE"), std::string::npos)
            << error;
        // The error lists the registered names, so the fix is in the
        // message.
        EXPECT_NE(error.find(workload::kProfileFlashCrowd),
                  std::string::npos)
            << error;
    }
    {
        BenchEnv env;
        env.routing = "round-robin";
        BenchOptions options;
        std::string error;
        EXPECT_FALSE(parse_bench_options(env, options, error));
        EXPECT_NE(error.find("NBOS_BENCH_ROUTING"), std::string::npos)
            << error;
    }
}

TEST(BenchOptionsTest, HelpersReadTheValidatedOptions)
{
    const ScopedEnv seeds("NBOS_BENCH_SEEDS", "8");
    const ScopedEnv shards("NBOS_BENCH_SHARDS", "4");
    const ScopedEnv routing("NBOS_BENCH_ROUTING", "least_loaded");
    EXPECT_EQ(bench_seeds(), 8u);
    EXPECT_EQ(bench_shards(), 4);
    EXPECT_EQ(bench_routing(), sched::RoutingPolicyKind::kLeastLoaded);
}

TEST(RunPoliciesTest, FilteredEnginesAreExplicitlyMarkedSkipped)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", "reservation");
    const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
    const auto trace = test::tiny_trace();
    const auto results = run_policies(
        trace, {{core::Policy::kReservation}, {core::Policy::kBatch}});
    ASSERT_EQ(results.size(), 2u);

    EXPECT_FALSE(results[0].skipped);
    EXPECT_FALSE(results[0].tasks.empty());

    // The skipped row is explicit — not an all-zero run masquerading as a
    // measurement — and keeps its identifying fields.
    EXPECT_TRUE(results[1].skipped);
    EXPECT_TRUE(results[1].tasks.empty());
    EXPECT_EQ(results[1].policy, core::Policy::kBatch);
    EXPECT_EQ(results[1].trace_name, trace.name);
    EXPECT_EQ(results[1].makespan, trace.makespan);
}

TEST(RunPoliciesTest, NoFilterRunsEverythingUnskipped)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", nullptr);
    const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
    const auto trace = test::tiny_trace();
    const auto results = run_policies(
        trace, {{core::Policy::kReservation}, {core::Policy::kBatch}});
    ASSERT_EQ(results.size(), 2u);
    for (const PolicyResult& result : results) {
        EXPECT_FALSE(result.skipped);
        EXPECT_FALSE(result.tasks.empty());
    }
}

TEST(RunPoliciesTest, SweepModeKeepsBaseSeedRowsIdentical)
{
    const ScopedEnv filter("NBOS_BENCH_POLICIES", nullptr);
    const auto trace = test::tiny_trace();
    std::vector<PolicyResult> single;
    {
        const ScopedEnv seeds("NBOS_BENCH_SEEDS", nullptr);
        single = run_policies(trace, {{core::Policy::kReservation}});
    }
    std::vector<PolicyResult> swept;
    {
        const ScopedEnv seeds("NBOS_BENCH_SEEDS", "3");
        swept = run_policies(trace, {{core::Policy::kReservation}});
    }
    ASSERT_EQ(single.size(), 1u);
    ASSERT_EQ(swept.size(), 1u);
    // The figure tables read the base-seed row; a sweep only adds the
    // statistics block, it never changes the single-seed numbers.
    test::expect_results_identical(single[0], swept[0]);
}

}  // namespace
}  // namespace nbos::bench
