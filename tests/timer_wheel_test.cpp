/**
 * @file
 * Tests for the hierarchical timer wheel behind sim::Simulation.
 *
 * The wheel is a *staging* structure: far-future tickets wait in O(1)
 * buckets and cascade into the binary heap only when the cursor reaches
 * them, so the heap — the single ordering authority — pops the exact
 * sequence a heap-only Simulation would. Every test here runs the same
 * schedule against both configurations (Options::timer_wheel on/off) and
 * demands bit-identical firing sequences, which is the property the
 * determinism goldens lean on.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness.hpp"
#include "sim/simulation.hpp"

namespace nbos::sim {
namespace {

/** One observed firing: when it ran and which schedule call it was. */
struct Fired
{
    Time time = 0;
    int tag = -1;

    bool operator==(const Fired& other) const
    {
        return time == other.time && tag == other.tag;
    }
};

Simulation::Options
options(bool wheel)
{
    Simulation::Options opts;
    opts.timer_wheel = wheel;
    opts.recycle = nullptr;
    return opts;
}

/** A replayable schedule: build once, execute against any Simulation. */
struct Script
{
    struct Op
    {
        enum class Kind
        {
            kSchedule,  ///< schedule_at(time, record tag)
            kCancel,    ///< cancel the id from schedule call #index
            kRun,       ///< run_until(time)
        };
        Kind kind = Kind::kSchedule;
        Time time = 0;
        int index = 0;
    };

    std::vector<Op> ops;

    /** Execute against @p simulation, returning the firing sequence. */
    std::vector<Fired> replay(Simulation& simulation) const
    {
        std::vector<Fired> fired;
        std::vector<EventId> ids;
        Time horizon = 0;
        for (const Op& op : ops) {
            switch (op.kind) {
              case Op::Kind::kSchedule: {
                const int tag = static_cast<int>(ids.size());
                ids.push_back(simulation.schedule_at(
                    op.time, [&fired, &simulation, tag] {
                        fired.push_back(Fired{simulation.now(), tag});
                    }));
                break;
              }
              case Op::Kind::kCancel:
                simulation.cancel(ids[static_cast<std::size_t>(op.index)]);
                break;
              case Op::Kind::kRun:
                simulation.run_until(op.time);
                horizon = op.time;
                break;
            }
        }
        // Drain everything left pending so the comparison covers the
        // whole schedule, not just the scripted horizons.
        simulation.run_until(horizon + 40 * kDay);
        return fired;
    }
};

/** Replay @p script against both configurations and require identical
 *  firing sequences. @return the (shared) sequence for further checks. */
std::vector<Fired>
expect_wheel_matches_heap(const Script& script)
{
    Simulation with_wheel(options(true));
    Simulation heap_only(options(false));
    const std::vector<Fired> wheel_fired = script.replay(with_wheel);
    const std::vector<Fired> heap_fired = script.replay(heap_only);
    EXPECT_EQ(wheel_fired.size(), heap_fired.size());
    for (std::size_t i = 0;
         i < wheel_fired.size() && i < heap_fired.size(); ++i) {
        EXPECT_EQ(wheel_fired[i].time, heap_fired[i].time)
            << "firing " << i;
        EXPECT_EQ(wheel_fired[i].tag, heap_fired[i].tag) << "firing " << i;
    }
    return wheel_fired;
}

TEST(TimerWheelTest, FarFutureTimersCascadeAcrossEveryLevel)
{
    // One timer per wheel level plus one past the wheel span (heap
    // fallback): 100 ms (near: straight to heap), 10 s (level 0), 3 min
    // (level 1), 2 h (level 2), 3 d (level 3), 30 d (beyond the wheel).
    Script script;
    const Time times[] = {100 * kMillisecond, 10 * kSecond, 3 * kMinute,
                          2 * kHour,          3 * kDay,     30 * kDay};
    for (const Time t : times) {
        script.ops.push_back({Script::Op::Kind::kSchedule, t, 0});
    }
    script.ops.push_back({Script::Op::Kind::kRun, 31 * kDay, 0});

    const std::vector<Fired> fired = expect_wheel_matches_heap(script);
    ASSERT_EQ(fired.size(), 6u);
    for (std::size_t i = 0; i < fired.size(); ++i) {
        EXPECT_EQ(fired[i].time, times[i]) << "firing " << i;
        EXPECT_EQ(fired[i].tag, static_cast<int>(i)) << "firing " << i;
    }
}

TEST(TimerWheelTest, SameTickFiringsKeepScheduleOrder)
{
    // Many events on one far-future tick: ties break by schedule
    // sequence (FIFO), wheel or not — bucket order never leaks through
    // because the heap re-sorts whatever the wheel flushes.
    Script script;
    const Time tick = 90 * kMinute;
    for (int i = 0; i < 32; ++i) {
        script.ops.push_back({Script::Op::Kind::kSchedule, tick, 0});
    }
    script.ops.push_back({Script::Op::Kind::kRun, 2 * kHour, 0});

    const std::vector<Fired> fired = expect_wheel_matches_heap(script);
    ASSERT_EQ(fired.size(), 32u);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(fired[static_cast<std::size_t>(i)].tag, i)
            << "firing " << i;
        EXPECT_EQ(fired[static_cast<std::size_t>(i)].time, tick);
    }
}

TEST(TimerWheelTest, CancelledTimersDieInTheirBucketWithoutFiring)
{
    Simulation simulation(options(true));
    int fired = 0;
    const EventId doomed =
        simulation.schedule_after(2 * kHour, [&fired] { ++fired; });
    const EventId kept =
        simulation.schedule_after(3 * kHour, [&fired] { ++fired; });
    EXPECT_EQ(simulation.wheel_pending(), 2u);
    EXPECT_EQ(simulation.pending(), 2u);

    // The cancel is O(1): the ticket stays staged as a tombstone (wheel
    // count unchanged) but the live count drops immediately, and the
    // tombstone is dropped at flush time without ever touching the heap.
    EXPECT_TRUE(simulation.cancel(doomed));
    EXPECT_FALSE(simulation.cancel(doomed));
    EXPECT_EQ(simulation.wheel_pending(), 2u);
    EXPECT_EQ(simulation.pending(), 1u);

    simulation.run_until(4 * kHour);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(simulation.wheel_pending(), 0u);
    EXPECT_EQ(simulation.pending(), 0u);
    EXPECT_FALSE(simulation.cancel(kept));
}

TEST(TimerWheelTest, ElectionChurnNeverReachesTheHeap)
{
    // The Raft pattern the wheel exists for: a far-future election timer
    // cancelled and re-armed by every heartbeat. The sequence of fired
    // events must match the heap-only scheduler exactly.
    Script script;
    int election = 0;  // schedule-call index of the live election timer
    int calls = 0;
    script.ops.push_back(
        {Script::Op::Kind::kSchedule, 2 * kSecond + 2 * kMinute, 0});
    election = calls++;
    for (int round = 1; round <= 50; ++round) {
        const Time tick = round * kSecond;
        // Heartbeat work at the tick...
        script.ops.push_back({Script::Op::Kind::kSchedule, tick, 0});
        ++calls;
        script.ops.push_back({Script::Op::Kind::kRun, tick, 0});
        // ...then the prompt cancel + re-arm of the election timer.
        script.ops.push_back({Script::Op::Kind::kCancel, 0, election});
        script.ops.push_back({Script::Op::Kind::kSchedule,
                              tick + 2 * kMinute + round * kMillisecond,
                              0});
        election = calls++;
    }

    const std::vector<Fired> fired = expect_wheel_matches_heap(script);
    // 50 heartbeats fire, 49 election timers are cancelled staged, and
    // only the last election survives to fire in the drain.
    ASSERT_EQ(fired.size(), 51u);
}

TEST(TimerWheelTest, RandomSchedulesWithCancelsMatchHeapOrder)
{
    // Property: any interleaving of schedules (near, far, and same-tick
    // collisions), cancels, and partial runs fires identically with the
    // wheel on and off.
    test::check_property(8, [](sim::Rng& rng, std::size_t) {
        Script script;
        int scheduled = 0;
        Time clock = 0;
        for (int step = 0; step < 400; ++step) {
            const double roll = rng.uniform();
            if (roll < 0.55 || scheduled == 0) {
                // Mix of horizons crossing every wheel level.
                static const Time spans[] = {
                    10 * kMillisecond, kSecond, 20 * kSecond, 10 * kMinute,
                    6 * kHour,         2 * kDay, 20 * kDay};
                const Time span = spans[static_cast<std::size_t>(
                    rng.uniform_int(0, 6))];
                const Time at =
                    clock + static_cast<Time>(rng.uniform_int(0, span));
                script.ops.push_back(
                    {Script::Op::Kind::kSchedule, at, 0});
                ++scheduled;
            } else if (roll < 0.8) {
                script.ops.push_back(
                    {Script::Op::Kind::kCancel, 0,
                     static_cast<int>(
                         rng.uniform_int(0, scheduled - 1))});
            } else {
                clock += static_cast<Time>(
                    rng.uniform_int(0, 30 * kMinute));
                script.ops.push_back({Script::Op::Kind::kRun, clock, 0});
            }
        }
        expect_wheel_matches_heap(script);
    });
}

TEST(TimerWheelTest, PooledSimulationsReplayIdentically)
{
    // Arena reuse must be invisible: a Simulation built on recycled
    // buffers fires the same sequence as a cold one, and the buffers
    // actually round-trip through the pool.
    Script script;
    for (int i = 0; i < 64; ++i) {
        script.ops.push_back({Script::Op::Kind::kSchedule,
                              (i % 7) * kMinute + i * kSecond, 0});
    }
    for (int i = 0; i < 64; i += 3) {
        script.ops.push_back({Script::Op::Kind::kCancel, 0, i});
    }
    script.ops.push_back({Script::Op::Kind::kRun, kDay, 0});

    std::vector<Fired> cold;
    {
        Simulation simulation(options(true));
        cold = script.replay(simulation);
    }
    SimMemoryPool& pool = SimMemoryPool::global();
    std::vector<Fired> warm;
    {
        Simulation::Options opts;
        opts.timer_wheel = true;
        opts.recycle = &pool;
        Simulation first(opts);
        (void)script.replay(first);
    }
    const std::size_t pooled = pool.size();
    EXPECT_GE(pooled, 1u);
    {
        Simulation::Options opts;
        opts.timer_wheel = true;
        opts.recycle = &pool;
        Simulation second(opts);
        EXPECT_LT(pool.size(), pooled);  // buffers were taken, not copied
        warm = script.replay(second);
    }
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(cold[i].time, warm[i].time) << "firing " << i;
        EXPECT_EQ(cold[i].tag, warm[i].tag) << "firing " << i;
    }
}

}  // namespace
}  // namespace nbos::sim
