/**
 * @file
 * Tests for the percentile/CDF accumulator and the step-function time
 * series (GPU-hour integration).
 */
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <utility>
#include <vector>

#include "metrics/percentiles.hpp"
#include "metrics/timeseries.hpp"
#include "sim/time.hpp"

namespace nbos::metrics {
namespace {

using sim::kHour;
using sim::kSecond;

TEST(PercentilesTest, EmptyIsSafe)
{
    Percentiles p;
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.count(), 0u);
    EXPECT_DOUBLE_EQ(p.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(p.min(), 0.0);
    EXPECT_DOUBLE_EQ(p.max(), 0.0);
    EXPECT_DOUBLE_EQ(p.mean(), 0.0);
    EXPECT_DOUBLE_EQ(p.cdf_at(1.0), 0.0);
    EXPECT_TRUE(p.cdf().empty());
}

TEST(PercentilesTest, SingleSample)
{
    Percentiles p;
    p.add(42.0);
    EXPECT_DOUBLE_EQ(p.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(p.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 42.0);
    EXPECT_DOUBLE_EQ(p.mean(), 42.0);
}

TEST(PercentilesTest, MedianOfKnownSet)
{
    Percentiles p;
    p.add_all({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(p.median(), 3.0);
    EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 5.0);
}

TEST(PercentilesTest, InterpolatesBetweenSamples)
{
    Percentiles p;
    p.add_all({0.0, 10.0});
    EXPECT_DOUBLE_EQ(p.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(p.percentile(25), 2.5);
}

TEST(PercentilesTest, OutOfRangePercentileClamps)
{
    Percentiles p;
    p.add_all({1, 2, 3});
    EXPECT_DOUBLE_EQ(p.percentile(-5), 1.0);
    EXPECT_DOUBLE_EQ(p.percentile(150), 3.0);
}

TEST(PercentilesTest, UnsortedInsertionOrder)
{
    Percentiles p;
    p.add_all({9, 1, 5, 3, 7});
    EXPECT_DOUBLE_EQ(p.min(), 1.0);
    EXPECT_DOUBLE_EQ(p.max(), 9.0);
    EXPECT_DOUBLE_EQ(p.median(), 5.0);
}

TEST(PercentilesTest, CdfAtIsFractionAtOrBelow)
{
    Percentiles p;
    p.add_all({1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(p.cdf_at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p.cdf_at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(p.cdf_at(2.5), 0.5);
    EXPECT_DOUBLE_EQ(p.cdf_at(4.0), 1.0);
    EXPECT_DOUBLE_EQ(p.cdf_at(100.0), 1.0);
}

TEST(PercentilesTest, CdfPointsMonotonic)
{
    Percentiles p;
    for (int i = 0; i < 1000; ++i) {
        p.add((i * 37) % 101);
    }
    const auto points = p.cdf(50);
    ASSERT_EQ(points.size(), 50u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_GE(points[i].value, points[i - 1].value);
        EXPECT_GE(points[i].fraction, points[i - 1].fraction);
    }
    EXPECT_DOUBLE_EQ(points.back().fraction, 1.0);
}

TEST(PercentilesTest, AddAfterQueryResorts)
{
    Percentiles p;
    p.add_all({1, 2, 3});
    EXPECT_DOUBLE_EQ(p.median(), 2.0);
    p.add(100.0);
    EXPECT_DOUBLE_EQ(p.max(), 100.0);
    EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
}

TEST(PercentilesTest, SummaryContainsLabel)
{
    Percentiles p;
    p.add(1.0);
    EXPECT_NE(p.summary("delays").find("delays"), std::string::npos);
}

TEST(PercentilesTest, SumAndMean)
{
    Percentiles p;
    p.add_all({2, 4, 6});
    EXPECT_DOUBLE_EQ(p.sum(), 12.0);
    EXPECT_DOUBLE_EQ(p.mean(), 4.0);
}

TEST(PercentilesTest, CopyAndMovePreserveSamples)
{
    Percentiles p;
    p.add_all({3, 1, 2});
    const Percentiles copy = p;
    EXPECT_DOUBLE_EQ(copy.median(), 2.0);
    const Percentiles moved = std::move(p);
    EXPECT_DOUBLE_EQ(moved.median(), 2.0);
    EXPECT_EQ(moved.count(), 3u);
}

/** Regression (run under TSan in CI): concurrent const accessors used to
 *  race on the lazy in-place sort of the mutable sample buffer, which the
 *  ExperimentRunner's thread pool made a real interleaving. */
TEST(PercentilesTest, ConcurrentConstReadsAreRaceFree)
{
    Percentiles p;
    for (int i = 5000; i > 0; --i) {
        p.add(static_cast<double>(i));  // descending: sort has real work
    }
    const Percentiles& view = p;
    constexpr int kThreads = 4;
    std::array<double, kThreads> medians{};
    std::array<double, kThreads> sums{};
    std::vector<std::thread> readers;
    readers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        readers.emplace_back([&view, &medians, &sums, t] {
            // Mix of sorting accessors and scanning accessors: every
            // combination must be safe concurrently.
            medians[t] = view.percentile(50.0);
            sums[t] = view.sum();
            (void)view.min();
            (void)view.max();
            (void)view.cdf_at(2500.0);
        });
    }
    for (std::thread& reader : readers) {
        reader.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_DOUBLE_EQ(medians[t], 2500.5);
        EXPECT_DOUBLE_EQ(sums[t], 5000.0 * 5001.0 / 2.0);
    }
}

TEST(TimeSeriesTest, EmptyDefaults)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_DOUBLE_EQ(ts.current(), 0.0);
    EXPECT_DOUBLE_EQ(ts.value_at(100), 0.0);
    EXPECT_DOUBLE_EQ(ts.integrate_hours(0, kHour), 0.0);
}

TEST(TimeSeriesTest, StepSemantics)
{
    TimeSeries ts;
    ts.record(10 * kSecond, 5.0);
    ts.record(20 * kSecond, 8.0);
    EXPECT_DOUBLE_EQ(ts.value_at(5 * kSecond), 0.0);
    EXPECT_DOUBLE_EQ(ts.value_at(10 * kSecond), 5.0);
    EXPECT_DOUBLE_EQ(ts.value_at(15 * kSecond), 5.0);
    EXPECT_DOUBLE_EQ(ts.value_at(20 * kSecond), 8.0);
    EXPECT_DOUBLE_EQ(ts.value_at(100 * kSecond), 8.0);
}

TEST(TimeSeriesTest, SameTimestampOverwrites)
{
    TimeSeries ts;
    ts.record(10, 1.0);
    ts.record(10, 2.0);
    EXPECT_EQ(ts.size(), 1u);
    EXPECT_DOUBLE_EQ(ts.value_at(10), 2.0);
}

TEST(TimeSeriesTest, AddAccumulatesDelta)
{
    TimeSeries ts;
    ts.add(0, 3.0);
    ts.add(10, 2.0);
    ts.add(20, -4.0);
    EXPECT_DOUBLE_EQ(ts.value_at(0), 3.0);
    EXPECT_DOUBLE_EQ(ts.value_at(10), 5.0);
    EXPECT_DOUBLE_EQ(ts.value_at(25), 1.0);
}

TEST(TimeSeriesTest, IntegrationConstantValue)
{
    TimeSeries ts;
    ts.record(0, 4.0);
    // 4 GPUs held for 2 hours = 8 GPU-hours.
    EXPECT_NEAR(ts.integrate_hours(0, 2 * kHour), 8.0, 1e-9);
}

TEST(TimeSeriesTest, IntegrationStepChange)
{
    TimeSeries ts;
    ts.record(0, 2.0);
    ts.record(kHour, 6.0);
    EXPECT_NEAR(ts.integrate_hours(0, 2 * kHour), 2.0 + 6.0, 1e-9);
}

TEST(TimeSeriesTest, IntegrationPartialWindow)
{
    TimeSeries ts;
    ts.record(0, 10.0);
    ts.record(10 * kSecond, 0.0);
    EXPECT_NEAR(ts.integrate_seconds(5 * kSecond, 20 * kSecond), 50.0, 1e-9);
}

TEST(TimeSeriesTest, IntegrationBeforeFirstSampleIsZero)
{
    TimeSeries ts;
    ts.record(10 * kSecond, 3.0);
    EXPECT_NEAR(ts.integrate_seconds(0, 10 * kSecond), 0.0, 1e-9);
}

TEST(TimeSeriesTest, IntegrationEmptyWindow)
{
    TimeSeries ts;
    ts.record(0, 3.0);
    EXPECT_DOUBLE_EQ(ts.integrate_seconds(50, 50), 0.0);
    EXPECT_DOUBLE_EQ(ts.integrate_seconds(50, 10), 0.0);
}

TEST(TimeSeriesTest, MaxValue)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(10, 9.0);
    ts.record(20, 4.0);
    EXPECT_DOUBLE_EQ(ts.max_value(), 9.0);
}

TEST(TimeSeriesTest, MeanOverWindow)
{
    TimeSeries ts;
    ts.record(0, 0.0);
    ts.record(10 * kSecond, 10.0);
    // First 10 s at 0, next 10 s at 10 -> mean 5 over 20 s.
    EXPECT_NEAR(ts.mean_over(0, 20 * kSecond), 5.0, 1e-9);
}

TEST(TimeSeriesTest, ResampleProducesRequestedBuckets)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    ts.record(50 * kSecond, 2.0);
    const auto points = ts.resample(0, 100 * kSecond, 10);
    ASSERT_EQ(points.size(), 10u);
    EXPECT_DOUBLE_EQ(points.front().value, 1.0);
    EXPECT_DOUBLE_EQ(points.back().value, 2.0);
}

TEST(TimeSeriesTest, ResampleDegenerateInputs)
{
    TimeSeries ts;
    ts.record(0, 1.0);
    EXPECT_TRUE(ts.resample(0, 100, 0).empty());
    EXPECT_TRUE(ts.resample(100, 100, 5).empty());
}

/** Property: integrating a piecewise series equals the sum of its pieces. */
class IntegrationProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(IntegrationProperty, PiecewiseSumMatches)
{
    const int steps = GetParam();
    TimeSeries ts;
    double expected_seconds = 0.0;
    for (int i = 0; i < steps; ++i) {
        ts.record(i * kSecond, static_cast<double>(i % 7));
        expected_seconds += static_cast<double>(i % 7);
    }
    EXPECT_NEAR(ts.integrate_seconds(0, steps * kSecond), expected_seconds,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(StepCounts, IntegrationProperty,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

}  // namespace
}  // namespace nbos::metrics
